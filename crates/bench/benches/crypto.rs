//! Criterion bench: the crypto substrate (E8's counterpart).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tcvs_crypto::{
    mss::{mss_verify, MssSigner},
    sha256,
    wots::{wots_keygen, wots_sign, wots_verify},
    SeedRng, Sha256,
};

fn bench_sha256(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto/sha256");
    for len in [64usize, 4096, 1 << 20] {
        let data = vec![0x5Au8; len];
        g.throughput(Throughput::Bytes(len as u64));
        g.bench_with_input(BenchmarkId::from_parameter(len), &data, |b, data| {
            b.iter(|| {
                let mut h = Sha256::new();
                h.update(data);
                h.finalize()
            });
        });
    }
    g.finish();
}

fn bench_wots(c: &mut Criterion) {
    let msg = sha256(b"h(M(D) || ctr)");
    c.bench_function("crypto/wots_sign", |b| {
        b.iter(|| {
            let mut rng = SeedRng::from_label(b"bench");
            let (mut sk, _) = wots_keygen(&mut rng);
            wots_sign(&mut sk, &msg).unwrap()
        });
    });
    let mut rng = SeedRng::from_label(b"bench");
    let (mut sk, pk) = wots_keygen(&mut rng);
    let sig = wots_sign(&mut sk, &msg).unwrap();
    c.bench_function("crypto/wots_verify", |b| {
        b.iter(|| wots_verify(&pk, &msg, &sig));
    });
}

fn bench_mss(c: &mut Criterion) {
    let msg = sha256(b"h(M(D) || ctr)");
    let mut g = c.benchmark_group("crypto/mss_keygen");
    g.sample_size(10);
    for height in [6u32, 8, 10] {
        g.bench_with_input(BenchmarkId::from_parameter(height), &height, |b, &h| {
            b.iter(|| MssSigner::generate([1; 32], h).public_key());
        });
    }
    g.finish();

    let mut signer = MssSigner::generate([2; 32], 12);
    let pk = signer.public_key();
    c.bench_function("crypto/mss_sign_h12", |b| {
        b.iter(|| {
            // Criterion may request more iterations than the key's 2^12
            // capacity; regenerate when spent (a rare, visible outlier).
            if signer.remaining() == 0 {
                signer = MssSigner::generate([2; 32], 12);
            }
            signer.sign(&msg).unwrap()
        });
    });
    let mut signer = MssSigner::generate([2; 32], 12);
    let sig = signer.sign(&msg).unwrap();
    c.bench_function("crypto/mss_verify_h12", |b| {
        b.iter(|| mss_verify(&pk, &msg, &sig));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_sha256, bench_wots, bench_mss
}
criterion_main!(benches);
