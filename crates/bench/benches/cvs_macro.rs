//! Criterion bench: the CVS macro-workload (E9's counterpart) — commit +
//! checkout cycles through the full verified stack vs the plain repository.

use criterion::{criterion_group, criterion_main, Criterion};
use tcvs_core::{HonestServer, ProtocolConfig};
use tcvs_cvs::{Cvs, DirectSession};
use tcvs_store::{to_lines, Repository};

fn config() -> ProtocolConfig {
    ProtocolConfig {
        order: 16,
        k: u64::MAX,
        epoch_len: 1 << 30,
    }
}

const FILES: usize = 20;
const COMMITS: usize = 50;

fn body(i: usize) -> String {
    (0..40).map(|l| format!("line {l} of file {i}\n")).collect()
}

fn bench_plain_repo(c: &mut Criterion) {
    c.bench_function("cvs_macro/plain_repository", |b| {
        b.iter(|| {
            let mut repo = Repository::new();
            for i in 0..FILES {
                repo.commit(
                    "u",
                    "import",
                    0,
                    vec![(format!("f{i}.c"), to_lines(&body(i)))],
                )
                .unwrap();
            }
            for cmt in 0..COMMITS {
                let path = format!("f{}.c", cmt % FILES);
                let mut lines = repo.checkout(&path).unwrap().to_vec();
                lines[cmt % 40] = format!("edited by commit {cmt}");
                repo.commit("u", "edit", cmt as u64, vec![(path, lines)])
                    .unwrap();
            }
            repo.file_count()
        });
    });
}

fn bench_trusted_cvs(c: &mut Criterion) {
    c.bench_function("cvs_macro/trusted_cvs_protocol2", |b| {
        b.iter(|| {
            let cfg = config();
            let mut session = DirectSession::new(0, HonestServer::new(&cfg), cfg);
            let mut cvs = Cvs::new(&mut session, "u");
            for i in 0..FILES {
                cvs.add(&format!("f{i}.c"), &body(i), "import", 0).unwrap();
            }
            for cmt in 0..COMMITS {
                let path = format!("f{}.c", cmt % FILES);
                let mut wf = cvs.checkout(&path).unwrap();
                wf.lines[cmt % 40] = format!("edited by commit {cmt}");
                cvs.commit(&wf, "edit", cmt as u64).unwrap();
            }
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_plain_repo, bench_trusted_cvs
}
criterion_main!(benches);
