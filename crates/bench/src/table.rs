//! Plain-text result tables: every experiment renders one (or more) of
//! these, mirroring how the paper would present the result.

use std::fmt::Write as _;

/// A rendered experiment result: headers plus string rows.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Experiment id and caption, e.g. `"E1"` / `"VO size vs database size"`.
    pub id: String,
    /// Caption.
    pub caption: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (same arity as headers).
    pub rows: Vec<Vec<String>>,
    /// Free-form takeaway lines printed under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, caption: &str, headers: &[&str]) -> Table {
        Table {
            id: id.to_string(),
            caption: caption.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row (must match header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells);
    }

    /// Appends a takeaway note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {}: {} ==", self.id, self.caption);
        let head: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:>w$}", h, w = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", head.join("  "));
        let _ = writeln!(out, "{}", "-".repeat(head.join("  ").len()));
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", cells.join("  "));
        }
        for n in &self.notes {
            let _ = writeln!(out, "  note: {n}");
        }
        out
    }
}

/// Formats a float compactly.
pub fn f(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("E0", "demo", &["name", "value"]);
        t.row(vec!["short".into(), "1".into()]);
        t.row(vec!["much-longer-name".into(), "12345".into()]);
        t.note("takeaway");
        let r = t.render();
        assert!(r.contains("E0: demo"));
        assert!(r.contains("note: takeaway"));
        // All data rows align to the same width.
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    #[should_panic]
    fn arity_checked() {
        let mut t = Table::new("E0", "demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(12345.6), "12346");
        assert_eq!(f(2.5), "2.50");
        assert_eq!(f(0.001234), "0.0012");
    }
}
