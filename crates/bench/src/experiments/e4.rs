//! E4 — Fig. 3 / Lemma 4.1: the replay that defeats the untagged XOR
//! strawman and is caught by Protocol II's user tags.
//!
//! Scenario (exactly the Fig. 3 mechanism): user 1 commits; users 2 and 3
//! then submit *identical* updates; the server silently drops user 2's —
//! serving it from the same pre-state it later serves user 3 from. In the
//! untagged accumulator the two identical transitions cancel and the
//! sync-up passes (the availability violation is hidden); with user-tagged
//! state tokens the transitions differ and the sync-up fails.

use tcvs_core::adversary::{DropServer, Trigger};
use tcvs_core::{Op, ProtocolConfig, ProtocolKind};
use tcvs_merkle::u64_key;
use tcvs_sim::{simulate, SimSpec};
use tcvs_workload::{ScheduledOp, Trace};

use crate::table::Table;

/// The three-op Fig. 3 trace: u0 writes; u1 and u2 submit the identical
/// update that the server will duplicate/drop.
fn fig3_trace() -> Trace {
    Trace::new(vec![
        ScheduledOp {
            round: 0,
            user: 0,
            op: Op::Put(u64_key(1), b"base".to_vec()),
        },
        ScheduledOp {
            round: 1,
            user: 1,
            op: Op::Put(u64_key(2), b"same change".to_vec()),
        },
        ScheduledOp {
            round: 2,
            user: 2,
            op: Op::Put(u64_key(2), b"same change".to_vec()),
        },
    ])
}

/// Runs E4. Also sweeps randomized variants (different drop points with
/// identical follow-up ops) to show the effect is systematic.
pub fn run(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "E4",
        "Fig. 3 replay: drop hidden by identical transition cancellation",
        &["scenario", "protocol", "sync outcome", "verdict"],
    );

    let config = ProtocolConfig {
        order: 8,
        k: 64,
        epoch_len: 256,
    };
    for protocol in [ProtocolKind::NaiveXor, ProtocolKind::Two] {
        let spec = SimSpec {
            protocol,
            config,
            n_users: 3,
            mss_height: 6,
            setup_seed: [0xE4; 32],
            final_sync: true,
            faults: tcvs_core::FaultPlan::none(),
        };
        // Drop fires at ctr 1: user 1's update is acknowledged but not
        // applied; user 2's identical update then really happens from the
        // same pre-state.
        let mut server = DropServer::new(&config, Trigger::AtCtr(1));
        let r = simulate(&spec, &mut server, &fig3_trace(), Some(1));
        let outcome = if r.detected() {
            "FAILED (attack detected)"
        } else {
            "passed (attack hidden)"
        };
        let verdict = match (protocol, r.detected()) {
            (ProtocolKind::NaiveXor, false) => "unsound: availability violated undetected",
            (ProtocolKind::Two, true) => "sound: user tags break the cancellation",
            _ => "UNEXPECTED",
        };
        t.row(vec![
            "fig3-exact".into(),
            protocol.label().into(),
            outcome.into(),
            verdict.into(),
        ]);
    }

    // Randomized variants: vary the drop point inside longer identical-op
    // tails. The naive protocol stays blind whenever the duplicated
    // transition pair is the only anomaly *at sync time*.
    let variants = if quick { 3 } else { 10 };
    for v in 0..variants {
        let mut ops = vec![ScheduledOp {
            round: 0,
            user: 0,
            op: Op::Put(u64_key(100 + v), vec![v as u8]),
        }];
        // Two identical updates; the first is dropped.
        for (i, user) in [(1u64, 1u32), (2, 2)] {
            ops.push(ScheduledOp {
                round: i,
                user,
                op: Op::Put(u64_key(7), b"identical".to_vec()),
            });
        }
        let trace = Trace::new(ops);
        let mut outcomes = Vec::new();
        for protocol in [ProtocolKind::NaiveXor, ProtocolKind::Two] {
            let spec = SimSpec {
                protocol,
                config,
                n_users: 3,
                mss_height: 6,
                setup_seed: [v as u8; 32],
                final_sync: true,
                faults: tcvs_core::FaultPlan::none(),
            };
            let mut server = DropServer::new(&config, Trigger::AtCtr(1));
            let r = simulate(&spec, &mut server, &trace, Some(1));
            outcomes.push((protocol, r.detected()));
        }
        for (protocol, detected) in outcomes {
            t.row(vec![
                format!("variant-{v}"),
                protocol.label().into(),
                if detected {
                    "FAILED (attack detected)".into()
                } else {
                    "passed (attack hidden)".into()
                },
                String::new(),
            ]);
        }
    }
    t.note("naive-xor: 0% detection on this replay class; protocol-2: 100% (Lemma 4.1's in-degree argument).");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e4_naive_blind_protocol2_sees() {
        let tables = super::run(true);
        for row in &tables[0].rows {
            match row[1].as_str() {
                "naive-xor" => assert!(row[2].contains("hidden"), "{row:?}"),
                "protocol-2" => assert!(row[2].contains("detected"), "{row:?}"),
                other => panic!("unexpected protocol {other}"),
            }
        }
    }
}
