//! E2 — Theorems 4.1/4.2/4.3: per-operation overhead (the workload
//! preservation constant `c`).
//!
//! For each protocol under an honest server, measure messages/op, bytes/op,
//! makespan rounds, and sync traffic, for read-heavy and write-heavy mixes.
//! The trusted baseline anchors the overhead factors.

use tcvs_core::{HonestServer, ProtocolConfig, ProtocolKind};
use tcvs_sim::{simulate, SimSpec};
use tcvs_workload::{generate, generate_epoch_workload, OpMix, WorkloadSpec};

use crate::table::{f, Table};

/// Runs E2.
pub fn run(quick: bool) -> Vec<Table> {
    let n_ops = if quick { 200 } else { 2000 };
    let n_users = 8u32;
    let config = ProtocolConfig {
        order: 16,
        k: 32,
        epoch_len: 256,
    };

    let mut t = Table::new(
        "E2",
        "per-operation protocol overhead under an honest server (c-workload preservation)",
        &[
            "protocol",
            "mix",
            "msgs/op",
            "bytes/op",
            "rounds/op",
            "sync rounds",
            "sync bytes",
            "audits",
        ],
    );

    for (mix_name, mix) in [
        ("read-heavy", OpMix::read_heavy()),
        ("write-heavy", OpMix::write_heavy()),
    ] {
        for protocol in [
            ProtocolKind::Trusted,
            ProtocolKind::One,
            ProtocolKind::Two,
            ProtocolKind::Three,
        ] {
            let spec = SimSpec {
                protocol,
                config,
                n_users,
                mss_height: 12,
                setup_seed: [0xE2; 32],
                final_sync: true,
                faults: tcvs_core::FaultPlan::none(),
            };
            let trace = if protocol == ProtocolKind::Three {
                // Protocol III requires the epoch workload shape.
                let ops_per_epoch = 2u64;
                let epochs = (n_ops as u64 / (n_users as u64 * ops_per_epoch)).max(3);
                generate_epoch_workload(
                    n_users,
                    epochs,
                    config.epoch_len,
                    ops_per_epoch,
                    &WorkloadSpec {
                        n_users,
                        mix,
                        seed: 0xE2,
                        ..WorkloadSpec::default()
                    },
                )
            } else {
                generate(&WorkloadSpec {
                    n_users,
                    n_ops,
                    mix,
                    seed: 0xE2,
                    ..WorkloadSpec::default()
                })
            };
            let mut server = HonestServer::new(&config);
            let r = simulate(&spec, &mut server, &trace, None);
            assert!(
                !r.detected(),
                "honest run must not detect: {:?}",
                r.detection
            );
            t.row(vec![
                protocol.label().to_string(),
                mix_name.to_string(),
                f(r.msgs_per_op()),
                f(r.bytes_per_op()),
                f(r.makespan_rounds as f64 / r.ops_executed as f64),
                r.sync_rounds.to_string(),
                r.sync_bytes.to_string(),
                r.audits.to_string(),
            ]);
        }
    }
    t.note("protocol-1 pays one extra message and one extra round per op (the blocking signature deposit) plus signature bytes.");
    t.note("protocol-2 matches the trusted baseline in messages and rounds; overhead is the VO bytes only.");
    t.note(
        "protocol-3 adds periodic epoch-state deposits and audits instead of broadcast sync-ups.",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e2_overhead_ordering_holds() {
        let tables = super::run(true);
        let t = &tables[0];
        let get = |proto: &str, mix: &str, col: usize| -> f64 {
            t.rows
                .iter()
                .find(|r| r[0] == proto && r[1] == mix)
                .unwrap()[col]
                .parse()
                .unwrap()
        };
        // Messages: trusted (2) < protocol-1 (3); protocol-2 == trusted.
        assert!(get("protocol-1", "write-heavy", 2) > get("protocol-2", "write-heavy", 2));
        assert_eq!(
            get("trusted", "read-heavy", 2),
            get("protocol-2", "read-heavy", 2)
        );
        // Bytes: every protocol costs at least the trusted baseline.
        assert!(get("protocol-1", "read-heavy", 3) > get("trusted", "read-heavy", 3));
    }
}
