//! E8 — the crypto substrate behind the protocols' assumptions: SHA-256
//! throughput, one-time and Merkle signatures (costs and sizes), matching
//! the PKI assumption of §4.2.

use std::time::Instant;

use tcvs_crypto::{
    lamport::{lamport_keygen, lamport_sign, lamport_verify},
    mss::{mss_verify, MssSigner},
    sha256,
    wots::{wots_keygen, wots_sign, wots_verify},
    SeedRng, Sha256,
};

use crate::table::{f, Table};

fn time_us<T>(iters: u32, mut op: impl FnMut() -> T) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(op());
    }
    start.elapsed().as_secs_f64() * 1e6 / iters as f64
}

/// Runs E8.
pub fn run(quick: bool) -> Vec<Table> {
    let iters = if quick { 20 } else { 200 };

    // --- SHA-256 throughput ------------------------------------------------
    let mut t1 = Table::new(
        "E8a",
        "SHA-256 throughput (the collision-intractable hash of [2])",
        &["message bytes", "µs/hash", "MB/s"],
    );
    for exp in [4u32, 8, 12, 16, 20] {
        let len = 1usize << exp;
        let data = vec![0x5Au8; len];
        let us = time_us(iters, || {
            let mut h = Sha256::new();
            h.update(&data);
            h.finalize()
        });
        t1.row(vec![
            len.to_string(),
            f(us),
            f(len as f64 / us), // bytes/µs == MB/s
        ]);
    }

    // --- One-time signatures ------------------------------------------------
    let mut t2 = Table::new(
        "E8b",
        "one-time signatures: Lamport vs Winternitz (w=16)",
        &["scheme", "keygen µs", "sign µs", "verify µs", "sig bytes"],
    );
    let msg = sha256(b"h(M(D) || ctr)");
    {
        let keygen_us = time_us(iters, || {
            let mut rng = SeedRng::from_label(b"e8-lamport");
            lamport_keygen(&mut rng)
        });
        let mut rng = SeedRng::from_label(b"e8-lamport");
        let (mut sk, pk) = lamport_keygen(&mut rng);
        let sig = lamport_sign(&mut sk, &msg).unwrap();
        let verify_us = time_us(iters, || lamport_verify(&pk, &msg, &sig));
        let sign_us = time_us(iters, || {
            let mut rng = SeedRng::from_label(b"e8-lamport-s");
            let (mut sk, _) = lamport_keygen(&mut rng);
            lamport_sign(&mut sk, &msg).unwrap()
        });
        t2.row(vec![
            "lamport".into(),
            f(keygen_us),
            f(sign_us),
            f(verify_us),
            sig.size_bytes().to_string(),
        ]);
    }
    {
        let keygen_us = time_us(iters, || {
            let mut rng = SeedRng::from_label(b"e8-wots");
            wots_keygen(&mut rng)
        });
        let mut rng = SeedRng::from_label(b"e8-wots");
        let (mut sk, pk) = wots_keygen(&mut rng);
        let sig = wots_sign(&mut sk, &msg).unwrap();
        let verify_us = time_us(iters, || wots_verify(&pk, &msg, &sig));
        let sign_us = time_us(iters, || {
            let mut rng = SeedRng::from_label(b"e8-wots-s");
            let (mut sk, _) = wots_keygen(&mut rng);
            wots_sign(&mut sk, &msg).unwrap()
        });
        t2.row(vec![
            "wots-16".into(),
            f(keygen_us),
            f(sign_us),
            f(verify_us),
            sig.size_bytes().to_string(),
        ]);
    }

    // --- Merkle signature scheme ---------------------------------------------
    let mut t3 = Table::new(
        "E8c",
        "Merkle signature scheme: many-time keys from one-time keys [9]",
        &[
            "height",
            "capacity",
            "keygen ms",
            "sign µs",
            "verify µs",
            "sig bytes",
        ],
    );
    let heights: Vec<u32> = if quick {
        vec![4, 8]
    } else {
        vec![4, 6, 8, 10, 12]
    };
    for h in heights {
        let start = Instant::now();
        let mut signer = MssSigner::generate([0xE8; 32], h);
        let keygen_ms = start.elapsed().as_secs_f64() * 1e3;
        let pk = signer.public_key();
        let sign_us = time_us(8, || signer.sign(&msg).unwrap());
        let sig = signer.sign(&msg).unwrap();
        let verify_us = time_us(iters, || mss_verify(&pk, &msg, &sig));
        t3.row(vec![
            h.to_string(),
            (1u64 << h).to_string(),
            f(keygen_ms),
            f(sign_us),
            f(verify_us),
            sig.size_bytes().to_string(),
        ]);
    }
    t3.note("keygen is O(2^height) one-time keygens; sign/verify stay O(height) — the protocol's per-op cost is flat.");

    vec![t1, t2, t3]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e8_produces_three_tables() {
        let tables = super::run(true);
        assert_eq!(tables.len(), 3);
        assert!(tables.iter().all(|t| !t.rows.is_empty()));
        // WOTS signatures are far smaller than Lamport's.
        let t2 = &tables[1];
        let lam: u64 = t2.rows[0][4].parse().unwrap();
        let wots: u64 = t2.rows[1][4].parse().unwrap();
        assert!(wots * 3 < lam);
    }
}
