//! E10 — the detection-delay matrix (§2.2.1's metric): every adversary ×
//! every protocol × many seeds; detection rate and delay in operations.

use tcvs_core::adversary::{
    CounterSkipServer, DropServer, ForkServer, LieServer, RollbackServer, StaleReadServer,
    TamperServer, Trigger,
};
use tcvs_core::{ProtocolConfig, ProtocolKind, ServerApi};
use tcvs_sim::{simulate, SimSpec};
use tcvs_workload::{generate, generate_epoch_workload, OpMix, WorkloadSpec};

use crate::table::{f, Table};

fn make_adversary(name: &str, config: &ProtocolConfig, trigger: u64) -> Box<dyn ServerApi> {
    let t = Trigger::AtCtr(trigger);
    match name {
        "fork" => Box::new(ForkServer::new(config, t, &[0, 1])),
        "drop" => Box::new(DropServer::new(config, t)),
        "rollback" => Box::new(RollbackServer::new(config, t)),
        "tamper" => Box::new(TamperServer::new(config, t)),
        "counter-skip" => Box::new(CounterSkipServer::new(config, t)),
        "lie" => Box::new(LieServer::new(config, t)),
        "stale-read" => Box::new(StaleReadServer::new(config, t)),
        other => panic!("unknown adversary {other}"),
    }
}

/// Runs E10.
pub fn run(quick: bool) -> Vec<Table> {
    let seeds: Vec<u64> = if quick {
        vec![1, 2]
    } else {
        (1..=20).collect()
    };
    let n_users = 4u32;
    let epoch_len = 16u64;
    let config = ProtocolConfig {
        order: 8,
        k: 8,
        epoch_len,
    };
    let adversaries = [
        "fork",
        "drop",
        "rollback",
        "tamper",
        "counter-skip",
        "lie",
        "stale-read",
    ];
    let protocols = [ProtocolKind::One, ProtocolKind::Two, ProtocolKind::Three];

    let mut t = Table::new(
        "E10",
        "detection matrix: adversary × protocol (rate, median delay in ops)",
        &[
            "adversary",
            "protocol",
            "runs",
            "detected",
            "median ops-after-fault",
            "median max-user-ops (k metric)",
        ],
    );

    for adversary in adversaries {
        for protocol in protocols {
            let mut detected = 0u32;
            let mut delays = Vec::new();
            let mut kdelays = Vec::new();
            for &seed in &seeds {
                let trace = if protocol == ProtocolKind::Three {
                    // write-heavy (not update-only) so the read-targeting
                    // stale-read adversary has operations to attack.
                    generate_epoch_workload(
                        n_users,
                        10,
                        epoch_len,
                        2,
                        &WorkloadSpec {
                            n_users,
                            key_space: 32,
                            mix: OpMix::write_heavy(),
                            seed,
                            ..WorkloadSpec::default()
                        },
                    )
                } else {
                    generate(&WorkloadSpec {
                        n_users,
                        n_ops: 120,
                        key_space: 32,
                        mix: OpMix::write_heavy(),
                        seed,
                        ..WorkloadSpec::default()
                    })
                };
                // Fault a third of the way in.
                let trigger = trace.len() as u64 / 3;
                let mut server = make_adversary(adversary, &config, trigger);
                let spec = SimSpec {
                    protocol,
                    config,
                    n_users,
                    mss_height: 9,
                    setup_seed: [seed as u8; 32],
                    final_sync: true,
                    faults: tcvs_core::FaultPlan::none(),
                };
                let r = simulate(&spec, server.as_mut(), &trace, Some(trigger));
                if let Some(ev) = r.detection {
                    detected += 1;
                    if let Some(d) = ev.ops_after_violation {
                        delays.push(d);
                    }
                    if let Some(m) = ev.max_user_ops_after_violation {
                        kdelays.push(m);
                    }
                }
            }
            delays.sort_unstable();
            kdelays.sort_unstable();
            let med = |v: &[u64]| {
                if v.is_empty() {
                    "—".to_string()
                } else {
                    v[v.len() / 2].to_string()
                }
            };
            t.row(vec![
                adversary.into(),
                protocol.label().into(),
                seeds.len().to_string(),
                format!("{}%", f(100.0 * detected as f64 / seeds.len() as f64)),
                med(&delays),
                med(&kdelays),
            ]);
        }
    }
    t.note("all protocols detect all seven adversaries; per-op checks (lie, counter regression) detect instantly, structural attacks wait for the sync-up (≤ k per-user ops) or epoch audit (≤ 2 epochs).");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e10_full_detection_rate() {
        let tables = super::run(true);
        for row in &tables[0].rows {
            assert_eq!(
                row[3], "100%",
                "{} vs {} must be detected in all runs",
                row[0], row[1]
            );
        }
    }
}
