//! E7 — §2.2.3: the token-ring strawman violates workload preservation.
//!
//! A user issuing two back-to-back operations waits Θ(n) slots in the ring
//! (all other users must write signed nulls), while Protocols I and II
//! complete consecutive operations in O(1) rounds regardless of n.

use tcvs_core::{HonestServer, Op, ProtocolConfig, ProtocolKind};
use tcvs_merkle::u64_key;
use tcvs_sim::token_ring::run_burst_ring;
use tcvs_sim::{simulate, SimSpec};
use tcvs_workload::{ScheduledOp, Trace};

use crate::table::Table;

/// Back-to-back burst trace for one user (used for the P-I/P-II arms).
fn burst_trace(burst: u64) -> Trace {
    Trace::new(
        (0..burst)
            .map(|i| ScheduledOp {
                round: i, // issued as fast as the server allows
                user: 0,
                op: Op::Put(u64_key(i), vec![i as u8]),
            })
            .collect(),
    )
}

/// Runs E7.
pub fn run(quick: bool) -> Vec<Table> {
    let ring_sizes: Vec<u32> = if quick {
        vec![2, 8]
    } else {
        vec![2, 4, 8, 16, 32, 64]
    };
    let burst = 4u64;
    let config = ProtocolConfig {
        order: 8,
        k: u64::MAX,
        epoch_len: 1 << 30,
    };

    let mut t = Table::new(
        "E7",
        "back-to-back op latency: token-ring strawman vs protocols I/II (workload preservation)",
        &[
            "users",
            "ring: slots between ops",
            "ring: null records",
            "p1: rounds between ops",
            "p2: rounds between ops",
        ],
    );

    for &n in &ring_sizes {
        let ring = run_burst_ring(n, burst, &config);
        let ring_gap = if ring.burst_exec_slots.len() >= 2 {
            ring.burst_exec_slots[1] - ring.burst_exec_slots[0]
        } else {
            0
        };

        // Protocols I and II: the number of users is irrelevant for a
        // back-to-back burst; measure makespan/op via the simulator.
        let mut gaps = Vec::new();
        for protocol in [ProtocolKind::One, ProtocolKind::Two] {
            let spec = SimSpec {
                protocol,
                config,
                n_users: n,
                mss_height: 6,
                setup_seed: [0xE7; 32],
                final_sync: false,
                faults: tcvs_core::FaultPlan::none(),
            };
            let mut server = HonestServer::new(&config);
            let r = simulate(&spec, &mut server, &burst_trace(burst), None);
            gaps.push(r.makespan_rounds as f64 / burst as f64);
        }

        t.row(vec![
            n.to_string(),
            ring_gap.to_string(),
            ring.null_records.to_string(),
            format!("{:.0}", gaps[0]),
            format!("{:.0}", gaps[1]),
        ]);
    }
    t.note("ring latency grows linearly with n (and every wait writes n−1 signed nulls); protocols I/II stay flat at 2 and 1 rounds respectively.");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e7_ring_linear_protocols_flat() {
        let tables = super::run(true);
        let t = &tables[0];
        let first = &t.rows[0];
        let last = &t.rows[t.rows.len() - 1];
        let ring_first: u64 = first[1].parse().unwrap();
        let ring_last: u64 = last[1].parse().unwrap();
        let n_first: u64 = first[0].parse().unwrap();
        let n_last: u64 = last[0].parse().unwrap();
        assert_eq!(ring_first, n_first);
        assert_eq!(ring_last, n_last, "ring gap == n");
        // P-I and P-II gaps are identical across ring sizes.
        assert_eq!(first[3], last[3]);
        assert_eq!(first[4], last[4]);
    }
}
