//! E3 — Fig. 1 / Theorem 3.1: the partition (fork) attack.
//!
//! On a partitionable workload, a forking server is **undetectable without
//! external communication** (the no-sync arm runs to completion with every
//! per-operation check passing), while Protocols I and II detect it at the
//! next broadcast sync-up — within `k` operations of any single user.

use tcvs_core::adversary::{ForkServer, Trigger};
use tcvs_core::{ProtocolConfig, ProtocolKind};
use tcvs_sim::{simulate, SimSpec};
use tcvs_workload::{partitionable, PartitionSpec};

use crate::table::Table;

/// Runs E3.
pub fn run(quick: bool) -> Vec<Table> {
    let ks: Vec<u64> = if quick {
        vec![4, 16]
    } else {
        vec![2, 4, 8, 16, 32, 64]
    };
    let n_users = 4u32;

    let mut t = Table::new(
        "E3",
        "partition attack detection (Fig. 1, Thm. 3.1): fork at t1, group B works on",
        &[
            "protocol",
            "k",
            "external comm",
            "detected",
            "detect verdict",
            "max user ops after fork",
        ],
    );

    for &k in &ks {
        let config = ProtocolConfig {
            order: 16,
            k,
            epoch_len: 256,
        };
        // Group B performs enough tail work that a k-bounded detector must
        // have fired: 3k ops spread over the two B users.
        let w = partitionable(&PartitionSpec {
            n_users,
            warmup_ops: 12,
            tail_ops: 3 * k,
            key_space: 64,
            seed: k,
        });

        // Arm 1: no external communication (Theorem 3.1's regime):
        // Protocol II per-op checks only, sync disabled.
        let spec = SimSpec {
            protocol: ProtocolKind::Two,
            config: ProtocolConfig {
                k: u64::MAX, // sync never triggers
                ..config
            },
            n_users,
            mss_height: 8,
            setup_seed: [0xE3; 32],
            final_sync: false,
            faults: tcvs_core::FaultPlan::none(),
        };
        let mut server = ForkServer::new(&spec.config, Trigger::AtCtr(w.t1_index), &group_a(&w));
        let r = simulate(&spec, &mut server, &w.trace, Some(w.t1_index));
        t.row(vec![
            "protocol-2".into(),
            k.to_string(),
            "none".into(),
            if r.detected() {
                "YES".into()
            } else {
                "no".into()
            },
            r.detection
                .as_ref()
                .map_or("—".to_string(), |d| d.deviation.to_string()),
            "—".into(),
        ]);

        // Arms 2-3: Protocols I and II with the broadcast channel.
        for protocol in [ProtocolKind::One, ProtocolKind::Two] {
            let spec = SimSpec {
                protocol,
                config,
                n_users,
                mss_height: 10,
                setup_seed: [0xE3; 32],
                final_sync: true,
                faults: tcvs_core::FaultPlan::none(),
            };
            let mut server =
                ForkServer::new(&spec.config, Trigger::AtCtr(w.t1_index), &group_a(&w));
            let r = simulate(&spec, &mut server, &w.trace, Some(w.t1_index));
            let ev = r.detection.as_ref();
            t.row(vec![
                protocol.label().into(),
                k.to_string(),
                "broadcast".into(),
                if r.detected() {
                    "YES".into()
                } else {
                    "no".into()
                },
                ev.map_or("—".to_string(), |d| d.deviation.to_string()),
                ev.and_then(|d| d.max_user_ops_after_violation)
                    .map_or("—".to_string(), |m| m.to_string()),
            ]);
        }
    }
    t.note("without external communication the fork is never detected, no matter how long group B works (Theorem 3.1).");
    t.note("with the broadcast sync-up, detection is k-bounded: it fires by the time any user completes k ops after the fork.");

    // --- E3b: the Definition 2.1 oracle vs. protocol detection ------------
    // Ground truth: when does a response first diverge from any trusted
    // execution? For the partitionable workload this is t2 — group B's
    // causally dependent read of the header group A just committed — one
    // operation after the fork. The protocols cannot act there without
    // external communication; the gap between the two columns is exactly
    // what Theorem 3.1 is about.
    let mut t2 = Table::new(
        "E3b",
        "ground truth (Definition 2.1 oracle) vs protocol detection on the partition attack",
        &[
            "k",
            "oracle: first observable divergence (op)",
            "protocol-2 detects at (op)",
            "gap (ops)",
        ],
    );
    for &k in &ks {
        let config = ProtocolConfig {
            order: 16,
            k,
            epoch_len: 256,
        };
        let w = partitionable(&PartitionSpec {
            n_users,
            warmup_ops: 12,
            tail_ops: 3 * k,
            key_space: 64,
            seed: k,
        });
        let mut oracle_server = ForkServer::new(&config, Trigger::AtCtr(w.t1_index), &group_a(&w));
        let verdict = tcvs_sim::run_with_oracle(&mut oracle_server, &config, &w.trace);
        let observable = verdict.first_divergence();

        let spec = SimSpec {
            protocol: ProtocolKind::Two,
            config,
            n_users,
            mss_height: 10,
            setup_seed: [0xE3; 32],
            final_sync: true,
            faults: tcvs_core::FaultPlan::none(),
        };
        let mut server = ForkServer::new(&config, Trigger::AtCtr(w.t1_index), &group_a(&w));
        let r = simulate(&spec, &mut server, &w.trace, Some(w.t1_index));
        let detect_at = r.detection.as_ref().map(|d| d.op_index);
        t2.row(vec![
            k.to_string(),
            observable.map_or("never".into(), |i| i.to_string()),
            detect_at.map_or("never".into(), |i| i.to_string()),
            match (observable, detect_at) {
                (Some(o), Some(d)) => (d.saturating_sub(o)).to_string(),
                _ => "—".into(),
            },
        ]);
    }
    t2.note("the deviation is observable (per Definition 2.1) at t2 = fork+1; without communication nobody can KNOW it; the sync-up closes the gap within O(k) ops.");

    vec![t, t2]
}

fn group_a(w: &tcvs_workload::PartitionableWorkload) -> Vec<u32> {
    w.group_a.clone()
}

#[cfg(test)]
mod tests {
    #[test]
    fn e3_impossibility_and_detection() {
        let tables = super::run(true);
        let t = &tables[0];
        for row in &t.rows {
            let k: u64 = row[1].parse().unwrap();
            if row[2] == "none" {
                assert_eq!(row[3], "no", "no external comm => undetected (k={k})");
            } else {
                assert_eq!(row[3], "YES", "{} k={k} must detect", row[0]);
                let m: u64 = row[5].parse().unwrap();
                assert!(m <= k + 1, "{} k={k}: k-bounded detection, got {m}", row[0]);
            }
        }
    }
}
