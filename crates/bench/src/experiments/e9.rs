//! E9 — §1's motivating application, end to end: a realistic multi-file
//! CVS repository driven through (a) a plain in-memory repository, (b) the
//! CVS layer over an *unverified* server session, and (c) the CVS layer
//! over the full Protocol II verified session. The overhead factor of
//! "trusting nothing" is the headline number.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tcvs_core::{HonestServer, ProtocolConfig};
use tcvs_cvs::{Cvs, DirectSession, UnverifiedSession, VerifiedDb};
use tcvs_store::Repository;
use tcvs_workload::Zipf;

use crate::table::{f, Table};

/// A synthetic source file of `lines` lines.
fn file_body(seed: u64, lines: usize) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = String::new();
    for i in 0..lines {
        s.push_str(&format!("line {i}: x = {};\n", rng.gen::<u32>()));
    }
    s
}

/// One synthetic commit stream: which file, which line to edit.
struct CommitStream {
    rng: StdRng,
    zipf: Zipf,
}

impl CommitStream {
    fn new(files: usize, seed: u64) -> CommitStream {
        CommitStream {
            rng: StdRng::seed_from_u64(seed),
            zipf: Zipf::new(files, 0.9),
        }
    }

    fn next(&mut self) -> (usize, usize, String) {
        let file = self.zipf.sample(&mut self.rng);
        let line = self.rng.gen_range(0..40);
        let new = format!("line {line}: x = {}; // edited", self.rng.gen::<u32>());
        (file, line, new)
    }
}

fn drive_cvs<D: VerifiedDb + ?Sized>(
    db: &mut D,
    files: usize,
    commits: usize,
    checkouts_per_commit: usize,
) -> Result<(), tcvs_cvs::CvsError> {
    let mut cvs = Cvs::new(db, "bench-user");
    for fidx in 0..files {
        cvs.add(
            &format!("src/file{fidx}.c"),
            &file_body(fidx as u64, 40),
            "initial import",
            0,
        )?;
    }
    let mut stream = CommitStream::new(files, 99);
    for c in 0..commits {
        let (fidx, line, new) = stream.next();
        let path = format!("src/file{fidx}.c");
        let mut wf = cvs.checkout(&path)?;
        if line < wf.lines.len() {
            wf.lines[line] = new;
        } else {
            wf.lines.push(new);
        }
        cvs.commit(&wf, &format!("commit {c}"), c as u64 + 1)?;
        // Interleave reads like real developers.
        for _ in 0..checkouts_per_commit {
            let (ridx, _, _) = stream.next();
            let _ = cvs.checkout(&format!("src/file{ridx}.c"))?;
        }
    }
    Ok(())
}

/// Runs E9.
pub fn run(quick: bool) -> Vec<Table> {
    let files = if quick { 20 } else { 100 };
    let commits = if quick { 100 } else { 1000 };
    let checkouts = 2usize;
    let config = ProtocolConfig {
        order: 16,
        k: u64::MAX,
        epoch_len: 1 << 30,
    };

    let mut t = Table::new(
        "E9",
        "CVS macro-benchmark: plain repo vs unverified server vs trusted-cvs (Protocol II)",
        &[
            "variant",
            "commits",
            "wall ms",
            "ms/commit",
            "server MB out",
            "vs plain",
            "vs unverified",
        ],
    );

    // (a) plain in-memory repository (no server at all).
    let start = Instant::now();
    {
        let mut repo = Repository::new();
        for fidx in 0..files {
            repo.commit(
                "bench-user",
                "initial import",
                0,
                vec![(
                    format!("src/file{fidx}.c"),
                    tcvs_store::to_lines(&file_body(fidx as u64, 40)),
                )],
            )
            .unwrap();
        }
        let mut stream = CommitStream::new(files, 99);
        for c in 0..commits {
            let (fidx, line, new) = stream.next();
            let path = format!("src/file{fidx}.c");
            let mut lines = repo.checkout(&path).unwrap().to_vec();
            if line < lines.len() {
                lines[line] = new;
            } else {
                lines.push(new);
            }
            repo.commit(
                "bench-user",
                &format!("commit {c}"),
                c as u64 + 1,
                vec![(path, lines)],
            )
            .unwrap();
            for _ in 0..checkouts {
                let (ridx, _, _) = stream.next();
                let _ = repo.checkout(&format!("src/file{ridx}.c")).unwrap();
            }
        }
    }
    let plain_ms = start.elapsed().as_secs_f64() * 1e3;
    t.row(vec![
        "plain repository".into(),
        commits.to_string(),
        f(plain_ms),
        f(plain_ms / commits as f64),
        "—".into(),
        "1.00".into(),
        "—".into(),
    ]);

    // (b) CVS layer over an unverified server session.
    let start = Instant::now();
    let unverified_bytes;
    {
        let mut session = UnverifiedSession::new(0, HonestServer::new(&config));
        drive_cvs(&mut session, files, commits, checkouts).unwrap();
        // Recover metrics through the session's server.
        unverified_bytes = 0u64; // UnverifiedSession does not expose the server
    }
    let unv_ms = start.elapsed().as_secs_f64() * 1e3;
    let _ = unverified_bytes;
    t.row(vec![
        "cvs / unverified server".into(),
        commits.to_string(),
        f(unv_ms),
        f(unv_ms / commits as f64),
        "—".into(),
        f(unv_ms / plain_ms),
        "1.00".into(),
    ]);

    // (c) CVS layer over the verified Protocol II session.
    let start = Instant::now();
    let verified_bytes;
    {
        let mut session = DirectSession::new(0, HonestServer::new(&config), config);
        drive_cvs(&mut session, files, commits, checkouts).unwrap();
        verified_bytes = {
            use tcvs_core::ServerApi;
            session.server_mut().metrics().bytes_out
        };
    }
    let ver_ms = start.elapsed().as_secs_f64() * 1e3;
    t.row(vec![
        "trusted-cvs (protocol-2)".into(),
        commits.to_string(),
        f(ver_ms),
        f(ver_ms / commits as f64),
        f(verified_bytes as f64 / 1e6),
        f(ver_ms / plain_ms),
        f(ver_ms / unv_ms),
    ]);

    t.note("the protocol's own cost is the vs-unverified column (Merkle maintenance + proof replay): a small constant factor.");
    t.note("the vs-plain column is dominated by storing histories as serialized database values, which both server variants pay equally.");

    // --- E9b: storage ablation — reverse-delta chains vs full copies ------
    let mut t2 = Table::new(
        "E9b",
        "ablation: RCS-style reverse-delta storage vs storing full revisions",
        &[
            "revisions",
            "file lines",
            "delta bytes",
            "full-copy bytes",
            "ratio",
        ],
    );
    for (revisions, lines) in [(50usize, 100usize), (200, 100), (200, 400)] {
        if quick && revisions > 50 {
            continue;
        }
        let base: Vec<String> = (0..lines)
            .map(|i| format!("line {i}: some source text"))
            .collect();
        let mut h = tcvs_store::FileHistory::create(
            base.clone(),
            tcvs_store::RevMeta {
                author: "u".into(),
                message: "import".into(),
                stamp: 0,
            },
        );
        let mut full_bytes = base.iter().map(|l| l.len() + 1).sum::<usize>();
        let mut rng2 = StdRng::seed_from_u64(7);
        for r in 0..revisions {
            let mut c = h.head_content().to_vec();
            let li = rng2.gen_range(0..c.len());
            c[li] = format!("line {li}: edited at revision {r}");
            full_bytes += c.iter().map(|l| l.len() + 1).sum::<usize>();
            h.commit(
                c,
                tcvs_store::RevMeta {
                    author: "u".into(),
                    message: format!("r{r}"),
                    stamp: r as u64,
                },
            );
        }
        let delta_bytes = h.to_bytes().len();
        t2.row(vec![
            revisions.to_string(),
            lines.to_string(),
            delta_bytes.to_string(),
            full_bytes.to_string(),
            format!("{:.1}x", full_bytes as f64 / delta_bytes as f64),
        ]);
    }
    t2.note("reverse deltas shrink history storage by an order of magnitude for single-line-edit commit streams — why CVS/RCS store files this way.");

    vec![t, t2]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e9_runs_and_orders_costs() {
        let tables = super::run(true);
        let t = &tables[0];
        assert_eq!(t.rows.len(), 3);
        let plain: f64 = t.rows[0][2].parse().unwrap();
        let verified: f64 = t.rows[2][2].parse().unwrap();
        assert!(verified >= plain * 0.5, "sanity: timing is meaningful");
    }
}
