//! E1 — Fig. 2 / §4.1: verification objects are `O(log n)`.
//!
//! For growing database sizes and several branching orders, measure the
//! size of the verification object (materialized nodes and bytes) for point
//! reads, updates, and deletes, plus client-side verify time.

use std::time::Instant;

use tcvs_merkle::{
    apply_op, prune_for_op, u64_key, verify_response, MerkleTree, Op, VerificationObject,
};

use crate::table::{f, Table};

/// Runs E1. `quick` restricts the sweep for CI-speed runs.
pub fn run(quick: bool) -> Vec<Table> {
    let sizes: Vec<u32> = if quick {
        vec![8, 10, 12]
    } else {
        vec![6, 8, 10, 12, 14, 16, 18, 20]
    };
    let orders: Vec<usize> = if quick {
        vec![4, 16]
    } else {
        vec![4, 8, 16, 64]
    };

    let mut t = Table::new(
        "E1",
        "verification-object size and verify cost vs database size (Fig. 2)",
        &[
            "n",
            "order",
            "height-ish",
            "get VO nodes",
            "get VO bytes",
            "del VO nodes",
            "del VO bytes",
            "verify µs",
        ],
    );

    for &order in &orders {
        let mut prev_bytes = 0usize;
        for &exp in &sizes {
            let n = 1u64 << exp;
            let mut tree = MerkleTree::with_order(order);
            for i in 0..n {
                tree.insert(u64_key(i), vec![0xAB; 24]).expect("full tree");
            }
            let probe = u64_key(n / 3);
            let get_op = Op::Get(probe.clone());
            let del_op = Op::Delete(probe.clone());
            let get_vo = VerificationObject::new(prune_for_op(&tree, &get_op));
            let del_vo = VerificationObject::new(prune_for_op(&tree, &del_op));

            // Verify cost: replay the get against the known root.
            let root = tree.root_digest();
            let mut scratch = tree.clone();
            let answer = apply_op(&mut scratch, &get_op).unwrap();
            let started = Instant::now();
            let iters = if quick { 10 } else { 50 };
            for _ in 0..iters {
                verify_response(&root, order, &get_vo, &get_op, Some(&answer), None).unwrap();
            }
            let verify_us = started.elapsed().as_secs_f64() * 1e6 / iters as f64;

            t.row(vec![
                format!("2^{exp}"),
                order.to_string(),
                format!(
                    "{}",
                    ((n as f64).ln() / (order as f64 / 2.0).ln()).ceil() as u64
                ),
                get_vo.materialized_nodes().to_string(),
                get_vo.encoded_size().to_string(),
                del_vo.materialized_nodes().to_string(),
                del_vo.encoded_size().to_string(),
                f(verify_us),
            ]);
            prev_bytes = get_vo.encoded_size().max(prev_bytes);
        }
        let _ = prev_bytes;
    }
    t.note("VO size grows ~linearly in tree height (logarithmically in n): doubling n repeatedly adds a constant number of nodes per height step.");
    t.note("delete proofs are a small constant factor larger than reads (adjacent siblings for borrow/merge).");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e1_runs_and_shows_log_growth() {
        let tables = super::run(true);
        let t = &tables[0];
        assert!(t.rows.len() >= 6);
        // For a fixed order, VO nodes from n=2^8 to n=2^12 grow by a few
        // nodes, not by 16x.
        let nodes: Vec<u64> = t
            .rows
            .iter()
            .filter(|r| r[1] == "4")
            .map(|r| r[3].parse().unwrap())
            .collect();
        assert!(nodes.last().unwrap() < &(nodes[0] * 4));
    }
}
