//! E5 — Fig. 4 / Theorem 4.3: Protocol III detects every deviation within
//! two epochs, with no user-to-user channel.
//!
//! Each adversary is triggered mid-run under an epoch-respecting workload
//! (every user ≥ 2 ops per epoch); we record when a user first knows the
//! server deviated and express the delay in epochs. The audit of epoch `e`
//! runs during epoch `e + 2`, so the theorem's bound manifests as a delay
//! of at most ~2 epochs past the epoch the fault occurred in.

use tcvs_core::adversary::{
    CounterSkipServer, DropServer, ForkServer, LieServer, RollbackServer, TamperServer, Trigger,
};
use tcvs_core::{ProtocolConfig, ProtocolKind, ServerApi};
use tcvs_sim::{simulate, SimSpec};
use tcvs_workload::{generate_epoch_workload, OpMix, WorkloadSpec};

use crate::table::{f, Table};

/// Runs E5.
pub fn run(quick: bool) -> Vec<Table> {
    let n_users = 3u32;
    let ops_per_epoch = 2u64;
    let epoch_len = 12u64;
    let epochs = if quick { 8 } else { 12 };
    let config = ProtocolConfig {
        order: 8,
        k: 1024,
        epoch_len,
    };

    let triggers: Vec<u64> = if quick { vec![13] } else { vec![9, 13, 20, 27] };

    let mut t = Table::new(
        "E5",
        "Protocol III: detection latency in epochs per adversary (Fig. 4, Thm. 4.3)",
        &[
            "adversary",
            "trigger op",
            "fault epoch",
            "detected",
            "detect epoch",
            "delay (epochs)",
            "verdict",
        ],
    );

    for &trigger in &triggers {
        let adversaries: Vec<(&str, Box<dyn ServerApi>)> = vec![
            (
                "fork",
                Box::new(ForkServer::new(&config, Trigger::AtCtr(trigger), &[0])),
            ),
            (
                "drop",
                Box::new(DropServer::new(&config, Trigger::AtCtr(trigger))),
            ),
            (
                "rollback",
                Box::new(RollbackServer::new(&config, Trigger::AtCtr(trigger))),
            ),
            (
                "tamper",
                Box::new(TamperServer::new(&config, Trigger::AtCtr(trigger))),
            ),
            (
                "counter-skip",
                Box::new(CounterSkipServer::new(&config, Trigger::AtCtr(trigger))),
            ),
            (
                "lie",
                Box::new(LieServer::new(&config, Trigger::AtCtr(trigger))),
            ),
        ];

        let trace = generate_epoch_workload(
            n_users,
            epochs,
            epoch_len,
            ops_per_epoch,
            &WorkloadSpec {
                n_users,
                key_space: 32,
                seed: trigger,
                // Update-only so the fault fires exactly at the trigger op
                // (the drop adversary waits for an update).
                mix: OpMix::update_only(),
                ..WorkloadSpec::default()
            },
        );
        let fault_round = trace.ops()[trigger as usize].round;
        let fault_epoch = fault_round / epoch_len;

        for (name, mut server) in adversaries {
            let spec = SimSpec {
                protocol: ProtocolKind::Three,
                config,
                n_users,
                mss_height: 8,
                setup_seed: [0xE5; 32],
                final_sync: false,
                faults: tcvs_core::FaultPlan::none(),
            };
            let r = simulate(&spec, server.as_mut(), &trace, Some(trigger));
            match r.detection {
                Some(ev) => {
                    let detect_epoch = ev.round / epoch_len;
                    let delay = detect_epoch.saturating_sub(fault_epoch);
                    t.row(vec![
                        name.into(),
                        trigger.to_string(),
                        fault_epoch.to_string(),
                        "YES".into(),
                        detect_epoch.to_string(),
                        f(delay as f64),
                        if delay <= 2 {
                            "within 2 epochs".into()
                        } else {
                            format!("LATE ({delay})")
                        },
                    ]);
                }
                None => {
                    t.row(vec![
                        name.into(),
                        trigger.to_string(),
                        fault_epoch.to_string(),
                        "NO".into(),
                        "—".into(),
                        "—".into(),
                        "MISSED".into(),
                    ]);
                }
            }
        }
    }
    t.note("audits of epoch e run during epoch e+2, so worst-case delay is ~2 epochs; per-op checks (lie, rollback) often detect immediately (delay 0).");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e5_all_detected_within_two_epochs() {
        let tables = super::run(true);
        for row in &tables[0].rows {
            assert_eq!(row[3], "YES", "{} must be detected", row[0]);
            let delay: f64 = row[5].parse().unwrap();
            assert!(delay <= 2.0, "{}: delay {delay} epochs", row[0]);
        }
    }
}
