//! E6 — §4.3's motivation: Protocol I's blocking signature deposit costs
//! real throughput under frequent updates; Protocol II does not.
//!
//! Wall-clock, multi-threaded: `u` client threads against one server
//! thread; ops/sec and tail latency per protocol and concurrency level.

use tcvs_core::{ProtocolConfig, ProtocolKind};
use tcvs_net::run_throughput;

use crate::table::{f, Table};

/// Runs E6.
pub fn run(quick: bool) -> Vec<Table> {
    let client_counts: Vec<u32> = if quick {
        vec![1, 4]
    } else {
        vec![1, 2, 4, 8, 16]
    };
    let ops_per_client: u64 = if quick { 100 } else { 1000 };
    let config = ProtocolConfig {
        order: 16,
        k: u64::MAX, // syncs out of band; this measures the op path
        epoch_len: 1 << 30,
    };

    let mut t = Table::new(
        "E6",
        "wall-clock throughput: trusted vs protocol-1 (blocking) vs protocol-2",
        &[
            "protocol", "clients", "update %", "ops/s", "p50 µs", "p99 µs",
        ],
    );

    for update_pct in [10u32, 90] {
        for &clients in &client_counts {
            for protocol in [ProtocolKind::Trusted, ProtocolKind::One, ProtocolKind::Two] {
                let r = run_throughput(protocol, clients, ops_per_client, update_pct, &config);
                t.row(vec![
                    protocol.label().into(),
                    clients.to_string(),
                    update_pct.to_string(),
                    f(r.ops_per_sec()),
                    f(r.latency_quantile(0.5).as_secs_f64() * 1e6),
                    f(r.latency_quantile(0.99).as_secs_f64() * 1e6),
                ]);
            }
        }
    }
    t.note("protocol-1 < protocol-2 ≤ trusted in ops/s; the gap grows with update rate and concurrency (the blocking deposit serializes the server).");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e6_protocol1_slower_than_protocol2_under_contention() {
        let tables = super::run(true);
        let t = &tables[0];
        let tput = |proto: &str, clients: &str, upd: &str| -> f64 {
            t.rows
                .iter()
                .find(|r| r[0] == proto && r[1] == clients && r[2] == upd)
                .unwrap()[3]
                .parse()
                .unwrap()
        };
        // At 4 clients / 90% updates the blocking effect must be visible.
        let p1 = tput("protocol-1", "4", "90");
        let p2 = tput("protocol-2", "4", "90");
        assert!(
            p1 < p2,
            "protocol-1 ({p1:.0} ops/s) should trail protocol-2 ({p2:.0} ops/s)"
        );
    }
}
