//! E11 — measured detection latency vs. the paper's theoretical bounds
//! (Theorems 4.1/4.2: `k` single-user ops for Protocols I/II; Theorem 4.3:
//! two epochs for Protocol III).
//!
//! The observability layer pairs the ground-truth deviation-injection point
//! with the first detection event and reports the exposure window in
//! operations, rounds, per-user ops, and (Protocol III) epochs. Every row
//! must come out `within-bound`: the measured latency is the reproduction
//! of the theorems, not just the binary "detected" verdict of E10.

use tcvs_core::adversary::{ForkServer, RollbackServer, TamperServer, Trigger};
use tcvs_core::{ProtocolConfig, ProtocolKind, ServerApi};
use tcvs_sim::{simulate, SimSpec};
use tcvs_workload::{generate, generate_epoch_workload, OpMix, WorkloadSpec};

use crate::table::Table;

fn make_adversary(name: &str, config: &ProtocolConfig, trigger: u64) -> Box<dyn ServerApi> {
    let t = Trigger::AtCtr(trigger);
    match name {
        "fork" => Box::new(ForkServer::new(config, t, &[0])),
        "rollback" => Box::new(RollbackServer::new(config, t)),
        "tamper" => Box::new(TamperServer::new(config, t)),
        other => panic!("unknown adversary {other}"),
    }
}

/// Runs E11.
pub fn run(quick: bool) -> Vec<Table> {
    let n_users = 3u32;
    let epoch_len = 12u64;
    let k = 6u64;
    let adversaries: &[&str] = if quick {
        &["fork"]
    } else {
        &["fork", "rollback", "tamper"]
    };

    let mut t = Table::new(
        "E11",
        "detection latency vs theoretical bound (Thms. 4.1/4.3), per protocol and adversary",
        &[
            "protocol",
            "adversary",
            "deviation op",
            "detected op",
            "ops",
            "rounds",
            "max user-ops",
            "epochs",
            "bound",
            "verdict",
        ],
    );

    for protocol in [ProtocolKind::One, ProtocolKind::Two, ProtocolKind::Three] {
        // Protocols I/II run against the k bound with epochs out of the
        // picture; Protocol III runs against the 2-epoch bound with k out
        // of the picture.
        let config = if protocol == ProtocolKind::Three {
            ProtocolConfig {
                order: 8,
                k: 1 << 20,
                epoch_len,
            }
        } else {
            ProtocolConfig {
                order: 8,
                k,
                epoch_len: 1 << 20,
            }
        };
        let trace = if protocol == ProtocolKind::Three {
            generate_epoch_workload(
                n_users,
                if quick { 6 } else { 9 },
                epoch_len,
                2,
                &WorkloadSpec {
                    n_users,
                    key_space: 32,
                    mix: OpMix::write_heavy(),
                    seed: 0xE11,
                    ..WorkloadSpec::default()
                },
            )
        } else {
            generate(&WorkloadSpec {
                n_users,
                n_ops: if quick { 60 } else { 100 },
                key_space: 32,
                mix: OpMix::write_heavy(),
                seed: 0xE11,
                ..WorkloadSpec::default()
            })
        };
        // Deviate a third of the way in; ops are served sequentially, so
        // the server ctr the trigger compares against equals the delivery
        // index.
        let trigger = trace.len() as u64 / 3;

        for adversary in adversaries {
            let mut server = make_adversary(adversary, &config, trigger);
            let spec = SimSpec {
                protocol,
                config,
                n_users,
                mss_height: 9,
                setup_seed: [0x11; 32],
                final_sync: true,
                faults: tcvs_core::FaultPlan::none(),
            };
            let r = simulate(&spec, server.as_mut(), &trace, Some(trigger));
            match &r.detection_latency {
                Some(lat) => t.row(vec![
                    protocol.label().into(),
                    (*adversary).into(),
                    lat.deviation_op.to_string(),
                    lat.detection_op.to_string(),
                    lat.ops.to_string(),
                    lat.rounds.to_string(),
                    lat.max_user_ops.map_or("—".into(), |m| m.to_string()),
                    lat.epochs.map_or("—".into(), |e| e.to_string()),
                    lat.bound.render(),
                    match lat.within_bound() {
                        Some(true) => "within-bound".into(),
                        Some(false) => "BOUND-EXCEEDED".into(),
                        None => "—".into(),
                    },
                ]),
                None => t.row(vec![
                    protocol.label().into(),
                    (*adversary).into(),
                    trigger.to_string(),
                    "—".into(),
                    "—".into(),
                    "—".into(),
                    "—".into(),
                    "—".into(),
                    "—".into(),
                    "MISSED".into(),
                ]),
            }
        }
    }
    t.note(
        "bounds: Protocols I/II detect within k ops of any single user (+1 for the sync round); \
         Protocol III within 2 epochs (the epoch-e audit runs during e+2).",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e11_every_row_is_within_bound() {
        let tables = super::run(true);
        assert!(!tables[0].rows.is_empty());
        for row in &tables[0].rows {
            assert_eq!(
                row[9], "within-bound",
                "{}/{}: measured latency must respect the theoretical bound",
                row[0], row[1]
            );
        }
    }
}
