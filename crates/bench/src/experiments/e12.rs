//! E12 — deterministic observability artifacts.
//!
//! A seeded fork-attack simulation exports its flight-recorder timeline as
//! Chrome-trace/Perfetto JSON and its counters as OpenMetrics text. Because
//! events carry logical timestamps and span ids are pure functions of
//! `(user, seq, stage)`, two runs of the same seed must produce
//! **byte-identical** artifacts — the property CI pins. The table also
//! verifies the dump is useful: the detection span links back (via its
//! trace id) to the forked client's served operations.

use tcvs_core::adversary::{ForkServer, Trigger};
use tcvs_core::{FaultPlan, ProtocolConfig, ProtocolKind};
use tcvs_obs::{
    render_chrome_trace_with_loss, render_openmetrics, EventKind, MetricsRegistry, TraceLoss,
    Tracer,
};
use tcvs_sim::{simulate_observed, simulate_with_flight_recorder, SimSpec};
use tcvs_workload::{generate, OpMix, WorkloadSpec};

use crate::table::Table;

const FORK_AT: u64 = 20;
const RING_CAP: usize = 256;

fn spec() -> SimSpec {
    SimSpec {
        protocol: ProtocolKind::Two,
        config: ProtocolConfig {
            order: 8,
            k: 8,
            epoch_len: 16,
        },
        n_users: 3,
        mss_height: 7,
        setup_seed: [5; 32],
        final_sync: true,
        faults: FaultPlan::none(),
    }
}

fn workload(n_ops: usize) -> tcvs_workload::Trace {
    generate(&WorkloadSpec {
        n_users: 3,
        n_ops,
        key_space: 32,
        mix: OpMix::write_heavy(),
        seed: 9,
        ..WorkloadSpec::default()
    })
}

/// One seeded fork-attack run, exported. Returns the Perfetto JSON, the
/// OpenMetrics exposition, the flight dump (present iff detected), and
/// whether the detection span shares a trace with a served-op span.
pub fn artifacts(quick: bool) -> (String, String, Option<String>, bool) {
    let s = spec();
    let n_ops = if quick { 60 } else { 120 };
    let t = workload(n_ops);
    let mut server = ForkServer::new(&s.config, Trigger::AtCtr(FORK_AT), &[0]);
    let (report, dump, recorder) =
        simulate_with_flight_recorder(&s, &mut server, &t, Some(FORK_AT), RING_CAP);
    let events = recorder.snapshot();
    let linked = events
        .iter()
        .find(|e| e.kind == EventKind::Detection)
        .and_then(|d| d.span)
        .map(|det| {
            events.iter().any(|e| {
                e.kind == EventKind::OpServed && e.span.is_some_and(|sp| sp.trace == det.trace)
            })
        })
        .unwrap_or(false);

    // The same seeded run through a deliberately tiny bounded sink, so the
    // exposition demonstrates the drop counter alongside the ring gauges.
    let (tracer, sink) = Tracer::memory_bounded(32);
    let mut server2 = ForkServer::new(&s.config, Trigger::AtCtr(FORK_AT), &[0]);
    let _ = simulate_observed(&s, &mut server2, &t, Some(FORK_AT), &tracer);

    let registry = MetricsRegistry::new();
    registry
        .counter("sim.ops_executed")
        .add(report.ops_executed);
    registry
        .counter("sim.detections")
        .add(u64::from(report.detected()));
    registry
        .gauge("obs.flight.recorded")
        .set(recorder.recorded() as i64);
    registry
        .gauge("obs.flight.overwritten")
        .set(recorder.overwritten() as i64);
    registry
        .gauge("obs.sink.dropped")
        .set(sink.dropped() as i64);

    (
        render_chrome_trace_with_loss(
            &events,
            TraceLoss {
                overwritten: recorder.overwritten(),
                dropped: sink.dropped(),
            },
        ),
        render_openmetrics(&registry.snapshot()),
        dump,
        linked,
    )
}

/// Runs E12.
pub fn run(quick: bool) -> Vec<Table> {
    let (trace_a, metrics_a, dump_a, linked_a) = artifacts(quick);
    let (trace_b, metrics_b, dump_b, _) = artifacts(quick);

    let verdict = |same: bool| if same { "byte-identical" } else { "DIFFERS" };
    let mut t = Table::new(
        "E12",
        "deterministic observability artifacts: seeded fork attack, two runs compared",
        &["artifact", "bytes", "entries", "across runs", "property"],
    );
    t.row(vec![
        "perfetto trace".into(),
        trace_a.len().to_string(),
        trace_a.matches("\"ph\"").count().to_string(),
        verdict(trace_a == trace_b).into(),
        if linked_a {
            "detection span linked to served op".into()
        } else {
            "DETECTION SPAN UNLINKED".into()
        },
    ]);
    t.row(vec![
        "openmetrics".into(),
        metrics_a.len().to_string(),
        metrics_a.lines().count().to_string(),
        verdict(metrics_a == metrics_b).into(),
        if metrics_a.contains("obs_sink_dropped") {
            "sink drop counter exposed".into()
        } else {
            "DROP COUNTER MISSING".into()
        },
    ]);
    let dump_len = dump_a.as_deref().map_or(0, str::len);
    t.row(vec![
        "flight dump".into(),
        dump_len.to_string(),
        dump_a
            .as_deref()
            .map_or(0, |d| d.lines().count())
            .to_string(),
        verdict(dump_a == dump_b).into(),
        if dump_a.is_some() {
            "dumped on detection".into()
        } else {
            "NO DUMP ON DETECTION".into()
        },
    ]);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifacts_are_byte_identical_and_causally_linked() {
        let (trace_a, metrics_a, dump_a, linked) = artifacts(true);
        let (trace_b, metrics_b, dump_b, _) = artifacts(true);
        assert_eq!(trace_a, trace_b, "Perfetto JSON is seed-deterministic");
        assert_eq!(metrics_a, metrics_b, "OpenMetrics is seed-deterministic");
        assert_eq!(dump_a, dump_b, "flight dump is seed-deterministic");
        assert!(dump_a.is_some(), "fork attack dumps the recorder");
        assert!(linked, "detection span shares the forked op's trace");
        assert!(metrics_a.ends_with("# EOF\n"));
        crate::results::validate_artifact(&trace_a).unwrap();
        crate::results::validate_artifact(&metrics_a).unwrap();
    }

    #[test]
    fn table_reports_clean_verdicts() {
        let tables = run(true);
        let rendered = tables[0].render();
        assert!(rendered.contains("byte-identical"), "{rendered}");
        assert!(!rendered.contains("DIFFERS"), "{rendered}");
        assert!(!rendered.contains("MISSING"), "{rendered}");
        assert!(!rendered.contains("UNLINKED"), "{rendered}");
    }
}
