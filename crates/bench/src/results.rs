//! Machine-readable benchmark results: `BENCH_results.json`.
//!
//! Every `expgen` run writes the perf-probe suite (ops/sec, proof bytes,
//! p50/p99 latency) plus any experiment tables it produced, and compares
//! the probes against the recorded pre-PR baselines so the perf trajectory
//! is tracked across PRs. The format is plain JSON, hand-rolled (the build
//! environment has no serde); [`validate`] round-checks the emitted bytes.

use std::fmt::Write as _;

use crate::perf::PerfResult;
use crate::table::Table;

/// Schema identifier written into every results file.
pub const SCHEMA: &str = "tcvs-bench-results/v1";

/// Perf-probe numbers recorded on the commit *before* the copy-on-write
/// Merkle refactor (PR 2), measured with `expgen perf` on the same
/// machine class the current run uses. Comparisons in the JSON divide
/// current ops/sec by these.
pub fn recorded_baselines() -> Vec<PerfResult> {
    // Measured at seed+PR1 (commit 34d6110, eager-clone tree, serialized
    // reads), full mode, single-core container; best of two runs.
    let p =
        |name: &str, ops: f64, bytes: Option<f64>, p50: Option<f64>, p99: Option<f64>| PerfResult {
            name: name.into(),
            ops_per_sec: ops,
            proof_bytes: bytes,
            p50_us: p50,
            p99_us: p99,
        };
    vec![
        p(
            "point_update_proof_gen/n16384_order16_val24",
            65943.0,
            Some(1779.0),
            Some(13.14),
            Some(29.13),
        ),
        p(
            "point_update_proof_gen/n16384_order16_val256",
            41615.0,
            Some(3635.0),
            Some(21.68),
            Some(46.75),
        ),
        p(
            "throughput/trusted_4clients_10pct_updates",
            112904.0,
            None,
            Some(32.09),
            Some(81.59),
        ),
        p(
            "throughput/protocol-2_4clients_10pct_updates",
            51068.0,
            None,
            Some(71.85),
            Some(172.06),
        ),
        p(
            "throughput/protocol-2_4clients_90pct_updates",
            28737.0,
            None,
            Some(138.25),
            Some(228.99),
        ),
        p("crash_snapshot_capture/n16384", 3390.0, None, None, None),
        p("crash_snapshot_capture/n65536", 730.0, None, None, None),
    ]
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".into()
    }
}

fn opt(v: Option<f64>) -> String {
    v.map_or_else(|| "null".into(), num)
}

fn probe_json(p: &PerfResult, indent: &str) -> String {
    format!(
        "{indent}{{\"name\": \"{}\", \"ops_per_sec\": {}, \"proof_bytes\": {}, \"p50_us\": {}, \"p99_us\": {}}}",
        esc(&p.name),
        num(p.ops_per_sec),
        opt(p.proof_bytes),
        opt(p.p50_us),
        opt(p.p99_us),
    )
}

/// Renders the full results document.
///
/// `mode` records how the numbers were produced (`"full"` / `"quick"`);
/// comparisons are emitted for every probe with a recorded baseline.
pub fn render_json(mode: &str, probes: &[PerfResult], tables: &[Table]) -> String {
    let baselines = recorded_baselines();
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(out, "  \"mode\": \"{}\",", esc(mode));

    out.push_str("  \"probes\": [\n");
    let rows: Vec<String> = probes.iter().map(|p| probe_json(p, "    ")).collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ],\n");

    out.push_str("  \"baselines\": [\n");
    let rows: Vec<String> = baselines.iter().map(|p| probe_json(p, "    ")).collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ],\n");

    out.push_str("  \"comparisons\": [\n");
    let mut comps = Vec::new();
    for b in &baselines {
        if let Some(cur) = probes.iter().find(|p| p.name == b.name) {
            let speedup = if b.ops_per_sec > 0.0 {
                cur.ops_per_sec / b.ops_per_sec
            } else {
                f64::NAN
            };
            comps.push(format!(
                "    {{\"name\": \"{}\", \"baseline_ops_per_sec\": {}, \"current_ops_per_sec\": {}, \"speedup\": {}}}",
                esc(&b.name),
                num(b.ops_per_sec),
                num(cur.ops_per_sec),
                num(speedup),
            ));
        }
    }
    out.push_str(&comps.join(",\n"));
    out.push_str("\n  ],\n");

    out.push_str("  \"experiments\": [\n");
    let mut exps = Vec::new();
    for t in tables {
        let headers: Vec<String> = t
            .headers
            .iter()
            .map(|h| format!("\"{}\"", esc(h)))
            .collect();
        let rows: Vec<String> = t
            .rows
            .iter()
            .map(|r| {
                let cells: Vec<String> = r.iter().map(|c| format!("\"{}\"", esc(c))).collect();
                format!("[{}]", cells.join(", "))
            })
            .collect();
        exps.push(format!(
            "    {{\"id\": \"{}\", \"caption\": \"{}\", \"headers\": [{}], \"rows\": [{}]}}",
            esc(&t.id),
            esc(&t.caption),
            headers.join(", "),
            rows.join(", "),
        ));
    }
    out.push_str(&exps.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

/// Minimal structural validation of an emitted document: balanced braces
/// and brackets outside strings, correct string escaping, and presence of
/// the schema marker. `expgen` refuses to write a file that fails this, and
/// the CI bench-smoke job re-checks the file it produced.
pub fn validate(json: &str) -> Result<(), String> {
    if !json.contains(SCHEMA) {
        return Err("missing schema marker".into());
    }
    let mut depth_obj = 0i64;
    let mut depth_arr = 0i64;
    let mut in_str = false;
    let mut escaped = false;
    for c in json.chars() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' => depth_obj += 1,
            '}' => depth_obj -= 1,
            '[' => depth_arr += 1,
            ']' => depth_arr -= 1,
            _ => {}
        }
        if depth_obj < 0 || depth_arr < 0 {
            return Err("unbalanced brackets".into());
        }
    }
    if in_str {
        return Err("unterminated string".into());
    }
    if depth_obj != 0 || depth_arr != 0 {
        return Err("unbalanced brackets".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(name: &str, ops: f64) -> PerfResult {
        PerfResult {
            name: name.into(),
            ops_per_sec: ops,
            proof_bytes: Some(123.0),
            p50_us: Some(1.5),
            p99_us: None,
        }
    }

    #[test]
    fn render_validates() {
        let mut t = Table::new("E1", "demo \"quoted\"", &["a", "b"]);
        t.row(vec!["1".into(), "x\ny".into()]);
        let json = render_json("quick", &[probe("p/one", 1000.0)], &[t]);
        validate(&json).unwrap();
        assert!(json.contains("\"p/one\""));
        assert!(json.contains("\\n"));
    }

    #[test]
    fn comparisons_match_baselines_by_name() {
        let names: Vec<String> = recorded_baselines().into_iter().map(|b| b.name).collect();
        assert!(!names.is_empty());
        // Every baseline name keys a probe the standard suite produces in
        // full mode (quick mode shrinks n, producing different names).
        for n in &names {
            assert!(n.contains('/'), "probe names are namespaced: {n}");
        }
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate("{").is_err());
        assert!(validate("{}").is_err()); // no schema marker
        let ok = format!("{{\"schema\": \"{SCHEMA}\"}}");
        validate(&ok).unwrap();
    }
}
