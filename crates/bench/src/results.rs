//! Machine-readable benchmark results: `BENCH_results.json`.
//!
//! Every `expgen` run writes the perf-probe suite (ops/sec, proof bytes,
//! p50/p99 latency) plus any experiment tables it produced, and compares
//! the probes against the recorded pre-PR baselines so the perf trajectory
//! is tracked across PRs. The format is plain JSON, hand-rolled (the build
//! environment has no serde); [`validate`] round-checks the emitted bytes.

use std::fmt::Write as _;

use tcvs_obs::{MetricValue, MetricsSnapshot};

use crate::json::{parse, Value};
use crate::perf::PerfResult;
use crate::table::Table;

/// Schema identifier written into every results file.
pub const SCHEMA: &str = "tcvs-bench-results/v1";

/// Perf-probe numbers recorded on the commit *before* the copy-on-write
/// Merkle refactor (PR 2), measured with `expgen perf` on the same
/// machine class the current run uses. Comparisons in the JSON divide
/// current ops/sec by these.
pub fn recorded_baselines() -> Vec<PerfResult> {
    // Measured at seed+PR1 (commit 34d6110, eager-clone tree, serialized
    // reads), full mode, single-core container; best of two runs.
    //
    // The baselines predate the p999 column (PR 7), so the p999 values
    // here are backfilled reconstructions, not seed-era measurements: each
    // is the current untuned rig's p999/p99 tail ratio applied to the
    // recorded seed-era p99 — conservative in that the seed-era rig
    // (eager-clone, serialized reads) had *heavier* tails than today's, so
    // a regression gate against these values fires early, not late. The
    // crash_snapshot rows never measured per-op latency and stay null.
    let p = |name: &str,
             ops: f64,
             bytes: Option<f64>,
             p50: Option<f64>,
             p99: Option<f64>,
             p999: Option<f64>| PerfResult {
        name: name.into(),
        ops_per_sec: ops,
        proof_bytes: bytes,
        p50_us: p50,
        p99_us: p99,
        p999_us: p999,
    };
    vec![
        p(
            "point_update_proof_gen/n16384_order16_val24",
            65943.0,
            Some(1779.0),
            Some(13.14),
            Some(29.13),
            Some(43.7),
        ),
        p(
            "point_update_proof_gen/n16384_order16_val256",
            41615.0,
            Some(3635.0),
            Some(21.68),
            Some(46.75),
            Some(70.1),
        ),
        p(
            "throughput/trusted_4clients_10pct_updates",
            112904.0,
            None,
            Some(32.09),
            Some(81.59),
            Some(163.2),
        ),
        p(
            "throughput/protocol-2_4clients_10pct_updates",
            51068.0,
            None,
            Some(71.85),
            Some(172.06),
            Some(344.1),
        ),
        p(
            "throughput/protocol-2_4clients_90pct_updates",
            28737.0,
            None,
            Some(138.25),
            Some(228.99),
            Some(458.0),
        ),
        p(
            "crash_snapshot_capture/n16384",
            3390.0,
            None,
            None,
            None,
            None,
        ),
        p(
            "crash_snapshot_capture/n65536",
            730.0,
            None,
            None,
            None,
            None,
        ),
    ]
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".into()
    }
}

fn opt(v: Option<f64>) -> String {
    v.map_or_else(|| "null".into(), num)
}

fn probe_json(p: &PerfResult, indent: &str) -> String {
    format!(
        "{indent}{{\"name\": \"{}\", \"ops_per_sec\": {}, \"proof_bytes\": {}, \"p50_us\": {}, \"p99_us\": {}, \"p999_us\": {}}}",
        esc(&p.name),
        num(p.ops_per_sec),
        opt(p.proof_bytes),
        opt(p.p50_us),
        opt(p.p99_us),
        opt(p.p999_us),
    )
}

/// Renders the full results document with no metrics, durability, or
/// batching section content.
///
/// `mode` records how the numbers were produced (`"full"` / `"quick"`);
/// comparisons are emitted for every probe with a recorded baseline.
pub fn render_json(mode: &str, probes: &[PerfResult], tables: &[Table]) -> String {
    render_json_with_metrics(
        mode,
        probes,
        &[],
        &[],
        &[],
        &[],
        &[],
        tables,
        &MetricsSnapshot::default(),
    )
}

/// [`render_json`] plus the `"durability"` section (the storage-engine
/// probe suite from [`crate::durability`]), the `"batching"` section
/// (before/after rows for the tuned verified paths with a same-run trusted
/// reference, from [`crate::perf::batching_suite`]), the `"sharding"`
/// section (grove scaling at 1/2/4/8 shards plus the fork-detection
/// counts, from [`crate::perf::sharding_suite`]), the `"bootstrap"`
/// section (chunked verified state sync cost vs database size and chunk
/// budget plus the storm/forgery count rows, from
/// [`crate::perf::bootstrap_suite`]), the `"forensics"` section (evidence
/// bundle capture cost, cold-audit verify rate vs history size, and the
/// honest-path instrumented/dark throughput ratio, from
/// [`crate::forensics::forensics_suite`]), and a `"metrics"` section
/// serializing a point-in-time [`MetricsSnapshot`] (the instrumented
/// throughput probe's counters and histograms) so dashboards can track
/// them per PR alongside the probes.
#[allow(clippy::too_many_arguments)]
pub fn render_json_with_metrics(
    mode: &str,
    probes: &[PerfResult],
    durability: &[PerfResult],
    batching: &[PerfResult],
    sharding: &[PerfResult],
    bootstrap: &[PerfResult],
    forensics: &[PerfResult],
    tables: &[Table],
    metrics: &MetricsSnapshot,
) -> String {
    let baselines = recorded_baselines();
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(out, "  \"mode\": \"{}\",", esc(mode));

    out.push_str("  \"probes\": [\n");
    let rows: Vec<String> = probes.iter().map(|p| probe_json(p, "    ")).collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ],\n");

    out.push_str("  \"baselines\": [\n");
    let rows: Vec<String> = baselines.iter().map(|p| probe_json(p, "    ")).collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ],\n");

    out.push_str("  \"durability\": [\n");
    let rows: Vec<String> = durability.iter().map(|p| probe_json(p, "    ")).collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ],\n");

    out.push_str("  \"batching\": [\n");
    let rows: Vec<String> = batching.iter().map(|p| probe_json(p, "    ")).collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ],\n");

    out.push_str("  \"sharding\": [\n");
    let rows: Vec<String> = sharding.iter().map(|p| probe_json(p, "    ")).collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ],\n");

    out.push_str("  \"bootstrap\": [\n");
    let rows: Vec<String> = bootstrap.iter().map(|p| probe_json(p, "    ")).collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ],\n");

    out.push_str("  \"forensics\": [\n");
    let rows: Vec<String> = forensics.iter().map(|p| probe_json(p, "    ")).collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ],\n");

    out.push_str("  \"comparisons\": [\n");
    let mut comps = Vec::new();
    for b in &baselines {
        if let Some(cur) = probes.iter().find(|p| p.name == b.name) {
            let speedup = if b.ops_per_sec > 0.0 {
                cur.ops_per_sec / b.ops_per_sec
            } else {
                f64::NAN
            };
            comps.push(format!(
                "    {{\"name\": \"{}\", \"baseline_ops_per_sec\": {}, \"current_ops_per_sec\": {}, \"speedup\": {}}}",
                esc(&b.name),
                num(b.ops_per_sec),
                num(cur.ops_per_sec),
                num(speedup),
            ));
        }
    }
    out.push_str(&comps.join(",\n"));
    out.push_str("\n  ],\n");

    out.push_str("  \"metrics\": [\n");
    let rows: Vec<String> = metrics
        .entries
        .iter()
        .map(|e| match &e.value {
            MetricValue::Counter(v) => format!(
                "    {{\"name\": \"{}\", \"kind\": \"counter\", \"value\": {v}}}",
                esc(&e.name)
            ),
            MetricValue::Gauge(v) => format!(
                "    {{\"name\": \"{}\", \"kind\": \"gauge\", \"value\": {v}}}",
                esc(&e.name)
            ),
            MetricValue::Histogram {
                count,
                sum,
                p50,
                p99,
            } => format!(
                "    {{\"name\": \"{}\", \"kind\": \"histogram\", \"count\": {count}, \"sum\": {sum}, \"p50\": {p50}, \"p99\": {p99}}}",
                esc(&e.name)
            ),
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ],\n");

    out.push_str("  \"experiments\": [\n");
    let mut exps = Vec::new();
    for t in tables {
        let headers: Vec<String> = t
            .headers
            .iter()
            .map(|h| format!("\"{}\"", esc(h)))
            .collect();
        let rows: Vec<String> = t
            .rows
            .iter()
            .map(|r| {
                let cells: Vec<String> = r.iter().map(|c| format!("\"{}\"", esc(c))).collect();
                format!("[{}]", cells.join(", "))
            })
            .collect();
        exps.push(format!(
            "    {{\"id\": \"{}\", \"caption\": \"{}\", \"headers\": [{}], \"rows\": [{}]}}",
            esc(&t.id),
            esc(&t.caption),
            headers.join(", "),
            rows.join(", "),
        ));
    }
    out.push_str(&exps.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

/// Minimal structural validation of an emitted document: balanced braces
/// and brackets outside strings, correct string escaping, and presence of
/// the schema marker. `expgen` refuses to write a file that fails this, and
/// the CI bench-smoke job re-checks the file it produced.
pub fn validate(json: &str) -> Result<(), String> {
    if !json.contains(SCHEMA) {
        return Err("missing schema marker".into());
    }
    let mut depth_obj = 0i64;
    let mut depth_arr = 0i64;
    let mut in_str = false;
    let mut escaped = false;
    for c in json.chars() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' => depth_obj += 1,
            '}' => depth_obj -= 1,
            '[' => depth_arr += 1,
            ']' => depth_arr -= 1,
            _ => {}
        }
        if depth_obj < 0 || depth_arr < 0 {
            return Err("unbalanced brackets".into());
        }
    }
    if in_str {
        return Err("unterminated string".into());
    }
    if depth_obj != 0 || depth_arr != 0 {
        return Err("unbalanced brackets".into());
    }
    Ok(())
}

fn require_arr<'a>(doc: &'a Value, key: &str) -> Result<&'a [Value], String> {
    // Name the failure precisely: an absent section (stale generator, new
    // schema) reads very differently from a present-but-mistyped one, and
    // the CI grep gates key off the "missing required section" phrasing.
    match doc.get(key) {
        None => Err(format!("missing required section '{key}'")),
        Some(v) => v
            .as_arr()
            .ok_or_else(|| format!("'{key}' must be an array")),
    }
}

fn check_probe(p: &Value, section: &str) -> Result<(), String> {
    let name = p
        .get("name")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{section}: probe missing string 'name'"))?;
    if !matches!(p.get("ops_per_sec"), Some(Value::Num(_))) {
        return Err(format!("{section}/{name}: 'ops_per_sec' must be a number"));
    }
    for field in ["proof_bytes", "p50_us", "p99_us", "p999_us"] {
        if !p.get(field).is_some_and(Value::is_num_or_null) {
            return Err(format!("{section}/{name}: '{field}' must be number|null"));
        }
    }
    Ok(())
}

/// Full structural validation of a `tcvs-bench-results/v1` document: the
/// file must parse as JSON, carry the exact schema id, and every section
/// must have the shape `render_json` produces — probes/baselines with
/// numeric fields, comparisons keyed by name, experiment tables whose rows
/// are as wide as their headers, and metrics entries typed by `kind`.
///
/// This is what `expgen --validate` (and the CI bench-smoke job) runs
/// against the artifact it just produced.
pub fn validate_schema(json: &str) -> Result<(), String> {
    let doc = parse(json).map_err(|e| format!("not valid JSON: {e}"))?;
    match doc.get("schema").and_then(Value::as_str) {
        Some(s) if s == SCHEMA => {}
        Some(s) => return Err(format!("schema is '{s}', expected '{SCHEMA}'")),
        None => return Err("missing string 'schema'".into()),
    }
    if doc.get("mode").and_then(Value::as_str).is_none() {
        return Err("missing string 'mode'".into());
    }
    for section in [
        "probes",
        "baselines",
        "durability",
        "batching",
        "sharding",
        "bootstrap",
        "forensics",
    ] {
        for p in require_arr(&doc, section)? {
            check_probe(p, section)?;
        }
    }
    for c in require_arr(&doc, "comparisons")? {
        let name = c
            .get("name")
            .and_then(Value::as_str)
            .ok_or("comparisons: entry missing string 'name'")?;
        for field in ["baseline_ops_per_sec", "current_ops_per_sec", "speedup"] {
            if !c.get(field).is_some_and(Value::is_num_or_null) {
                return Err(format!("comparisons/{name}: '{field}' must be number|null"));
            }
        }
    }
    for m in require_arr(&doc, "metrics")? {
        let name = m
            .get("name")
            .and_then(Value::as_str)
            .ok_or("metrics: entry missing string 'name'")?;
        let fields: &[&str] = match m.get("kind").and_then(Value::as_str) {
            Some("counter") | Some("gauge") => &["value"],
            Some("histogram") => &["count", "sum", "p50", "p99"],
            other => {
                return Err(format!("metrics/{name}: unknown kind {other:?}"));
            }
        };
        for field in fields {
            if !matches!(m.get(field), Some(Value::Num(_))) {
                return Err(format!("metrics/{name}: '{field}' must be a number"));
            }
        }
    }
    for e in require_arr(&doc, "experiments")? {
        let id = e
            .get("id")
            .and_then(Value::as_str)
            .ok_or("experiments: entry missing string 'id'")?;
        if e.get("caption").and_then(Value::as_str).is_none() {
            return Err(format!("experiments/{id}: missing string 'caption'"));
        }
        let headers = e
            .get("headers")
            .and_then(Value::as_arr)
            .ok_or_else(|| format!("experiments/{id}: 'headers' must be an array"))?;
        if headers.iter().any(|h| h.as_str().is_none()) {
            return Err(format!("experiments/{id}: headers must be strings"));
        }
        for (i, row) in e
            .get("rows")
            .and_then(Value::as_arr)
            .ok_or_else(|| format!("experiments/{id}: 'rows' must be an array"))?
            .iter()
            .enumerate()
        {
            let cells = row
                .as_arr()
                .ok_or_else(|| format!("experiments/{id}: row {i} must be an array"))?;
            if cells.len() != headers.len() {
                return Err(format!(
                    "experiments/{id}: row {i} has {} cells for {} headers",
                    cells.len(),
                    headers.len()
                ));
            }
            if cells.iter().any(|c| c.as_str().is_none()) {
                return Err(format!("experiments/{id}: row {i} cells must be strings"));
            }
        }
    }
    Ok(())
}

/// Structural validation of a Chrome-trace/Perfetto JSON artifact (what
/// [`tcvs_obs::render_chrome_trace`] emits): a JSON object with a
/// `traceEvents` array whose every entry carries a string `name`/`ph`/`cat`
/// and numeric `ts`/`pid`/`tid`.
pub fn validate_chrome_trace(json: &str) -> Result<(), String> {
    let doc = parse(json).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or("'traceEvents' must be an array")?;
    for (i, ev) in events.iter().enumerate() {
        for field in ["name", "ph", "cat"] {
            if ev.get(field).and_then(Value::as_str).is_none() {
                return Err(format!("traceEvents[{i}]: '{field}' must be a string"));
            }
        }
        for field in ["ts", "pid", "tid"] {
            if !matches!(ev.get(field), Some(Value::Num(_))) {
                return Err(format!("traceEvents[{i}]: '{field}' must be a number"));
            }
        }
    }
    Ok(())
}

fn openmetrics_name_ok(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .enumerate()
            .all(|(i, c)| c == '_' || c.is_ascii_alphabetic() || (i > 0 && c.is_ascii_digit()))
}

/// Line-level validation of an OpenMetrics text exposition (what
/// [`tcvs_obs::render_openmetrics`] emits): every line is a `# TYPE` /
/// `# EOF` comment or a `name[{labels}] value` sample with a legal metric
/// name and a numeric value, and the document is `# EOF`-terminated.
pub fn validate_openmetrics(text: &str) -> Result<(), String> {
    if !text.ends_with("# EOF\n") {
        return Err("document must end with '# EOF\\n'".into());
    }
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            return Err(format!("line {}: empty line", i + 1));
        }
        if let Some(rest) = line.strip_prefix("# ") {
            if rest == "EOF" {
                continue;
            }
            let mut parts = rest.split_whitespace();
            match (parts.next(), parts.next(), parts.next(), parts.next()) {
                (Some("TYPE"), Some(name), Some(kind), None)
                    if openmetrics_name_ok(name)
                        && matches!(kind, "counter" | "gauge" | "summary") => {}
                _ => return Err(format!("line {}: bad comment '{line}'", i + 1)),
            }
            continue;
        }
        // A sample: `name value` or `name{label="v"} value`.
        let (name_part, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value in '{line}'", i + 1))?;
        let name = name_part.split('{').next().unwrap_or(name_part);
        if !openmetrics_name_ok(name) {
            return Err(format!("line {}: bad metric name '{name}'", i + 1));
        }
        if value.parse::<f64>().is_err() {
            return Err(format!("line {}: non-numeric value '{value}'", i + 1));
        }
    }
    Ok(())
}

/// Validates any artifact the bench pipeline emits, dispatching on shape:
/// Chrome-trace JSON (has `traceEvents`), OpenMetrics text (starts with a
/// `#` comment line), or a `tcvs-bench-results/v1` document (everything
/// else). This is what `expgen --validate` runs, so the CI bench-smoke job
/// can check all three artifact kinds with one command.
pub fn validate_artifact(content: &str) -> Result<(), String> {
    let trimmed = content.trim_start();
    if trimmed.starts_with('{') && content.contains("\"traceEvents\"") {
        validate_chrome_trace(content)
    } else if trimmed.starts_with('#') {
        validate_openmetrics(content)
    } else {
        validate(content).and_then(|()| validate_schema(content))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(name: &str, ops: f64) -> PerfResult {
        PerfResult {
            name: name.into(),
            ops_per_sec: ops,
            proof_bytes: Some(123.0),
            p50_us: Some(1.5),
            p99_us: None,
            p999_us: Some(9.75),
        }
    }

    #[test]
    fn render_validates() {
        let mut t = Table::new("E1", "demo \"quoted\"", &["a", "b"]);
        t.row(vec!["1".into(), "x\ny".into()]);
        let json = render_json("quick", &[probe("p/one", 1000.0)], &[t]);
        validate(&json).unwrap();
        validate_schema(&json).unwrap();
        assert!(json.contains("\"p/one\""));
        assert!(json.contains("\"p999_us\": 9.750"));
        assert!(json.contains("\\n"));
    }

    #[test]
    fn batching_section_round_trips_through_the_validator() {
        let rows = [
            probe("throughput/protocol-2_4clients_10pct_updates", 250_000.0),
            probe("throughput/trusted_4clients_10pct_updates", 400_000.0),
        ];
        let json = render_json_with_metrics(
            "quick",
            &[],
            &[],
            &rows,
            &[],
            &[],
            &[],
            &[],
            &tcvs_obs::MetricsRegistry::new().snapshot(),
        );
        validate_schema(&json).unwrap();
        assert!(json.contains("\"batching\": ["));
        assert!(json.contains("throughput/protocol-2_4clients_10pct_updates"));
    }

    #[test]
    fn sharding_section_round_trips_and_is_required() {
        let rows = [
            probe(
                "sharding/trusted_4shards_8clients_10pct_updates_wire200us",
                180_000.0,
            ),
            probe("sharding/fork_1of4_false_alarms", 0.0),
        ];
        let json = render_json_with_metrics(
            "quick",
            &[],
            &[],
            &[],
            &rows,
            &[],
            &[],
            &[],
            &tcvs_obs::MetricsRegistry::new().snapshot(),
        );
        validate_schema(&json).unwrap();
        assert!(json.contains("\"sharding\": ["));
        assert!(json.contains("sharding/fork_1of4_false_alarms"));
        // A document without the section (the pre-PR-8 shape) is rejected.
        let bad = format!(
            "{{\"schema\": \"{SCHEMA}\", \"mode\": \"full\", \"probes\": [], \
             \"baselines\": [], \"durability\": [], \"batching\": [], \
             \"bootstrap\": [], \
             \"comparisons\": [], \"metrics\": [], \"experiments\": []}}"
        );
        let err = validate_schema(&bad).unwrap_err();
        assert!(err.contains("missing required section 'sharding'"), "{err}");
    }

    #[test]
    fn bootstrap_section_round_trips_and_is_required() {
        let rows = [
            probe("bootstrap/1024keys_16384b_chunks", 90_000.0),
            probe("bootstrap/forge_detection_misses", 0.0),
        ];
        let json = render_json_with_metrics(
            "quick",
            &[],
            &[],
            &[],
            &[],
            &rows,
            &[],
            &[],
            &tcvs_obs::MetricsRegistry::new().snapshot(),
        );
        validate_schema(&json).unwrap();
        assert!(json.contains("\"bootstrap\": ["));
        assert!(json.contains("bootstrap/forge_detection_misses"));
        // A document without the section (the pre-PR-9 shape) is rejected,
        // and the error names the missing section rather than the generic
        // type complaint.
        let bad = format!(
            "{{\"schema\": \"{SCHEMA}\", \"mode\": \"full\", \"probes\": [], \
             \"baselines\": [], \"durability\": [], \"batching\": [], \
             \"sharding\": [], \
             \"comparisons\": [], \"metrics\": [], \"experiments\": []}}"
        );
        let err = validate_schema(&bad).unwrap_err();
        assert!(
            err.contains("missing required section 'bootstrap'"),
            "{err}"
        );
        // Present but mistyped still gets the array complaint.
        let bad = format!(
            "{{\"schema\": \"{SCHEMA}\", \"mode\": \"full\", \"probes\": [], \
             \"baselines\": [], \"durability\": [], \"batching\": [], \
             \"sharding\": [], \"bootstrap\": 7, \
             \"comparisons\": [], \"metrics\": [], \"experiments\": []}}"
        );
        let err = validate_schema(&bad).unwrap_err();
        assert!(err.contains("'bootstrap' must be an array"), "{err}");
    }

    #[test]
    fn forensics_section_round_trips_and_is_required() {
        let rows = [
            probe("forensics/capture_localization_bundle", 5_000.0),
            probe("forensics/honest_instrumented_ratio", 0.99),
        ];
        let json = render_json_with_metrics(
            "quick",
            &[],
            &[],
            &[],
            &[],
            &[],
            &rows,
            &[],
            &tcvs_obs::MetricsRegistry::new().snapshot(),
        );
        validate_schema(&json).unwrap();
        assert!(json.contains("\"forensics\": ["));
        assert!(json.contains("forensics/honest_instrumented_ratio"));
        // A document without the section (the pre-PR-10 shape) is rejected.
        let bad = format!(
            "{{\"schema\": \"{SCHEMA}\", \"mode\": \"full\", \"probes\": [], \
             \"baselines\": [], \"durability\": [], \"batching\": [], \
             \"sharding\": [], \"bootstrap\": [], \
             \"comparisons\": [], \"metrics\": [], \"experiments\": []}}"
        );
        let err = validate_schema(&bad).unwrap_err();
        assert!(
            err.contains("missing required section 'forensics'"),
            "{err}"
        );
    }

    #[test]
    fn metrics_section_round_trips_through_the_validator() {
        let registry = tcvs_obs::MetricsRegistry::new();
        registry.counter("net.server.ops_served").add(7);
        registry.gauge("net.depth").set(-2);
        registry.histogram("net.server.op_micros").observe(100);
        let json = render_json_with_metrics(
            "quick",
            &[],
            &[],
            &[],
            &[],
            &[],
            &[],
            &[],
            &registry.snapshot(),
        );
        validate_schema(&json).unwrap();
        assert!(json.contains("\"kind\": \"counter\", \"value\": 7"));
        assert!(json.contains("\"kind\": \"gauge\", \"value\": -2"));
        assert!(json.contains("\"kind\": \"histogram\""));
    }

    #[test]
    fn schema_validator_pinpoints_shape_errors() {
        // Well-formed JSON that is not a results document.
        let err = validate_schema("{\"schema\": \"nope\"}").unwrap_err();
        assert!(err.contains("expected"), "{err}");
        // A row narrower than its headers.
        let bad = format!(
            "{{\"schema\": \"{SCHEMA}\", \"mode\": \"full\", \"probes\": [], \
             \"baselines\": [], \"durability\": [], \"batching\": [], \
             \"sharding\": [], \"bootstrap\": [], \"forensics\": [], \"comparisons\": [], \"metrics\": [], \
             \"experiments\": [{{\"id\": \"E1\", \"caption\": \"c\", \
             \"headers\": [\"a\", \"b\"], \"rows\": [[\"1\"]]}}]}}"
        );
        let err = validate_schema(&bad).unwrap_err();
        assert!(err.contains("1 cells for 2 headers"), "{err}");
        // A probe with a string where a number belongs.
        let bad = format!(
            "{{\"schema\": \"{SCHEMA}\", \"mode\": \"full\", \
             \"probes\": [{{\"name\": \"p\", \"ops_per_sec\": \"fast\", \
             \"proof_bytes\": null, \"p50_us\": null, \"p99_us\": null, \
             \"p999_us\": null}}], \
             \"baselines\": [], \"durability\": [], \"batching\": [], \
             \"sharding\": [], \"bootstrap\": [], \"forensics\": [], \"comparisons\": [], \"metrics\": [], \"experiments\": []}}"
        );
        let err = validate_schema(&bad).unwrap_err();
        assert!(err.contains("ops_per_sec"), "{err}");
        // A probe without the p999 tail-latency field (pre-PR-7 shape).
        let bad = format!(
            "{{\"schema\": \"{SCHEMA}\", \"mode\": \"full\", \
             \"probes\": [{{\"name\": \"p\", \"ops_per_sec\": 1.0, \
             \"proof_bytes\": null, \"p50_us\": null, \"p99_us\": null}}], \
             \"baselines\": [], \"durability\": [], \"batching\": [], \
             \"sharding\": [], \"bootstrap\": [], \"forensics\": [], \"comparisons\": [], \"metrics\": [], \"experiments\": []}}"
        );
        let err = validate_schema(&bad).unwrap_err();
        assert!(err.contains("p999_us"), "{err}");
    }

    #[test]
    fn comparisons_match_baselines_by_name() {
        let names: Vec<String> = recorded_baselines().into_iter().map(|b| b.name).collect();
        assert!(!names.is_empty());
        // Every baseline name keys a probe the standard suite produces in
        // full mode (quick mode shrinks n, producing different names).
        for n in &names {
            assert!(n.contains('/'), "probe names are namespaced: {n}");
        }
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate("{").is_err());
        assert!(validate("{}").is_err()); // no schema marker
        let ok = format!("{{\"schema\": \"{SCHEMA}\"}}");
        validate(&ok).unwrap();
    }
}
