//! A minimal recursive-descent JSON parser — just enough to let the
//! `--validate` subcommand and the CI bench-smoke job check a results file
//! against the `tcvs-bench-results/v1` schema without pulling in a
//! serialization dependency (the build environment is offline).

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order (duplicate keys are kept).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// True for numbers and `null` — the schema's "nullable number".
    pub fn is_num_or_null(&self) -> bool {
        matches!(self, Value::Num(_) | Value::Null)
    }
}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => parse_str(b, pos).map(Value::Str),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        // Surrogate pairs don't occur in our own output;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is
                // always well-formed).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_str(b, pos)?;
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        members.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v =
            parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": null, "d": true}, "e": "x\ny"}"#).unwrap();
        assert_eq!(
            v.get("a").and_then(Value::as_arr).map(<[Value]>::len),
            Some(3)
        );
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&Value::Null));
        assert_eq!(v.get("e").and_then(Value::as_str), Some("x\ny"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}garbage").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse(r#""unterminated"#).is_err());
    }

    #[test]
    fn decodes_escapes() {
        let v = parse(r#""tab\there A""#).unwrap();
        assert_eq!(v.as_str(), Some("tab\there A"));
    }
}
