//! Bootstrap smoke test: SIGKILL a live shard mid-run, restore it from a
//! peer via verified chunk sync, and prove the grove is whole again.
//!
//! Orchestrator mode (`bootstrap_smoke <dir> [rounds]`) spawns itself in
//! worker mode: the worker is shard 1's durable process, appending that
//! shard's slice of a deterministic global op stream to the real
//! filesystem. The orchestrator SIGKILLs it at a different point every
//! round, verifies the kill was survivable (recovered state matches an
//! in-memory oracle replay), then declares the worker's disk lost and
//! restores the shard the way a production operator would:
//!
//! 1. A grove peer holding the full shard-1 state serves chunked verified
//!    state sync over the wire ([`BootstrapClient`] pinned to the last
//!    grove epoch's shard root).
//! 2. The verified tree is re-anchored to fresh durable storage via
//!    [`DurableServer::open_from_chunks`], which checkpoints immediately
//!    so the kill-anywhere discipline resumes.
//! 3. The rebuilt shard rejoins the grove (`bootstrap_restart`); the next
//!    grove epoch must fold the same grove root as before the kill.
//! 4. A late-joining verified client re-enters at the post-rejoin epoch
//!    and the Protocol II grove sync-up must pass.
//!
//! A final corruption round forges one chunk of the peer's stream and
//! asserts the restore fails at exactly that chunk index. Any divergence,
//! alarm, or recovery failure exits nonzero.

use std::process::{Command, Stdio};
use std::time::Duration;

use tcvs_core::{HonestServer, ProtocolConfig, ServerCore, ShardRouter, SyncShare, NO_USER};
use tcvs_merkle::{u64_key, ChunkAssembler, ChunkSource, Op, OpResult};
use tcvs_net::{BootstrapClient, NetServer, NetServerOptions, ShardedClient2, ShardedServer};
use tcvs_storage::{
    DurabilityOptions, DurableOptions, DurableServer, DurableStorage, FileMedium, StorageObs,
};

const SHARDS: usize = 3;
const KILLED: usize = 1;
/// Global ops the surviving grove absorbs before serving the restore.
const GROVE_OPS: u64 = 90;
const KEY_SPACE: u64 = 64;
/// Small chunk budget so every restore is a genuinely multi-chunk sync.
const CHUNK_BUDGET: usize = 256;

fn config() -> ProtocolConfig {
    ProtocolConfig {
        order: 4,
        k: 16,
        epoch_len: 10,
    }
}

/// The deterministic global op stream the whole smoke test is a function
/// of: the worker replays its shard's slice, the grove absorbs the prefix,
/// and the oracle reconstructs either from indices alone.
fn scripted(j: u64) -> Op {
    Op::Put(u64_key(j % KEY_SPACE), vec![(j % 97) as u8; 6])
}

fn open_durable(dir: &str) -> Result<DurableServer<DurableStorage<FileMedium>>, String> {
    let medium = FileMedium::open(dir).map_err(|e| format!("open medium: {e}"))?;
    let store = DurableStorage::open(
        medium,
        DurableOptions {
            segment_bytes: 8 * 1024,
            retain_checkpoints: 2,
        },
    );
    DurableServer::open(
        store,
        config(),
        DurabilityOptions {
            checkpoint_every: 16,
            ..DurabilityOptions::default()
        },
        StorageObs::disabled(),
    )
    .map_err(|e| format!("open server: {e}"))
}

/// Worker mode: shard `KILLED`'s durable process. Replays the global
/// stream, applies only the ops that route to this shard, and keeps going
/// until the orchestrator kills it.
fn worker(dir: &str) -> Result<(), String> {
    let router = ShardRouter::new(SHARDS);
    let mut server = open_durable(dir)?;
    let already = server.core().ctr();
    let mut seen = 0u64;
    let mut j = 0u64;
    loop {
        let op = scripted(j);
        if router.route_op(&op) == Some(KILLED) {
            if seen >= already {
                server
                    .apply(0, seen, &op, seen)
                    .map_err(|e| format!("apply shard op {seen}: {e}"))?;
            }
            seen += 1;
        }
        j += 1;
    }
}

/// Replays the first `n_shard_ops` shard-`KILLED` ops of the global
/// stream on a pristine in-memory core — the oracle the killed worker's
/// recovered state must match.
fn shard_oracle(n_shard_ops: u64) -> ServerCore {
    let router = ShardRouter::new(SHARDS);
    let mut oracle = ServerCore::new(&config());
    let mut seen = 0u64;
    let mut j = 0u64;
    while seen < n_shard_ops {
        let op = scripted(j);
        if router.route_op(&op) == Some(KILLED) {
            oracle.process(0, &op, seen);
            seen += 1;
        }
        j += 1;
    }
    oracle
}

fn round(exe: &std::path::Path, dir: &str, round: u64) -> Result<(), String> {
    let cfg = config();
    let worker_dir = format!("{dir}/round{round}/worker");
    let restored_dir = format!("{dir}/round{round}/restored");
    std::fs::create_dir_all(&worker_dir).map_err(|e| format!("mkdir: {e}"))?;
    std::fs::create_dir_all(&restored_dir).map_err(|e| format!("mkdir: {e}"))?;

    // The live shard, as a real OS process, killed at a different point
    // every round — before the first op, mid-append, mid-checkpoint, …
    let mut child = Command::new(exe)
        .arg("worker")
        .arg(&worker_dir)
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawn worker: {e}"))?;
    std::thread::sleep(Duration::from_millis(15 + (round * 7) % 60));
    child.kill().map_err(|e| format!("kill worker: {e}"))?; // SIGKILL
    child.wait().map_err(|e| format!("wait worker: {e}"))?;

    // The kill must be survivable on the worker's own disk (the durable
    // discipline), even though this round abandons that disk afterwards.
    let dead = open_durable(&worker_dir)?;
    if let Some(stop) = &dead.last_recovery().corrupt_stop {
        return Err(format!(
            "round {round}: worker recovery hit corruption: {stop}"
        ));
    }
    let dead_ctr = dead.core().ctr();
    if dead.core().root_digest() != shard_oracle(dead_ctr).root_digest() {
        return Err(format!(
            "round {round}: recovered worker root diverges from oracle at ctr {dead_ctr}"
        ));
    }
    drop(dead);

    // The surviving grove: its shard `KILLED` is the peer that will serve
    // the restore. The global stream prefix flows through a verified
    // sharded client, so the peer's state is itself root-checked.
    let mut grove = ShardedServer::spawn(
        SHARDS,
        &cfg,
        NetServerOptions {
            bootstrap_chunk_bytes: CHUNK_BUDGET,
            ..NetServerOptions::default()
        },
    );
    let r0 = vec![tcvs_merkle::MerkleTree::with_order(cfg.order).root_digest(); SHARDS];
    let mut writer = ShardedClient2::new(0, &r0, cfg, &grove);
    for j in 0..GROVE_OPS {
        writer
            .execute(&scripted(j))
            .map_err(|e| format!("round {round}: grove write {j} alarmed: {e}"))?;
    }
    let epoch1 = grove
        .grove_epoch()
        .ok_or_else(|| format!("round {round}: grove refuses to publish an epoch"))?;
    let shard_root = epoch1.shard_roots[KILLED];

    // Verified chunk sync from the peer, pinned to the epoch's shard root.
    let mut boot = BootstrapClient::new(NO_USER, grove.shard(KILLED));
    let report = boot
        .bootstrap(Some(&shard_root))
        .map_err(|e| format!("round {round}: chunk sync from peer failed: {e}"))?;
    if report.chunks_fetched <= 1 {
        return Err(format!(
            "round {round}: transfer was not chunked ({} chunks)",
            report.chunks_fetched
        ));
    }

    // Re-anchor the verified tree to fresh durable storage; the restored
    // server checkpoints immediately, so a later plain open recovers it
    // locally without touching the network.
    let source = ChunkSource::new(&report.tree, CHUNK_BUDGET)
        .map_err(|e| format!("round {round}: chunk source: {e}"))?;
    let medium = FileMedium::open(&restored_dir).map_err(|e| format!("open medium: {e}"))?;
    let restored = DurableServer::open_from_chunks(
        DurableStorage::open(medium, DurableOptions::default()),
        cfg,
        DurabilityOptions::default(),
        StorageObs::disabled(),
        &report.root,
        report.ctr,
        &source.manifest().to_bytes(),
        |i| source.chunk(i),
    )
    .map_err(|e| format!("round {round}: durable restore: {e}"))?;
    if restored.core().root_digest() != shard_root {
        return Err(format!("round {round}: restored durable root diverges"));
    }
    drop(restored);
    let reopened = open_durable(&restored_dir)?;
    if reopened.core().root_digest() != shard_root {
        return Err(format!(
            "round {round}: restored shard did not checkpoint locally"
        ));
    }
    drop(reopened);

    // Rejoin: kill-and-replace the grove's shard with a server rebuilt
    // from the verified chunks. The grove root must not move.
    let core = ServerCore::from_verified_state(report.tree, report.ctr, &cfg)
        .map_err(|e| format!("round {round}: verified state rejected: {e}"))?;
    let replica = NetServer::spawn(Box::new(HonestServer::from_core(core)), false);
    grove
        .bootstrap_restart(KILLED, &replica, &shard_root, &cfg)
        .map_err(|e| format!("round {round}: shard rejoin failed: {e}"))?;
    replica.shutdown();
    let epoch2 = grove
        .grove_epoch()
        .ok_or_else(|| format!("round {round}: rejoined grove refuses to publish"))?;
    if epoch2.grove_root != epoch1.grove_root {
        return Err(format!(
            "round {round}: grove root moved across the restore"
        ));
    }

    // A late joiner anchored at the post-rejoin epoch reads what the
    // pre-kill history wrote and passes the Protocol II grove sync-up.
    let mut carol = ShardedClient2::join(2, &epoch2, cfg, &grove);
    for k in 0..KEY_SPACE {
        let last = (0..GROVE_OPS).rev().find(|j| j % KEY_SPACE == k);
        let got = carol
            .execute(&Op::Get(u64_key(k)))
            .map_err(|e| format!("round {round}: verified read of key {k} alarmed: {e}"))?;
        let want = OpResult::Value(last.map(|j| vec![(j % 97) as u8; 6]));
        if got != want {
            return Err(format!(
                "round {round}: key {k} read {got:?}, expected {want:?}"
            ));
        }
    }
    for j in GROVE_OPS..GROVE_OPS + 12 {
        carol
            .execute(&scripted(j))
            .map_err(|e| format!("round {round}: post-rejoin write {j} alarmed: {e}"))?;
    }
    let per_shard: Vec<Vec<SyncShare>> = carol.sync_shares().into_iter().map(|s| vec![s]).collect();
    if !carol.sync_succeeds(&per_shard) {
        return Err(format!(
            "round {round}: Protocol II sync-up failed on the rejoined grove"
        ));
    }
    grove.shutdown();
    println!(
        "round {round}: worker killed at ctr {dead_ctr}, restored via {} chunks, \
         grove root held, sync-up passed — ok",
        report.chunks_fetched
    );
    Ok(())
}

/// The corruption round: every chunk of a peer snapshot is forged in turn
/// (one byte flipped in the node region) and the stream replayed; the
/// restore must fail at exactly the offending index every time.
fn corruption_round() -> Result<(), String> {
    let cfg = config();
    let mut tree = tcvs_merkle::MerkleTree::with_order(cfg.order);
    for j in 0..GROVE_OPS {
        if let Op::Put(k, v) = scripted(j) {
            tree.insert(k, v).map_err(|e| format!("insert: {e}"))?;
        }
    }
    let source = ChunkSource::new(&tree, CHUNK_BUDGET).map_err(|e| format!("source: {e}"))?;
    let n = source.num_chunks();
    if n < 3 {
        return Err(format!(
            "corruption round needs a multi-chunk stream, got {n}"
        ));
    }
    for bad in 0..n {
        let mut assembler =
            ChunkAssembler::new(source.manifest().clone()).map_err(|e| format!("manifest: {e}"))?;
        let mut caught = None;
        for i in 0..n {
            let mut bytes = source.chunk(i).ok_or("chunk in range")?;
            if i == bad {
                let at = bytes.len() - 1 - bytes.len() / 4;
                bytes[at] ^= 0x01;
            }
            if assembler.admit(i, &bytes).is_err() {
                caught = Some(i);
                break;
            }
        }
        if caught != Some(bad) {
            return Err(format!(
                "forged chunk {bad} of {n}: rejected at {caught:?}, expected Some({bad})"
            ));
        }
    }
    println!("corruption round: {n} forged chunks, each rejected at its exact index — ok");
    Ok(())
}

fn orchestrate(dir: &str, rounds: u64) -> Result<(), String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    for r in 0..rounds {
        round(&exe, dir, r)?;
    }
    corruption_round()?;
    println!("bootstrap-smoke: {rounds} kill-and-restore rounds survived");
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let result = match args.get(1).map(String::as_str) {
        Some("worker") => match args.get(2) {
            Some(dir) => worker(dir),
            None => Err("usage: bootstrap_smoke worker <dir>".into()),
        },
        Some(dir) => {
            let rounds = args.get(2).and_then(|r| r.parse().ok()).unwrap_or(8);
            orchestrate(dir, rounds)
        }
        None => Err("usage: bootstrap_smoke <dir> [rounds] | bootstrap_smoke worker <dir>".into()),
    };
    if let Err(msg) = result {
        eprintln!("bootstrap-smoke FAILED: {msg}");
        std::process::exit(1);
    }
}
