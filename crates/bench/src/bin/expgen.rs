//! `expgen` — regenerates every experiment table of `EXPERIMENTS.md` and
//! writes machine-readable results to `BENCH_results.json`.
//!
//! ```text
//! expgen                    # run all experiments + perf probes, full parameters
//! expgen --quick            # reduced parameters
//! expgen e3 e5              # run selected experiments
//! expgen perf               # run only the perf probe suite
//! expgen --json out.json    # write results somewhere else
//! expgen --no-json          # skip the results file
//! expgen --validate f.json  # validate an existing artifact and exit
//! expgen trace              # export a seeded fork-attack run: Perfetto
//!                           # JSON (BENCH_trace.json) + OpenMetrics
//!                           # (BENCH_metrics.prom)
//! ```
//!
//! `--validate` dispatches on artifact shape: `tcvs-bench-results/v1`
//! JSON, Chrome-trace/Perfetto JSON, or OpenMetrics text exposition.
//!
//! Run with `--release` — the numbers are meaningless in debug builds.

use std::time::Instant;

use tcvs_bench::durability::run_durability_suite;
use tcvs_bench::experiments::{e12, run_by_id, ALL};
use tcvs_bench::forensics::forensics_suite;
use tcvs_bench::perf::{batching_suite, bootstrap_suite, run_suite_observed, sharding_suite};
use tcvs_bench::results::{render_json_with_metrics, validate, validate_artifact, validate_schema};
use tcvs_bench::Table;

/// `expgen --validate <file>`: check an emitted artifact (results JSON,
/// Perfetto trace, or OpenMetrics exposition). Exit 0 on success, 2 on any
/// failure — this is what the CI bench-smoke job runs on the artifacts it
/// uploads.
fn validate_file(path: &str) -> ! {
    let content = match std::fs::read_to_string(path) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = validate_artifact(&content) {
        eprintln!("{path}: INVALID: {e}");
        std::process::exit(2);
    }
    println!("{path}: valid");
    std::process::exit(0);
}

/// `expgen trace`: runs the seeded E12 fork-attack simulation once and
/// writes its two exporter artifacts, self-validating each before writing
/// (exit 3 on an internally-invalid artifact, the same contract as the
/// results file).
fn emit_trace_artifacts(quick: bool) {
    let (trace_json, openmetrics, dump, _) = e12::artifacts(quick);
    for (path, content) in [
        ("BENCH_trace.json", &trace_json),
        ("BENCH_metrics.prom", &openmetrics),
    ] {
        if let Err(e) = validate_artifact(content) {
            eprintln!("internal error: generated {path} is invalid: {e}");
            std::process::exit(3);
        }
        if let Err(e) = std::fs::write(path, content) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(3);
        }
        println!("wrote {path}");
    }
    if let Some(dump) = dump {
        println!("\nflight-recorder dump (detection fired):\n{dump}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--validate") {
        match args.get(i + 1) {
            Some(path) => validate_file(path),
            None => {
                eprintln!("--validate requires a file argument");
                std::process::exit(2);
            }
        }
    }
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let no_json = args.iter().any(|a| a == "--no-json");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_results.json".to_string());
    let mut skip_next = false;
    let ids: Vec<String> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--json" {
                skip_next = true;
            }
            !a.starts_with('-') && !skip_next
        })
        .map(|a| a.to_lowercase())
        .collect();
    let run_trace = ids.iter().any(|i| i == "trace");
    let ids: Vec<String> = ids.into_iter().filter(|i| i != "trace").collect();
    if run_trace {
        emit_trace_artifacts(quick);
        if ids.is_empty() {
            return;
        }
    }
    let perf_only = ids.iter().all(|i| i == "perf") && !ids.is_empty();
    let run_perf = ids.is_empty() && !run_trace || ids.iter().any(|i| i == "perf");
    let ids: Vec<&str> = if ids.is_empty() && !run_trace {
        ALL.to_vec()
    } else {
        ids.iter()
            .filter(|i| *i != "perf")
            .map(String::as_str)
            .collect()
    };

    if cfg!(debug_assertions) {
        eprintln!("warning: debug build — timings will be wildly off; use --release");
    }

    println!(
        "trusted-cvs experiment generator ({} mode)\n",
        if quick { "quick" } else { "full" }
    );

    let mut failed = false;
    let mut all_tables: Vec<Table> = Vec::new();
    if !perf_only {
        for id in ids {
            let start = Instant::now();
            match run_by_id(id, quick) {
                Some(tables) => {
                    for t in &tables {
                        println!("{}", t.render());
                    }
                    all_tables.extend(tables);
                    println!(
                        "[{} completed in {:.1}s]\n",
                        id,
                        start.elapsed().as_secs_f64()
                    );
                }
                None => {
                    eprintln!(
                        "unknown experiment id: {id} (known: {}, perf)",
                        ALL.join(", ")
                    );
                    failed = true;
                }
            }
        }
    }

    let (probes, durability, batching, sharding, bootstrap, forensics, metrics) = if run_perf {
        let start = Instant::now();
        let (probes, metrics) = run_suite_observed(quick);
        let durability = run_durability_suite(quick);
        let batching = batching_suite(quick);
        let sharding = sharding_suite(quick);
        let bootstrap = bootstrap_suite(quick);
        let forensics = forensics_suite(quick);
        let mut t = Table::new(
            "PERF",
            "hot-path probes (recorded in BENCH_results.json; \
             [batching] rows are the same-run before/after family; \
             [sharding] rows are the 1/2/4/8-shard grove scaling family; \
             [bootstrap] rows are chunked verified state sync vs db size \
             and chunk budget; [forensics] rows are evidence-bundle \
             capture/audit cost and the honest-path instrumented ratio)",
            &[
                "probe",
                "ops/s",
                "proof bytes",
                "p50 µs",
                "p99 µs",
                "p99.9 µs",
            ],
        );
        for (p, family) in probes
            .iter()
            .chain(&durability)
            .map(|p| (p, ""))
            .chain(batching.iter().map(|p| (p, "[batching] ")))
            .chain(sharding.iter().map(|p| (p, "[sharding] ")))
            .chain(bootstrap.iter().map(|p| (p, "[bootstrap] ")))
            .chain(forensics.iter().map(|p| (p, "[forensics] ")))
        {
            t.row(vec![
                format!("{family}{}", p.name),
                format!("{:.0}", p.ops_per_sec),
                p.proof_bytes.map_or("-".into(), |v| format!("{v:.0}")),
                p.p50_us.map_or("-".into(), |v| format!("{v:.2}")),
                p.p99_us.map_or("-".into(), |v| format!("{v:.2}")),
                p.p999_us.map_or("-".into(), |v| format!("{v:.2}")),
            ]);
        }
        println!("{}", t.render());
        println!(
            "[perf completed in {:.1}s]\n",
            start.elapsed().as_secs_f64()
        );
        (
            probes, durability, batching, sharding, bootstrap, forensics, metrics,
        )
    } else {
        (
            Vec::new(),
            Vec::new(),
            Vec::new(),
            Vec::new(),
            Vec::new(),
            Vec::new(),
            Default::default(),
        )
    };

    // Only (re)write the results file when the perf suite actually ran:
    // a selective `expgen e6` run must not clobber the recorded perf
    // trajectory with an empty probe list.
    if !no_json && run_perf && !failed {
        let mode = if quick { "quick" } else { "full" };
        let json = render_json_with_metrics(
            mode,
            &probes,
            &durability,
            &batching,
            &sharding,
            &bootstrap,
            &forensics,
            &all_tables,
            &metrics,
        );
        if let Err(e) = validate(&json).and_then(|()| validate_schema(&json)) {
            eprintln!("internal error: generated results JSON is invalid: {e}");
            std::process::exit(3);
        }
        if let Err(e) = std::fs::write(&json_path, &json) {
            eprintln!("cannot write {json_path}: {e}");
            std::process::exit(3);
        }
        println!("results written to {json_path}");
    }
    if failed {
        std::process::exit(2);
    }
}
