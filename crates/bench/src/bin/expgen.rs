//! `expgen` — regenerates every experiment table of `EXPERIMENTS.md`.
//!
//! ```text
//! expgen                 # run all experiments, full parameters
//! expgen --quick         # run all experiments, reduced parameters
//! expgen e3 e5           # run selected experiments
//! expgen e6 --quick      # combine
//! ```
//!
//! Run with `--release` — the numbers are meaningless in debug builds.

use std::time::Instant;

use tcvs_bench::experiments::{run_by_id, ALL};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let ids: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with('-'))
        .map(|a| a.to_lowercase())
        .collect();
    let ids: Vec<&str> = if ids.is_empty() {
        ALL.to_vec()
    } else {
        ids.iter().map(String::as_str).collect()
    };

    if cfg!(debug_assertions) {
        eprintln!("warning: debug build — timings will be wildly off; use --release");
    }

    println!(
        "trusted-cvs experiment generator ({} mode)\n",
        if quick { "quick" } else { "full" }
    );

    let mut failed = false;
    for id in ids {
        let start = Instant::now();
        match run_by_id(id, quick) {
            Some(tables) => {
                for t in tables {
                    println!("{}", t.render());
                }
                println!(
                    "[{} completed in {:.1}s]\n",
                    id,
                    start.elapsed().as_secs_f64()
                );
            }
            None => {
                eprintln!("unknown experiment id: {id} (known: {})", ALL.join(", "));
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(2);
    }
}
