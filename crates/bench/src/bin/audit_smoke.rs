//! `audit_smoke` — the end-to-end forensics drill the CI audit-smoke job
//! runs: a seeded 1-of-4-shard fork attack is driven to a failed grove
//! sync-up, the localization evidence bundle is captured (with the second
//! user's transition log grafted in) and written to disk, the cold audit
//! must re-derive the deviation and name the exact shard and counter, the
//! sealed bytes must be identical across two same-seed captures, and a
//! tampered copy (one flipped byte) must be rejected.
//!
//! ```text
//! audit_smoke [path]      # default path: BENCH_evidence.bin
//! ```
//!
//! Writes `<path>` (the authentic bundle) and `<path>.tampered` (the same
//! bytes with one bit flipped) so the job can then run the *actual*
//! `tcvs-audit` binary against both and check its exit codes. Exit 0 iff
//! every in-process assertion held; any failure exits 1 with a message.

use tcvs_bench::forensics::ForkScenario;
use tcvs_core::audit_bytes;

const SEED: u64 = 0x0DD5EED;

fn fail(msg: &str) -> ! {
    eprintln!("audit-smoke: FAIL: {msg}");
    std::process::exit(1);
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_evidence.bin".to_string());

    let scenario = ForkScenario::drive(40);
    let bundle = scenario.seal(SEED);
    let bytes = bundle.to_bytes();
    println!(
        "audit-smoke: sealed localization bundle ({} bytes, {} transition logs)",
        bytes.len(),
        bundle.transition_logs.len()
    );

    // Same capture, same seed → byte-identical artifact.
    if scenario.seal(SEED).to_bytes() != bytes {
        fail("same-seed re-capture is not byte-identical");
    }
    println!("audit-smoke: re-capture is byte-identical");

    // The cold audit must confirm the deviation and name shard + counter.
    let report = audit_bytes(&bytes);
    if !report.accepted {
        fail(&format!(
            "authentic bundle rejected: {:?}",
            report.rejection
        ));
    }
    if !report.confirmed {
        fail("audit did not re-derive the deviation from the bundle");
    }
    if report.deviating_shards != vec![scenario.bad_shard as u32] {
        fail(&format!(
            "expected shard {} deviating, got {:?}",
            scenario.bad_shard, report.deviating_shards
        ));
    }
    let culprit = report
        .culprit
        .as_ref()
        .unwrap_or_else(|| fail("audit named no culprit"));
    if culprit.shard != scenario.bad_shard as u32 || culprit.at_ctr != scenario.fork_at {
        fail(&format!(
            "expected shard {} at ctr {}, got shard {} at ctr {}",
            scenario.bad_shard, scenario.fork_at, culprit.shard, culprit.at_ctr
        ));
    }
    println!(
        "audit-smoke: culprit shard={} ctr={} class={}",
        culprit.shard, culprit.at_ctr, culprit.class
    );

    // One flipped byte anywhere must be rejected; spot-check in-process
    // before handing the file pair to the real verifier binary.
    let mut tampered = bytes.clone();
    let at = tampered.len() / 2;
    tampered[at] ^= 0x01;
    if audit_bytes(&tampered).accepted {
        fail(&format!("tampered bundle (byte {at} flipped) was accepted"));
    }
    println!("audit-smoke: tampered copy rejected (byte {at} flipped)");

    if let Err(e) = std::fs::write(&path, &bytes) {
        fail(&format!("cannot write {path}: {e}"));
    }
    let tampered_path = format!("{path}.tampered");
    if let Err(e) = std::fs::write(&tampered_path, &tampered) {
        fail(&format!("cannot write {tampered_path}: {e}"));
    }
    println!("audit-smoke: wrote {path} and {tampered_path}");
    scenario.shutdown();
    println!("audit-smoke: OK");
}
