//! Focused performance probes for the hot paths this repository optimizes
//! across PRs: proof generation, crash snapshots, and mixed read/write
//! throughput. `expgen` runs these and records the numbers in
//! `BENCH_results.json` so the perf trajectory is tracked per PR.

use std::sync::Arc;
use std::time::Instant;

use tcvs_core::{ProtocolConfig, ProtocolKind, ServerCore};
use tcvs_merkle::{apply_op, prune_for_op, u64_key, MerkleTree, Op, VerificationObject};
use tcvs_net::{run_throughput, run_throughput_observed, NetStats};
use tcvs_obs::{MetricsRegistry, MetricsSnapshot, Tracer};

/// One probe's outcome: throughput plus optional proof-size and latency
/// quantiles (probes that don't measure them leave `None`).
#[derive(Clone, Debug)]
pub struct PerfResult {
    /// Probe name (stable key in `BENCH_results.json`).
    pub name: String,
    /// Operations per second.
    pub ops_per_sec: f64,
    /// Mean verification-object size in bytes, if the probe builds proofs.
    pub proof_bytes: Option<f64>,
    /// Median per-op latency in microseconds, if measured per-op.
    pub p50_us: Option<f64>,
    /// 99th-percentile per-op latency in microseconds, if measured per-op.
    pub p99_us: Option<f64>,
}

fn quantile(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx] as f64 / 1e3
}

/// Point-update proof generation on a tree of `n` entries: per iteration the
/// server builds the verification object for a `Put`, applies it, and reads
/// the new root — the §4.1 hot path every protocol bottlenecks on.
pub fn point_update_proof_gen(n: u64, order: usize, value_len: usize, iters: u64) -> PerfResult {
    let mut tree = MerkleTree::with_order(order);
    for i in 0..n {
        tree.insert(u64_key(i), vec![0xAB; value_len])
            .expect("full tree");
    }
    let mut proof_bytes = 0u64;
    let mut lat = Vec::with_capacity(iters as usize);
    let started = Instant::now();
    for i in 0..iters {
        // Spread updates across the key space deterministically.
        let op = Op::Put(u64_key((i * 7919) % n), vec![(i % 251) as u8; value_len]);
        let t = Instant::now();
        let vo = VerificationObject::new(prune_for_op(&tree, &op));
        apply_op(&mut tree, &op).expect("full tree");
        std::hint::black_box(tree.root_digest());
        lat.push(t.elapsed().as_nanos() as u64);
        proof_bytes += vo.encoded_size() as u64;
    }
    let elapsed = started.elapsed().as_secs_f64();
    lat.sort_unstable();
    PerfResult {
        name: format!("point_update_proof_gen/n{n}_order{order}_val{value_len}"),
        ops_per_sec: iters as f64 / elapsed.max(1e-9),
        proof_bytes: Some(proof_bytes as f64 / iters as f64),
        p50_us: Some(quantile(&lat, 0.5)),
        p99_us: Some(quantile(&lat, 0.99)),
    }
}

/// Read-heavy mixed throughput: `clients` threads against one server,
/// `update_pct`% updates (the acceptance mix is 90/10 reads/writes).
pub fn mixed_throughput(
    protocol: ProtocolKind,
    clients: u32,
    ops_per_client: u64,
    update_pct: u32,
) -> PerfResult {
    let config = ProtocolConfig {
        order: 16,
        k: u64::MAX,
        epoch_len: 1 << 30,
    };
    let r = run_throughput(protocol, clients, ops_per_client, update_pct, &config);
    let mut lat = r.latencies_ns.clone();
    lat.sort_unstable();
    PerfResult {
        name: format!(
            "throughput/{}_{}clients_{}pct_updates",
            protocol.label(),
            clients,
            update_pct
        ),
        ops_per_sec: r.ops_per_sec(),
        proof_bytes: None,
        p50_us: Some(quantile(&lat, 0.5)),
        p99_us: Some(quantile(&lat, 0.99)),
    }
}

/// Crash-snapshot capture cost on a database of `n` entries: captures per
/// second (the higher, the cheaper a capture; an O(1) capture stays flat as
/// `n` grows).
pub fn crash_snapshot_capture(n: u64, iters: u64) -> PerfResult {
    let config = ProtocolConfig {
        order: 16,
        k: u64::MAX,
        epoch_len: 1 << 30,
    };
    let mut core = ServerCore::new(&config);
    for i in 0..n {
        core.process(0, &Op::Put(u64_key(i), vec![0xCD; 24]), i);
    }
    let started = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(core.crash_snapshot());
    }
    let elapsed = started.elapsed().as_secs_f64();
    PerfResult {
        name: format!("crash_snapshot_capture/n{n}"),
        ops_per_sec: iters as f64 / elapsed.max(1e-9),
        proof_bytes: None,
        p50_us: None,
        p99_us: None,
    }
}

fn throughput_config() -> ProtocolConfig {
    ProtocolConfig {
        order: 16,
        k: u64::MAX,
        epoch_len: 1 << 30,
    }
}

/// Instrumented trusted-read throughput: the same rig as
/// [`mixed_throughput`] with live metric handles attached to the server
/// thread, the reader pool, and every client. Returns the probe result and
/// the metrics snapshot the run produced (serialized into
/// `BENCH_results.json`'s `"metrics"` section).
///
/// The probe exists to keep the write-lock invariant honest: metric and
/// event emission happen strictly outside the snapshot-slot critical
/// section, so this number must track the uninstrumented
/// `throughput/trusted_*` probe.
pub fn instrumented_throughput(
    clients: u32,
    ops_per_client: u64,
    update_pct: u32,
) -> (PerfResult, MetricsSnapshot) {
    let stats = NetStats::new(Arc::new(MetricsRegistry::new()), Tracer::disabled());
    let r = run_throughput_observed(
        ProtocolKind::Trusted,
        clients,
        ops_per_client,
        update_pct,
        &throughput_config(),
        stats.clone(),
    );
    let mut lat = r.latencies_ns.clone();
    lat.sort_unstable();
    let result = PerfResult {
        name: format!("throughput/trusted_{clients}clients_{update_pct}pct_updates_instrumented"),
        ops_per_sec: r.ops_per_sec(),
        proof_bytes: None,
        p50_us: Some(quantile(&lat, 0.5)),
        p99_us: Some(quantile(&lat, 0.99)),
    };
    (result, stats.snapshot())
}

/// Instrumented-to-dark throughput ratio on the trusted-read rig, taking
/// the best of `rounds` interleaved measurements for each side (best-of
/// suppresses scheduler noise; interleaving suppresses drift). 1.0 means
/// instrumentation is free; the overhead gate asserts it stays above 0.95.
pub fn instrumentation_overhead_ratio(
    clients: u32,
    ops_per_client: u64,
    update_pct: u32,
    rounds: u32,
) -> f64 {
    let config = throughput_config();
    let mut dark: f64 = 0.0;
    let mut instrumented: f64 = 0.0;
    for _ in 0..rounds.max(1) {
        dark = dark.max(
            run_throughput(
                ProtocolKind::Trusted,
                clients,
                ops_per_client,
                update_pct,
                &config,
            )
            .ops_per_sec(),
        );
        instrumented = instrumented.max(
            instrumented_throughput(clients, ops_per_client, update_pct)
                .0
                .ops_per_sec,
        );
    }
    instrumented / dark.max(1e-9)
}

/// The standard probe suite; `quick` shrinks sizes for CI smoke runs.
/// Discards the metrics snapshot — use [`run_suite_observed`] to keep it.
pub fn run_suite(quick: bool) -> Vec<PerfResult> {
    run_suite_observed(quick).0
}

/// The standard probe suite plus the instrumented trusted-read probe;
/// returns the probes and the instrumented run's metrics snapshot.
pub fn run_suite_observed(quick: bool) -> (Vec<PerfResult>, MetricsSnapshot) {
    let (n, iters) = if quick {
        (1 << 12, 400)
    } else {
        (1 << 14, 2000)
    };
    let (clients, ops) = if quick { (4, 100) } else { (4, 500) };
    let snap_iters = if quick { 50 } else { 200 };
    let mut probes = vec![
        point_update_proof_gen(n, 16, 24, iters),
        point_update_proof_gen(n, 16, 256, iters),
        mixed_throughput(ProtocolKind::Trusted, clients, ops, 10),
        mixed_throughput(ProtocolKind::Two, clients, ops, 10),
        mixed_throughput(ProtocolKind::Two, clients, ops, 90),
        crash_snapshot_capture(n, snap_iters),
        crash_snapshot_capture(n * 4, snap_iters),
    ];
    let (instrumented, metrics) = instrumented_throughput(clients, ops, 10);
    probes.push(instrumented);
    (probes, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The write-lock invariant, as a perf gate: attaching metrics and a
    /// tracer must not extend the snapshot-slot critical section, so the
    /// instrumented trusted-read rig has to stay within 5% of the dark one
    /// (whose recorded PR-2 baseline is 112904 ops/s in release full mode).
    /// Timing under a loaded test runner is noisy, so the gate re-measures
    /// with more rounds before declaring a regression.
    #[test]
    fn instrumentation_overhead_stays_under_five_percent() {
        let mut ratio = 0.0;
        for rounds in [2, 3, 4] {
            ratio = instrumentation_overhead_ratio(4, 400, 10, rounds);
            if ratio >= 0.95 {
                return;
            }
        }
        panic!("instrumented/dark trusted-read throughput ratio {ratio:.3} < 0.95");
    }

    #[test]
    fn instrumented_probe_counts_every_op() {
        let (probe, metrics) = instrumented_throughput(2, 50, 10);
        assert!(probe.name.ends_with("_instrumented"));
        let reads = metrics.counter("net.server.reads_served").unwrap_or(0);
        let ops = metrics.counter("net.server.ops_served").unwrap_or(0);
        // Every one of the 100 worker ops lands on exactly one path.
        assert_eq!(reads + ops, 100, "reads={reads} ops={ops}");
    }
}
