//! Focused performance probes for the hot paths this repository optimizes
//! across PRs: proof generation, crash snapshots, and mixed read/write
//! throughput. `expgen` runs these and records the numbers in
//! `BENCH_results.json` so the perf trajectory is tracked per PR.

use std::sync::Arc;
use std::time::{Duration, Instant};

use tcvs_core::adversary::{LieServer, Trigger};
use tcvs_core::{
    FaultPlan, FaultRates, HonestServer, ProtocolConfig, ProtocolKind, ServerApi, ServerCore,
    NO_USER,
};
use tcvs_merkle::{
    apply_op, prune_for_op, u64_key, ChunkAssembler, ChunkSource, MerkleTree, Op,
    VerificationObject,
};
use tcvs_net::{
    run_sharded_throughput, run_throughput, run_throughput_observed, run_throughput_tuned,
    BootstrapClient, FaultLink, NetClientTrusted, NetServer, NetServerOptions, NetStats,
    RetryPolicy, ShardedClient2, ShardedServer, ThroughputOptions, ThroughputReport,
};
use tcvs_obs::{MetricsRegistry, MetricsSnapshot, Tracer};

/// One probe's outcome: throughput plus optional proof-size and latency
/// quantiles (probes that don't measure them leave `None`).
#[derive(Clone, Debug)]
pub struct PerfResult {
    /// Probe name (stable key in `BENCH_results.json`).
    pub name: String,
    /// Operations per second.
    pub ops_per_sec: f64,
    /// Mean verification-object size in bytes, if the probe builds proofs.
    pub proof_bytes: Option<f64>,
    /// Median per-op latency in microseconds, if measured per-op.
    pub p50_us: Option<f64>,
    /// 99th-percentile per-op latency in microseconds, if measured per-op.
    pub p99_us: Option<f64>,
    /// 99.9th-percentile per-op latency in microseconds. Batching trades
    /// tail latency for throughput (every op in a window waits for the
    /// whole exchange), and p99 alone hides that trade — the batching
    /// probes exist to make it visible.
    pub p999_us: Option<f64>,
}

fn quantile(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx] as f64 / 1e3
}

/// Builds a throughput probe from a rig report, with the full latency
/// quantile set (p50/p99/p999) computed from the per-op samples.
fn probe_from_report(name: String, r: &ThroughputReport) -> PerfResult {
    let mut lat = r.latencies_ns.clone();
    lat.sort_unstable();
    PerfResult {
        name,
        ops_per_sec: r.ops_per_sec(),
        proof_bytes: None,
        p50_us: Some(quantile(&lat, 0.5)),
        p99_us: Some(quantile(&lat, 0.99)),
        p999_us: Some(quantile(&lat, 0.999)),
    }
}

/// Point-update proof generation on a tree of `n` entries: per iteration the
/// server builds the verification object for a `Put`, applies it, and reads
/// the new root — the §4.1 hot path every protocol bottlenecks on.
pub fn point_update_proof_gen(n: u64, order: usize, value_len: usize, iters: u64) -> PerfResult {
    let mut tree = MerkleTree::with_order(order);
    for i in 0..n {
        tree.insert(u64_key(i), vec![0xAB; value_len])
            .expect("full tree");
    }
    let mut proof_bytes = 0u64;
    let mut lat = Vec::with_capacity(iters as usize);
    let started = Instant::now();
    for i in 0..iters {
        // Spread updates across the key space deterministically.
        let op = Op::Put(u64_key((i * 7919) % n), vec![(i % 251) as u8; value_len]);
        let t = Instant::now();
        let vo = VerificationObject::new(prune_for_op(&tree, &op));
        apply_op(&mut tree, &op).expect("full tree");
        std::hint::black_box(tree.root_digest());
        lat.push(t.elapsed().as_nanos() as u64);
        proof_bytes += vo.encoded_size() as u64;
    }
    let elapsed = started.elapsed().as_secs_f64();
    lat.sort_unstable();
    PerfResult {
        name: format!("point_update_proof_gen/n{n}_order{order}_val{value_len}"),
        ops_per_sec: iters as f64 / elapsed.max(1e-9),
        proof_bytes: Some(proof_bytes as f64 / iters as f64),
        p50_us: Some(quantile(&lat, 0.5)),
        p99_us: Some(quantile(&lat, 0.99)),
        p999_us: Some(quantile(&lat, 0.999)),
    }
}

/// Read-heavy mixed throughput: `clients` threads against one server,
/// `update_pct`% updates (the acceptance mix is 90/10 reads/writes).
pub fn mixed_throughput(
    protocol: ProtocolKind,
    clients: u32,
    ops_per_client: u64,
    update_pct: u32,
) -> PerfResult {
    let config = ProtocolConfig {
        order: 16,
        k: u64::MAX,
        epoch_len: 1 << 30,
    };
    let r = run_throughput(protocol, clients, ops_per_client, update_pct, &config);
    probe_from_report(
        format!(
            "throughput/{}_{}clients_{}pct_updates",
            protocol.label(),
            clients,
            update_pct
        ),
        &r,
    )
}

/// Crash-snapshot capture cost on a database of `n` entries: captures per
/// second (the higher, the cheaper a capture; an O(1) capture stays flat as
/// `n` grows).
pub fn crash_snapshot_capture(n: u64, iters: u64) -> PerfResult {
    let config = ProtocolConfig {
        order: 16,
        k: u64::MAX,
        epoch_len: 1 << 30,
    };
    let mut core = ServerCore::new(&config);
    for i in 0..n {
        core.process(0, &Op::Put(u64_key(i), vec![0xCD; 24]), i);
    }
    let started = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(core.crash_snapshot());
    }
    let elapsed = started.elapsed().as_secs_f64();
    PerfResult {
        name: format!("crash_snapshot_capture/n{n}"),
        ops_per_sec: iters as f64 / elapsed.max(1e-9),
        proof_bytes: None,
        p50_us: None,
        p99_us: None,
        p999_us: None,
    }
}

fn throughput_config() -> ProtocolConfig {
    ProtocolConfig {
        order: 16,
        k: u64::MAX,
        epoch_len: 1 << 30,
    }
}

/// Instrumented trusted-read throughput: the same rig as
/// [`mixed_throughput`] with live metric handles attached to the server
/// thread, the reader pool, and every client. Returns the probe result and
/// the metrics snapshot the run produced (serialized into
/// `BENCH_results.json`'s `"metrics"` section).
///
/// The probe exists to keep the write-lock invariant honest: metric and
/// event emission happen strictly outside the snapshot-slot critical
/// section, so this number must track the uninstrumented
/// `throughput/trusted_*` probe.
pub fn instrumented_throughput(
    clients: u32,
    ops_per_client: u64,
    update_pct: u32,
) -> (PerfResult, MetricsSnapshot) {
    let stats = NetStats::new(Arc::new(MetricsRegistry::new()), Tracer::disabled());
    let r = run_throughput_observed(
        ProtocolKind::Trusted,
        clients,
        ops_per_client,
        update_pct,
        &throughput_config(),
        stats.clone(),
    );
    let result = probe_from_report(
        format!("throughput/trusted_{clients}clients_{update_pct}pct_updates_instrumented"),
        &r,
    );
    (result, stats.snapshot())
}

/// The dark and instrumented trusted-read probes measured **interleaved**:
/// `rounds` passes, each running both rigs with the order flipped every
/// pass, taking the best of each side. The suite used to run all dark
/// probes first and the instrumented one last, so allocator/cache warm-up
/// leaked into whichever side ran later and the instrumented number could
/// *exceed* the dark baseline (686k vs 553k in the PR 5 results) — an
/// ordering artifact, not negative-overhead instrumentation. Alternating
/// the order makes warm-up drift hit both sides equally.
pub fn interleaved_trusted_probes(
    clients: u32,
    ops_per_client: u64,
    update_pct: u32,
    rounds: u32,
) -> (PerfResult, PerfResult, MetricsSnapshot) {
    let config = throughput_config();
    let dark_name = format!("throughput/trusted_{clients}clients_{update_pct}pct_updates");
    let mut dark: Option<PerfResult> = None;
    let mut instrumented: Option<(PerfResult, MetricsSnapshot)> = None;
    let measure_dark = |best: &mut Option<PerfResult>| {
        let r = run_throughput(
            ProtocolKind::Trusted,
            clients,
            ops_per_client,
            update_pct,
            &config,
        );
        let probe = probe_from_report(dark_name.clone(), &r);
        if best
            .as_ref()
            .is_none_or(|b| probe.ops_per_sec > b.ops_per_sec)
        {
            *best = Some(probe);
        }
    };
    let measure_instrumented = |best: &mut Option<(PerfResult, MetricsSnapshot)>| {
        let (probe, metrics) = instrumented_throughput(clients, ops_per_client, update_pct);
        if best
            .as_ref()
            .is_none_or(|(b, _)| probe.ops_per_sec > b.ops_per_sec)
        {
            *best = Some((probe, metrics));
        }
    };
    for round in 0..rounds.max(1) {
        if round % 2 == 0 {
            measure_dark(&mut dark);
            measure_instrumented(&mut instrumented);
        } else {
            measure_instrumented(&mut instrumented);
            measure_dark(&mut dark);
        }
    }
    let dark = dark.expect("rounds >= 1");
    let (inst, metrics) = instrumented.expect("rounds >= 1");
    (dark, inst, metrics)
}

/// Instrumented-to-dark throughput ratio on the trusted-read rig, taking
/// the best of `rounds` interleaved measurements for each side (best-of
/// suppresses scheduler noise; interleaving suppresses drift). 1.0 means
/// instrumentation is free; the overhead gate asserts it stays above 0.95.
pub fn instrumentation_overhead_ratio(
    clients: u32,
    ops_per_client: u64,
    update_pct: u32,
    rounds: u32,
) -> f64 {
    let config = throughput_config();
    let mut dark: f64 = 0.0;
    let mut instrumented: f64 = 0.0;
    for _ in 0..rounds.max(1) {
        dark = dark.max(
            run_throughput(
                ProtocolKind::Trusted,
                clients,
                ops_per_client,
                update_pct,
                &config,
            )
            .ops_per_sec(),
        );
        instrumented = instrumented.max(
            instrumented_throughput(clients, ops_per_client, update_pct)
                .0
                .ops_per_sec,
        );
    }
    instrumented / dark.max(1e-9)
}

/// The standard probe suite; `quick` shrinks sizes for CI smoke runs.
/// Discards the metrics snapshot — use [`run_suite_observed`] to keep it.
pub fn run_suite(quick: bool) -> Vec<PerfResult> {
    run_suite_observed(quick).0
}

/// The standard probe suite plus the instrumented trusted-read probe;
/// returns the probes and the instrumented run's metrics snapshot. The
/// dark and instrumented trusted probes are measured interleaved (see
/// [`interleaved_trusted_probes`]) so probe order cannot bias their ratio.
pub fn run_suite_observed(quick: bool) -> (Vec<PerfResult>, MetricsSnapshot) {
    let (n, iters) = if quick {
        (1 << 12, 400)
    } else {
        (1 << 14, 2000)
    };
    let (clients, ops) = if quick { (4, 100) } else { (4, 500) };
    let snap_iters = if quick { 50 } else { 200 };
    let rounds = if quick { 2 } else { 3 };
    let (trusted, instrumented, metrics) = interleaved_trusted_probes(clients, ops, 10, rounds);
    let probes = vec![
        point_update_proof_gen(n, 16, 24, iters),
        point_update_proof_gen(n, 16, 256, iters),
        trusted,
        mixed_throughput(ProtocolKind::Two, clients, ops, 10),
        mixed_throughput(ProtocolKind::Two, clients, ops, 90),
        crash_snapshot_capture(n, snap_iters),
        crash_snapshot_capture(n * 4, snap_iters),
        instrumented,
    ];
    (probes, metrics)
}

/// The `"batching"` probe family: before/after rows for the two tuned
/// verified paths, with a trusted reference measured in the **same run**
/// so the verified-to-trusted ratio is an apples-to-apples comparison.
///
/// Naming: the plain `throughput/...` name carries the *tuned*
/// configuration (it is the headline verified number after this change);
/// the `_per_op` / `_blocking` suffixes carry the untuned before rows.
/// The acceptance gate is `throughput/protocol-2_4clients_10pct_updates`
/// here ≥ 0.5× `throughput/trusted_4clients_10pct_updates` here.
///
/// Caveat for the Protocol I pair: pipelining converts the blocking
/// deposit wait into *overlapped* client verify+sign work, so its win is
/// wall-clock parallelism. On a single-core host (this repo's CI
/// container) every P1 configuration is signature-bound at the same
/// ops/sec and the pipelined row ties the blocking row; the lever pays on
/// multicore. The batched Protocol II win, by contrast, is a per-op CPU
/// reduction (shared spine siblings, one exchange per window) and shows
/// up regardless of core count.
pub fn batching_suite(quick: bool) -> Vec<PerfResult> {
    let config = throughput_config();
    let (clients, ops) = if quick { (4, 100) } else { (4, 500) };
    let (p1_clients, p1_ops) = if quick { (2, 60) } else { (2, 250) };
    let window = 16usize;
    let depth = 8usize;
    let tuned = |protocol, n: u32, per: u64, t: ThroughputOptions| {
        run_throughput_tuned(protocol, n, per, 10, &config, t, NetStats::disabled())
    };

    let trusted = tuned(
        ProtocolKind::Trusted,
        clients,
        ops,
        ThroughputOptions::default(),
    );
    let p2_per_op = tuned(
        ProtocolKind::Two,
        clients,
        ops,
        ThroughputOptions::default(),
    );
    let p2_batched = tuned(
        ProtocolKind::Two,
        clients,
        ops,
        ThroughputOptions {
            batch_window: window,
            publish_every_ops: window as u64,
            ..ThroughputOptions::default()
        },
    );
    let p1_blocking = tuned(
        ProtocolKind::One,
        p1_clients,
        p1_ops,
        ThroughputOptions::default(),
    );
    let p1_pipelined = tuned(
        ProtocolKind::One,
        p1_clients,
        p1_ops,
        ThroughputOptions {
            pipeline_depth: depth,
            ..ThroughputOptions::default()
        },
    );

    vec![
        probe_from_report(
            format!("throughput/trusted_{clients}clients_10pct_updates"),
            &trusted,
        ),
        probe_from_report(
            format!("throughput/protocol-2_{clients}clients_10pct_updates_per_op"),
            &p2_per_op,
        ),
        probe_from_report(
            format!("throughput/protocol-2_{clients}clients_10pct_updates"),
            &p2_batched,
        ),
        probe_from_report(
            format!("throughput/protocol-1_{p1_clients}clients_10pct_updates_blocking"),
            &p1_blocking,
        ),
        probe_from_report(
            format!("throughput/protocol-1_{p1_clients}clients_10pct_updates"),
            &p1_pipelined,
        ),
    ]
}

/// Modeled per-op service latency for the sharding probes (see
/// [`run_sharded_throughput`]): the fixed wire + commit cost each shard's
/// serialized path charges per operation. Carried in the probe names
/// (`_wire200us`) so rows from different latency models never compare.
const SHARD_WIRE_LATENCY: Duration = Duration::from_micros(200);

/// The `"sharding"` probe family: trusted and batched Protocol II 90/10
/// throughput over a sharded grove at 1/2/4/8 shards, plus a
/// fork-detection run where exactly one shard of four deviates.
///
/// All scaling rows model a fixed 200µs per-op service latency on each
/// shard's serialized path ([`run_sharded_throughput`] explains why: the
/// quantity sharding multiplies is serialized-resource capacity, which a
/// paced shard reproduces on any host, while raw single-host CPU does not
/// scale with N on fewer cores than shards). The acceptance gate compares
/// same-run rows: 4-shard trusted ≥ 2× the 1-shard trusted figure.
///
/// The two `fork_1of4` rows carry *counts*, not rates, in the schema's
/// `ops_per_sec` slot (the section is probe-shaped by construction; the
/// `_ops` / `_alarms` name suffixes carry the unit): the detection gap in
/// operations on the deviating shard past its trigger (Protocol II's
/// replay check ⇒ 0, and always ≤ k), and the number of honest-shard
/// false alarms (must be 0).
pub fn sharding_suite(quick: bool) -> Vec<PerfResult> {
    let config = throughput_config();
    let clients = 8u32;
    let ops = if quick { 64 } else { 256 };
    let window = 16usize;
    let mut probes = Vec::new();
    for n_shards in [1usize, 2, 4, 8] {
        let trusted = run_sharded_throughput(
            ProtocolKind::Trusted,
            n_shards,
            clients,
            ops,
            10,
            &config,
            ThroughputOptions::default(),
            SHARD_WIRE_LATENCY,
            NetStats::disabled(),
        );
        probes.push(probe_from_report(
            format!("sharding/trusted_{n_shards}shards_{clients}clients_10pct_updates_wire200us"),
            &trusted,
        ));
        let p2 = run_sharded_throughput(
            ProtocolKind::Two,
            n_shards,
            clients,
            ops,
            10,
            &config,
            ThroughputOptions {
                batch_window: window,
                publish_every_ops: window as u64,
                ..ThroughputOptions::default()
            },
            SHARD_WIRE_LATENCY,
            NetStats::disabled(),
        );
        probes.push(probe_from_report(
            format!(
                "sharding/protocol-2_{n_shards}shards_{clients}clients_10pct_updates_wire200us"
            ),
            &p2,
        ));
    }
    let (gap, false_alarms) = fork_one_of_four();
    let count_row = |name: &str, value: f64| PerfResult {
        name: name.into(),
        ops_per_sec: value,
        proof_bytes: None,
        p50_us: None,
        p99_us: None,
        p999_us: None,
    };
    probes.push(count_row(
        "sharding/fork_1of4_detection_gap_ops",
        gap as f64,
    ));
    probes.push(count_row(
        "sharding/fork_1of4_false_alarms",
        false_alarms as f64,
    ));
    probes
}

/// The fork-detection run: a four-shard grove with a lying server on
/// exactly one shard (triggered at that shard's counter 12). Returns the
/// detection gap in deviating-shard operations past the trigger, and the
/// number of alarms raised by traffic on the three honest shards (the
/// false-alarm count). Panics if the lie escapes detection — a silent pass
/// must never produce a results row.
fn fork_one_of_four() -> (u64, u64) {
    const LIE_AT: u64 = 12;
    let cfg = ProtocolConfig {
        order: 8,
        k: 16,
        epoch_len: 1 << 30,
    };
    let bad_shard = 2;
    let inners: Vec<Box<dyn ServerApi + Send>> = (0..4)
        .map(|i| -> Box<dyn ServerApi + Send> {
            if i == bad_shard {
                Box::new(LieServer::new(&cfg, Trigger::AtCtr(LIE_AT)))
            } else {
                Box::new(HonestServer::new(&cfg))
            }
        })
        .collect();
    let grove = ShardedServer::spawn_with_servers(
        inners,
        NetServerOptions::default(),
        NetStats::disabled(),
    );
    let router = grove.router();
    let root0 = MerkleTree::with_order(cfg.order).root_digest();
    let mut c = ShardedClient2::new(0, &[root0; 4], cfg, &grove);
    let mut per_shard_ops = [0u64; 4];
    let mut outcome = None;
    for i in 0..400u64 {
        let op = Op::Put(u64_key(i), vec![i as u8; 8]);
        let shard = router.route_op(&op).expect("keyed op");
        match c.execute(&op) {
            Ok(_) => per_shard_ops[shard] += 1,
            Err(_) => {
                outcome = Some(shard);
                break;
            }
        }
    }
    let alarmed_shard = outcome.expect("the deviating shard escaped detection");
    let false_alarms = u64::from(alarmed_shard != bad_shard);
    let gap = per_shard_ops[bad_shard].saturating_sub(LIE_AT);
    grove.shutdown();
    (gap, false_alarms)
}

/// Value length used by the bootstrap probes; together with the key count
/// it fixes the snapshot size each chunk budget has to move.
const BOOTSTRAP_VALUE_LEN: usize = 16;

/// Spawns a net server whose tree holds `n_keys` entries and whose
/// bootstrap responses are sliced at `budget` bytes per chunk.
fn populated_server(cfg: &ProtocolConfig, n_keys: u64, budget: usize) -> NetServer {
    let server = NetServer::spawn_with(
        Box::new(HonestServer::new(cfg)),
        NetServerOptions {
            bootstrap_chunk_bytes: budget,
            ..NetServerOptions::default()
        },
    );
    let mut writer = NetClientTrusted::new(0, &server);
    for i in 0..n_keys {
        writer
            .execute(&Op::Put(
                u64_key(i),
                vec![(i % 251) as u8; BOOTSTRAP_VALUE_LEN],
            ))
            .expect("honest server");
    }
    server
}

/// The verified-state-sync family: end-to-end bootstrap cost over the real
/// wire as the database size and chunk budget vary (`ops_per_sec` is keys
/// restored per second; `proof_bytes` is the mean chunk payload), plus
/// count rows (`_alarms` / `_misses` suffixes carry the unit) for the two
/// safety properties — benign fault storms must cause zero bootstrap
/// failures, and a forged chunk must be rejected at exactly its index for
/// every index in the stream.
pub fn bootstrap_suite(quick: bool) -> Vec<PerfResult> {
    let cfg = ProtocolConfig {
        order: 8,
        k: 16,
        epoch_len: 1 << 30,
    };
    let sizes: &[u64] = if quick { &[256, 1024] } else { &[1024, 8192] };
    let budgets: &[usize] = &[1024, 16 * 1024, 64 * 1024];
    let rounds: u64 = if quick { 2 } else { 5 };
    let mut probes = Vec::new();
    for &n_keys in sizes {
        for &budget in budgets {
            let server = populated_server(&cfg, n_keys, budget);
            let mut chunks = 0u64;
            let mut bytes = 0u64;
            let started = Instant::now();
            for _ in 0..rounds {
                let mut boot = BootstrapClient::new(NO_USER, &server);
                let report = boot.bootstrap(None).expect("honest bootstrap");
                assert_eq!(
                    report.tree.len(),
                    Some(n_keys as usize),
                    "bootstrap dropped entries"
                );
                chunks += report.chunks_fetched;
                bytes += report.bytes_fetched;
            }
            let secs = started.elapsed().as_secs_f64().max(1e-9);
            probes.push(PerfResult {
                name: format!("bootstrap/{n_keys}keys_{budget}b_chunks"),
                ops_per_sec: (n_keys * rounds) as f64 / secs,
                proof_bytes: Some(bytes as f64 / (chunks.max(1)) as f64),
                p50_us: None,
                p99_us: None,
                p999_us: None,
            });
            server.shutdown();
        }
    }
    let count_row = |name: &str, value: f64| PerfResult {
        name: name.into(),
        ops_per_sec: value,
        proof_bytes: None,
        p50_us: None,
        p99_us: None,
        p999_us: None,
    };
    let (storm_runs, storm_alarms) = bootstrap_fault_storm(&cfg);
    probes.push(count_row("bootstrap/fault_storm_runs", storm_runs as f64));
    probes.push(count_row(
        "bootstrap/fault_storm_false_alarms",
        storm_alarms as f64,
    ));
    let (forge_trials, forge_misses) = forged_chunk_sweep(&cfg);
    probes.push(count_row(
        "bootstrap/forge_trials_chunks",
        forge_trials as f64,
    ));
    probes.push(count_row(
        "bootstrap/forge_detection_misses",
        forge_misses as f64,
    ));
    probes
}

/// Bootstraps through a seeded benign fault storm (drops, delays,
/// duplicates, reorders on the wire). Returns (runs, false alarms): every
/// run must assemble the same root a storm-free bootstrap sees, so any
/// failure or divergence counts as a false alarm.
fn bootstrap_fault_storm(cfg: &ProtocolConfig) -> (u64, u64) {
    let server = populated_server(cfg, 128, 512);
    let mut direct = BootstrapClient::new(NO_USER, &server);
    let clean = direct.bootstrap(None).expect("storm-free bootstrap");
    let mut runs = 0u64;
    let mut false_alarms = 0u64;
    for seed in [0xb007_u64, 0x57a9, 0xfa11] {
        let plan = FaultPlan::seeded(seed, 40, &FaultRates::heavy());
        let link = FaultLink::interpose(&server, plan);
        let mut boot = BootstrapClient::new(NO_USER, &link);
        boot.set_retry_policy(RetryPolicy {
            max_attempts: 8,
            base_timeout: Duration::from_millis(40),
            max_jitter: Duration::from_millis(5),
        });
        runs += 1;
        match boot.bootstrap(None) {
            Ok(report) if report.root == clean.root => {}
            _ => false_alarms += 1,
        }
    }
    server.shutdown();
    (runs, false_alarms)
}

/// The forged-chunk sweep: for every chunk index in a multi-chunk
/// snapshot, flip one byte inside that chunk's node region and replay the
/// stream. Returns (trials, misses) where a miss is a forgery that was
/// admitted at all or rejected at the wrong index — the acceptance gate
/// requires zero.
fn forged_chunk_sweep(cfg: &ProtocolConfig) -> (u64, u64) {
    let mut tree = MerkleTree::with_order(cfg.order);
    for i in 0..200u64 {
        tree.insert(u64_key(i), vec![(i % 251) as u8; BOOTSTRAP_VALUE_LEN])
            .expect("full tree");
    }
    let source = ChunkSource::new(&tree, 512).expect("full tree chunks");
    let n = source.num_chunks();
    assert!(n >= 3, "the sweep needs a multi-chunk transfer, got {n}");
    let mut misses = 0u64;
    for bad in 0..n {
        let mut assembler = ChunkAssembler::new(source.manifest().clone()).expect("valid manifest");
        let mut caught = None;
        for i in 0..n {
            let mut bytes = source.chunk(i).expect("in range");
            if i == bad {
                let at = bytes.len() - 1 - bytes.len() / 4;
                bytes[at] ^= 0x01;
            }
            if assembler.admit(i, &bytes).is_err() {
                caught = Some(i);
                break;
            }
        }
        if caught != Some(bad) {
            misses += 1;
        }
    }
    (n as u64, misses)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The write-lock invariant, as a perf gate: attaching metrics and a
    /// tracer must not extend the snapshot-slot critical section, so the
    /// instrumented trusted-read rig has to stay within 5% of the dark one
    /// (whose recorded PR-2 baseline is 112904 ops/s in release full mode).
    /// Timing under a loaded test runner is noisy, so the gate re-measures
    /// with more rounds before declaring a regression.
    #[test]
    fn instrumentation_overhead_stays_under_five_percent() {
        let mut ratio = 0.0;
        for rounds in [2, 3, 4] {
            ratio = instrumentation_overhead_ratio(4, 400, 10, rounds);
            if ratio >= 0.95 {
                return;
            }
        }
        panic!("instrumented/dark trusted-read throughput ratio {ratio:.3} < 0.95");
    }

    /// The batching family carries the same-run trusted reference, the
    /// untuned before rows, and the tuned after rows under the canonical
    /// names the acceptance gate compares, each with the full latency
    /// quantile set (the p999 column is the whole point of the family).
    #[test]
    fn batching_suite_produces_before_and_after_rows() {
        let probes = batching_suite(true);
        let names: Vec<&str> = probes.iter().map(|p| p.name.as_str()).collect();
        for expected in [
            "throughput/trusted_4clients_10pct_updates",
            "throughput/protocol-2_4clients_10pct_updates_per_op",
            "throughput/protocol-2_4clients_10pct_updates",
            "throughput/protocol-1_2clients_10pct_updates_blocking",
            "throughput/protocol-1_2clients_10pct_updates",
        ] {
            assert!(names.contains(&expected), "missing probe {expected}");
        }
        for p in &probes {
            assert!(
                p.ops_per_sec.is_finite() && p.ops_per_sec > 0.0,
                "{}: {}",
                p.name,
                p.ops_per_sec
            );
            assert!(p.p999_us.is_some(), "{} lacks tail latency", p.name);
        }
    }

    /// The bootstrap acceptance gate, on the quick suite: every size ×
    /// budget cell produced a finite transfer-rate row whose mean chunk
    /// never exceeds roughly its budget, the fault storm caused zero
    /// bootstrap failures, and the forged-chunk sweep covered a
    /// multi-chunk stream with zero detection misses.
    #[test]
    fn bootstrap_suite_transfers_and_detects() {
        let probes = bootstrap_suite(true);
        let get = |name: &str| {
            probes
                .iter()
                .find(|p| p.name == name)
                .unwrap_or_else(|| panic!("missing probe {name}"))
        };
        for n_keys in [256u64, 1024] {
            for budget in [1024usize, 16 * 1024, 64 * 1024] {
                let p = get(&format!("bootstrap/{n_keys}keys_{budget}b_chunks"));
                assert!(
                    p.ops_per_sec.is_finite() && p.ops_per_sec > 0.0,
                    "{}: {}",
                    p.name,
                    p.ops_per_sec
                );
                let mean_chunk = p.proof_bytes.expect("mean chunk bytes recorded");
                // The codec's per-chunk envelope can push a single-chunk
                // payload slightly past the budget; 2x is the sanity bound.
                assert!(
                    mean_chunk > 0.0 && mean_chunk < 2.0 * budget as f64,
                    "{}: mean chunk {mean_chunk} vs budget {budget}",
                    p.name
                );
            }
        }
        assert!(get("bootstrap/fault_storm_runs").ops_per_sec >= 3.0);
        assert_eq!(
            get("bootstrap/fault_storm_false_alarms").ops_per_sec,
            0.0,
            "benign storms must never fail a bootstrap"
        );
        assert!(get("bootstrap/forge_trials_chunks").ops_per_sec >= 3.0);
        assert_eq!(
            get("bootstrap/forge_detection_misses").ops_per_sec,
            0.0,
            "every forged chunk is rejected at its exact index"
        );
    }

    /// The sharding acceptance gate, on the quick suite: all sixteen
    /// scaling rows exist under their canonical `_wire200us` names, the
    /// 4-shard trusted figure is at least 2× the same-run 1-shard figure,
    /// the one-deviating-shard run is caught within the k-bound, and the
    /// honest shards raise zero false alarms.
    #[test]
    fn sharding_suite_scales_and_detects() {
        let probes = sharding_suite(true);
        let get = |name: &str| {
            probes
                .iter()
                .find(|p| p.name == name)
                .unwrap_or_else(|| panic!("missing probe {name}"))
                .ops_per_sec
        };
        for n in [1, 2, 4, 8] {
            for proto in ["trusted", "protocol-2"] {
                let v = get(&format!(
                    "sharding/{proto}_{n}shards_8clients_10pct_updates_wire200us"
                ));
                assert!(v.is_finite() && v > 0.0, "{proto}/{n}: {v}");
            }
        }
        let t1 = get("sharding/trusted_1shards_8clients_10pct_updates_wire200us");
        let t4 = get("sharding/trusted_4shards_8clients_10pct_updates_wire200us");
        assert!(
            t4 >= 2.0 * t1,
            "4-shard trusted {t4:.0} ops/s < 2x the same-run 1-shard {t1:.0}"
        );
        let gap = get("sharding/fork_1of4_detection_gap_ops");
        assert!(gap <= 16.0, "detection gap {gap} exceeds the k-bound");
        assert_eq!(
            get("sharding/fork_1of4_false_alarms"),
            0.0,
            "an honest shard alarmed"
        );
    }

    #[test]
    fn instrumented_probe_counts_every_op() {
        let (probe, metrics) = instrumented_throughput(2, 50, 10);
        assert!(probe.name.ends_with("_instrumented"));
        let reads = metrics.counter("net.server.reads_served").unwrap_or(0);
        let ops = metrics.counter("net.server.ops_served").unwrap_or(0);
        // Every one of the 100 worker ops lands on exactly one path.
        assert_eq!(reads + ops, 100, "reads={reads} ops={ops}");
    }
}
