//! Focused performance probes for the hot paths this repository optimizes
//! across PRs: proof generation, crash snapshots, and mixed read/write
//! throughput. `expgen` runs these and records the numbers in
//! `BENCH_results.json` so the perf trajectory is tracked per PR.

use std::time::Instant;

use tcvs_core::{ProtocolConfig, ProtocolKind, ServerCore};
use tcvs_merkle::{apply_op, prune_for_op, u64_key, MerkleTree, Op, VerificationObject};
use tcvs_net::run_throughput;

/// One probe's outcome: throughput plus optional proof-size and latency
/// quantiles (probes that don't measure them leave `None`).
#[derive(Clone, Debug)]
pub struct PerfResult {
    /// Probe name (stable key in `BENCH_results.json`).
    pub name: String,
    /// Operations per second.
    pub ops_per_sec: f64,
    /// Mean verification-object size in bytes, if the probe builds proofs.
    pub proof_bytes: Option<f64>,
    /// Median per-op latency in microseconds, if measured per-op.
    pub p50_us: Option<f64>,
    /// 99th-percentile per-op latency in microseconds, if measured per-op.
    pub p99_us: Option<f64>,
}

fn quantile(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx] as f64 / 1e3
}

/// Point-update proof generation on a tree of `n` entries: per iteration the
/// server builds the verification object for a `Put`, applies it, and reads
/// the new root — the §4.1 hot path every protocol bottlenecks on.
pub fn point_update_proof_gen(n: u64, order: usize, value_len: usize, iters: u64) -> PerfResult {
    let mut tree = MerkleTree::with_order(order);
    for i in 0..n {
        tree.insert(u64_key(i), vec![0xAB; value_len])
            .expect("full tree");
    }
    let mut proof_bytes = 0u64;
    let mut lat = Vec::with_capacity(iters as usize);
    let started = Instant::now();
    for i in 0..iters {
        // Spread updates across the key space deterministically.
        let op = Op::Put(u64_key((i * 7919) % n), vec![(i % 251) as u8; value_len]);
        let t = Instant::now();
        let vo = VerificationObject::new(prune_for_op(&tree, &op));
        apply_op(&mut tree, &op).expect("full tree");
        std::hint::black_box(tree.root_digest());
        lat.push(t.elapsed().as_nanos() as u64);
        proof_bytes += vo.encoded_size() as u64;
    }
    let elapsed = started.elapsed().as_secs_f64();
    lat.sort_unstable();
    PerfResult {
        name: format!("point_update_proof_gen/n{n}_order{order}_val{value_len}"),
        ops_per_sec: iters as f64 / elapsed.max(1e-9),
        proof_bytes: Some(proof_bytes as f64 / iters as f64),
        p50_us: Some(quantile(&lat, 0.5)),
        p99_us: Some(quantile(&lat, 0.99)),
    }
}

/// Read-heavy mixed throughput: `clients` threads against one server,
/// `update_pct`% updates (the acceptance mix is 90/10 reads/writes).
pub fn mixed_throughput(
    protocol: ProtocolKind,
    clients: u32,
    ops_per_client: u64,
    update_pct: u32,
) -> PerfResult {
    let config = ProtocolConfig {
        order: 16,
        k: u64::MAX,
        epoch_len: 1 << 30,
    };
    let r = run_throughput(protocol, clients, ops_per_client, update_pct, &config);
    let mut lat = r.latencies_ns.clone();
    lat.sort_unstable();
    PerfResult {
        name: format!(
            "throughput/{}_{}clients_{}pct_updates",
            protocol.label(),
            clients,
            update_pct
        ),
        ops_per_sec: r.ops_per_sec(),
        proof_bytes: None,
        p50_us: Some(quantile(&lat, 0.5)),
        p99_us: Some(quantile(&lat, 0.99)),
    }
}

/// Crash-snapshot capture cost on a database of `n` entries: captures per
/// second (the higher, the cheaper a capture; an O(1) capture stays flat as
/// `n` grows).
pub fn crash_snapshot_capture(n: u64, iters: u64) -> PerfResult {
    let config = ProtocolConfig {
        order: 16,
        k: u64::MAX,
        epoch_len: 1 << 30,
    };
    let mut core = ServerCore::new(&config);
    for i in 0..n {
        core.process(0, &Op::Put(u64_key(i), vec![0xCD; 24]), i);
    }
    let started = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(core.crash_snapshot());
    }
    let elapsed = started.elapsed().as_secs_f64();
    PerfResult {
        name: format!("crash_snapshot_capture/n{n}"),
        ops_per_sec: iters as f64 / elapsed.max(1e-9),
        proof_bytes: None,
        p50_us: None,
        p99_us: None,
    }
}

/// The standard probe suite; `quick` shrinks sizes for CI smoke runs.
pub fn run_suite(quick: bool) -> Vec<PerfResult> {
    let (n, iters) = if quick {
        (1 << 12, 400)
    } else {
        (1 << 14, 2000)
    };
    let (clients, ops) = if quick { (4, 100) } else { (4, 500) };
    let snap_iters = if quick { 50 } else { 200 };
    vec![
        point_update_proof_gen(n, 16, 24, iters),
        point_update_proof_gen(n, 16, 256, iters),
        mixed_throughput(ProtocolKind::Trusted, clients, ops, 10),
        mixed_throughput(ProtocolKind::Two, clients, ops, 10),
        mixed_throughput(ProtocolKind::Two, clients, ops, 90),
        crash_snapshot_capture(n, snap_iters),
        crash_snapshot_capture(n * 4, snap_iters),
    ]
}
