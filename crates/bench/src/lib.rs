//! # tcvs-bench
//!
//! The experiment harness: every table and figure of the paper's argument,
//! regenerated as code. Run `cargo run -p tcvs-bench --bin expgen --release`
//! for the full suite, or `expgen e3 --quick` for one experiment.
//!
//! | id | paper artifact | claim reproduced |
//! |----|----------------|------------------|
//! | E1 | Fig. 2 / §4.1 | verification objects are O(log n) |
//! | E2 | Thms. 4.1-4.3 | per-op overhead constants (c-workload preservation) |
//! | E3 | Fig. 1 / Thm. 3.1 | partition attack: impossible without, k-bounded with, external comm |
//! | E4 | Fig. 3 / Lemma 4.1 | untagged XOR is unsound; user tags fix it |
//! | E5 | Fig. 4 / Thm. 4.3 | Protocol III detects within 2 epochs |
//! | E6 | §4.3 motivation | Protocol I's blocking step costs throughput |
//! | E7 | §2.2.3 | token-ring strawman violates workload preservation |
//! | E8 | §4.2 PKI assumption | hash/signature substrate costs |
//! | E9 | §1 | end-to-end CVS overhead of trusting nothing |
//! | E10 | §2.2.1 | detection matrix across adversaries × protocols |
//! | E11 | Thms. 4.1/4.3 | measured detection latency vs theoretical bounds |
//! | E12 | §2.1 model | seeded runs export byte-identical trace/metric artifacts |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod durability;
pub mod experiments;
pub mod forensics;
pub mod json;
pub mod perf;
pub mod results;
pub mod table;

pub use table::Table;
