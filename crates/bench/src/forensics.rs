//! Forensics benchmarks — what deviation evidence *costs*.
//!
//! Three claims the evidence-bundle subsystem makes, measured:
//!
//! 1. **Capture is cheap when it fires.** Sealing a cross-shard
//!    localization bundle (the most expensive capture site: sync shares,
//!    grove sample, and both users' transition logs) is a one-shot cost
//!    paid only after a deviation verdict — the `capture_*` rows record
//!    seals/second and sealed-artifact bytes.
//! 2. **Cold audit scales with history size.** `tcvs-audit` re-verifies
//!    every signature, hash chain, and transition log in the bundle; the
//!    `audit_verify_*` rows track verifications/second as the captured
//!    transition history grows with the database run length.
//! 3. **Capture is free when it doesn't fire.** An armed client (logging
//!    on, evidence seed set) on an honest server must match the dark
//!    client's throughput: the `honest_*` rows record both, and the
//!    `honest_instrumented_ratio` row records instrumented/dark (gated
//!    ≥ 0.95 by the forensics tests and the CI audit-smoke job).

use std::time::Instant;

use tcvs_core::adversary::{ForkServer, LieServer, Trigger};
use tcvs_core::{
    audit_bytes, EvidenceBundle, HonestServer, Op, ProtocolConfig, ServerApi, SyncShare,
};
use tcvs_merkle::{u64_key, MerkleTree};
use tcvs_net::{NetClient2, NetServer, NetServerOptions, NetStats, ShardedClient2, ShardedServer};

use crate::perf::PerfResult;

fn config() -> ProtocolConfig {
    ProtocolConfig {
        order: 8,
        k: 1 << 20,
        epoch_len: 1 << 30,
    }
}

fn row(name: String, ops_per_sec: f64, proof_bytes: Option<f64>) -> PerfResult {
    PerfResult {
        name,
        ops_per_sec,
        proof_bytes,
        p50_us: None,
        p99_us: None,
        p999_us: None,
    }
}

/// Drives a 1-of-4-shard fork to a failed sync-up and returns everything a
/// capture needs: the localizing client, the grafted second user's log, and
/// the per-shard shares. Shard 3 is the forked one (the routing of the
/// even/odd key split gives both users a healthy op count there).
pub struct ForkScenario {
    grove: ShardedServer,
    alice: ShardedClient2,
    bob: ShardedClient2,
    per_shard: Vec<Vec<SyncShare>>,
    /// The shard running the forking server.
    pub bad_shard: usize,
    /// The counter at which that shard forked.
    pub fork_at: u64,
}

impl ForkScenario {
    /// Runs the seeded fork attack to the point where sync-up has failed
    /// and localization names exactly one shard.
    pub fn drive(n_ops: u64) -> ForkScenario {
        const FORK_AT: u64 = 5;
        let cfg = config();
        let n = 4;
        let bad_shard = 3;
        let inners: Vec<Box<dyn ServerApi + Send>> = (0..n)
            .map(|i| -> Box<dyn ServerApi + Send> {
                if i == bad_shard {
                    Box::new(ForkServer::new(&cfg, Trigger::AtCtr(FORK_AT), &[0]))
                } else {
                    Box::new(HonestServer::new(&cfg))
                }
            })
            .collect();
        let grove = ShardedServer::spawn_with_servers(
            inners,
            NetServerOptions::default(),
            NetStats::disabled(),
        );
        let r0 = vec![MerkleTree::with_order(cfg.order).root_digest(); n];
        let mut alice = ShardedClient2::new(0, &r0, cfg, &grove);
        let mut bob = ShardedClient2::new(1, &r0, cfg, &grove);
        alice.enable_logging();
        bob.enable_logging();
        for i in 0..n_ops {
            alice
                .execute(&Op::Put(u64_key(2 * i), vec![1]))
                .expect("branch A self-consistent");
            bob.execute(&Op::Put(u64_key(2 * i + 1), vec![2]))
                .expect("branch B self-consistent");
        }
        let a = alice.sync_shares();
        let b = bob.sync_shares();
        let per_shard: Vec<Vec<SyncShare>> =
            (0..n).map(|i| vec![a[i].clone(), b[i].clone()]).collect();
        assert!(!alice.sync_succeeds(&per_shard), "the fork fails sync-up");
        ForkScenario {
            grove,
            alice,
            bob,
            per_shard,
            bad_shard,
            fork_at: FORK_AT,
        }
    }

    /// Seals one localization bundle (alice's view plus bob's grafted log
    /// for the deviating shard) — the exact capture the sync-up harness
    /// performs.
    pub fn seal(&self, seed: u64) -> EvidenceBundle {
        let builder = self
            .alice
            .localization_evidence(seed, &self.per_shard, None)
            .expect("localization fired");
        let bob = self.bob.client(self.bad_shard);
        let bob_log = bob.transition_log().expect("logging enabled");
        builder
            .transition_log(self.bad_shard, bob.user(), bob_log)
            .build()
    }

    /// Shuts the grove down.
    pub fn shutdown(self) {
        self.grove.shutdown();
    }
}

/// Runs a lying server until the per-op verdict fires at `detect_at` and
/// returns the sealed per-op bundle (transition log of `detect_at` ops).
fn per_op_bundle(detect_at: u64) -> EvidenceBundle {
    let cfg = config();
    let server = NetServer::spawn(
        Box::new(LieServer::new(&cfg, Trigger::AtCtr(detect_at))),
        false,
    );
    let root0 = MerkleTree::with_order(cfg.order).root_digest();
    let mut c = NetClient2::new(0, &root0, cfg, &server);
    c.enable_logging();
    c.set_evidence_seed(detect_at);
    let mut caught = false;
    for i in 0..=detect_at {
        if c.execute(&Op::Put(u64_key(i), vec![i as u8])).is_err() {
            caught = true;
            break;
        }
    }
    assert!(caught, "the lie at ctr {detect_at} went undetected");
    let bundle = c.take_evidence().expect("rejection captured evidence");
    server.shutdown();
    bundle
}

/// Honest-path throughput with and without the forensics instrumentation
/// armed. Returns `(dark_ops_per_sec, instrumented_ops_per_sec)`.
fn honest_throughput(n_ops: u64) -> (f64, f64) {
    let cfg = config();
    let run = |armed: bool| -> f64 {
        let server = NetServer::spawn(Box::new(HonestServer::new(&cfg)), false);
        let root0 = MerkleTree::with_order(cfg.order).root_digest();
        let mut c = NetClient2::new(0, &root0, cfg, &server);
        if armed {
            c.enable_logging();
            c.set_evidence_seed(1);
        }
        let started = Instant::now();
        for i in 0..n_ops {
            c.execute(&Op::Put(u64_key(i % 64), vec![i as u8]))
                .expect("honest server");
        }
        let secs = started.elapsed().as_secs_f64().max(1e-9);
        assert!(c.take_evidence().is_none(), "honest run captured evidence");
        server.shutdown();
        n_ops as f64 / secs
    };
    // Interleave a warmup of each shape so neither ordering is favoured.
    let _ = run(false);
    let _ = run(true);
    (run(false), run(true))
}

/// The forensics probe suite: capture cost, cold-audit verify rate vs
/// history size, and the honest-path instrumented/dark throughput ratio.
pub fn forensics_suite(quick: bool) -> Vec<PerfResult> {
    let mut probes = Vec::new();

    // 1. Localization capture cost (seals/second, sealed bytes).
    let scenario = ForkScenario::drive(if quick { 24 } else { 48 });
    let seal_rounds: u64 = if quick { 20 } else { 100 };
    let bytes = scenario.seal(0).to_bytes();
    let started = Instant::now();
    for seed in 0..seal_rounds {
        let b = scenario.seal(seed);
        assert_eq!(b.claimed_deviating_shards, vec![scenario.bad_shard as u32]);
    }
    let secs = started.elapsed().as_secs_f64().max(1e-9);
    probes.push(row(
        "forensics/capture_localization_bundle".into(),
        seal_rounds as f64 / secs,
        Some(bytes.len() as f64),
    ));
    scenario.shutdown();

    // 2. Cold audit rate vs captured history size.
    let sizes: &[u64] = if quick {
        &[16, 64]
    } else {
        &[16, 64, 256, 1024]
    };
    let audit_rounds: u64 = if quick { 20 } else { 100 };
    for &n in sizes {
        let bytes = per_op_bundle(n).to_bytes();
        let started = Instant::now();
        for _ in 0..audit_rounds {
            let report = audit_bytes(&bytes);
            assert!(report.accepted, "{:?}", report.rejection);
        }
        let secs = started.elapsed().as_secs_f64().max(1e-9);
        probes.push(row(
            format!("forensics/audit_verify_{n}ops"),
            audit_rounds as f64 / secs,
            Some(bytes.len() as f64),
        ));
    }

    // 3. Honest-path overhead of armed instrumentation.
    let (dark, instrumented) = honest_throughput(if quick { 400 } else { 4000 });
    probes.push(row("forensics/honest_dark_ops".into(), dark, None));
    probes.push(row(
        "forensics/honest_instrumented_ops".into(),
        instrumented,
        None,
    ));
    probes.push(row(
        "forensics/honest_instrumented_ratio".into(),
        instrumented / dark.max(1e-9),
        None,
    ));
    probes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_produces_the_expected_probe_family() {
        let probes = forensics_suite(true);
        let names: Vec<&str> = probes.iter().map(|p| p.name.as_str()).collect();
        assert!(names.contains(&"forensics/capture_localization_bundle"));
        assert!(names.contains(&"forensics/audit_verify_16ops"));
        assert!(names.contains(&"forensics/honest_instrumented_ratio"));
        for p in &probes {
            assert!(
                p.ops_per_sec.is_finite() && p.ops_per_sec > 0.0,
                "{}",
                p.name
            );
        }
    }

    #[test]
    fn sealed_scenario_bundle_audits_cold_and_names_the_shard() {
        let scenario = ForkScenario::drive(24);
        let bundle = scenario.seal(42);
        let report = audit_bytes(&bundle.to_bytes());
        assert!(report.accepted, "{:?}", report.rejection);
        assert!(report.confirmed);
        assert_eq!(report.deviating_shards, vec![scenario.bad_shard as u32]);
        let culprit = report.culprit.expect("logs pin the fork");
        assert_eq!(culprit.shard, scenario.bad_shard as u32);
        assert_eq!(culprit.at_ctr, scenario.fork_at);
        scenario.shutdown();
    }
}
