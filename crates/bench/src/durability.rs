//! Durability probes: what the write-ahead log costs on the commit path
//! and what recovery costs after a crash.
//!
//! Four numbers are tracked per PR in `BENCH_results.json`'s
//! `"durability"` section:
//!
//! * `commit_mem` — end-to-end op throughput through [`DurableServer`]
//!   over the in-memory medium: framing + checksumming + journal
//!   mirroring, with the physical disk out of the picture.
//! * `commit_file` — the same rig over [`FileMedium`] with a real `fsync`
//!   per commit; the gap to `commit_mem` is the price of the disk.
//! * `recovery_replay` — records replayed per second when recovering a
//!   checkpoint-free log: the worst-case restart path.
//! * `checkpoint` — checkpoints captured per second on a populated store;
//!   bounds how aggressively `checkpoint_every` can be dialed down.

use std::time::Instant;

use tcvs_core::ProtocolConfig;
use tcvs_merkle::{u64_key, Op};
use tcvs_storage::{
    DurabilityOptions, DurableOptions, DurableServer, DurableStorage, FileMedium, Medium,
    MemMedium, StorageObs,
};

use crate::perf::PerfResult;

fn config() -> ProtocolConfig {
    ProtocolConfig {
        order: 16,
        k: u64::MAX,
        epoch_len: 1 << 30,
    }
}

/// The deterministic op stream every probe applies: op index → op.
fn scripted(j: u64) -> Op {
    match j % 4 {
        0 | 2 => Op::Put(u64_key(j % 1024), vec![(j % 251) as u8; 24]),
        1 => Op::Get(u64_key((j + 13) % 1024)),
        _ => Op::Delete(u64_key((j + 7) % 1024)),
    }
}

fn open_server<M: Medium>(medium: M, checkpoint_every: u64) -> DurableServer<DurableStorage<M>> {
    let store = DurableStorage::open(medium, DurableOptions::default());
    DurableServer::open(
        store,
        config(),
        DurabilityOptions {
            checkpoint_every,
            ..DurabilityOptions::default()
        },
        StorageObs::disabled(),
    )
    .expect("open durable server")
}

fn quantile(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx] as f64 / 1e3
}

fn commit_probe<M: Medium>(label: &str, medium: M, ops: u64) -> PerfResult {
    let mut server = open_server(medium, 256);
    let mut lat = Vec::with_capacity(ops as usize);
    let started = Instant::now();
    for j in 0..ops {
        let t = Instant::now();
        server.apply(0, j, &scripted(j), j).expect("durable commit");
        lat.push(t.elapsed().as_nanos() as u64);
    }
    let elapsed = started.elapsed().as_secs_f64();
    lat.sort_unstable();
    PerfResult {
        name: format!("durability/commit_{label}_n{ops}"),
        ops_per_sec: ops as f64 / elapsed.max(1e-9),
        proof_bytes: None,
        p50_us: Some(quantile(&lat, 0.5)),
        p99_us: Some(quantile(&lat, 0.99)),
        p999_us: Some(quantile(&lat, 0.999)),
    }
}

/// Durable commit throughput over the in-memory medium.
pub fn durable_commit_mem(ops: u64) -> PerfResult {
    commit_probe("mem", MemMedium::new(), ops)
}

/// Durable commit throughput over the filesystem (one `fsync` per commit).
/// The probe directory lives under the OS temp dir and is removed after.
pub fn durable_commit_file(ops: u64) -> PerfResult {
    let dir = std::env::temp_dir().join(format!("tcvs-bench-durability-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let medium = FileMedium::open(&dir).expect("temp probe dir");
    let result = commit_probe("file", medium, ops);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

/// Recovery replay rate: `ops` records committed with checkpoints disabled,
/// then the whole log replayed from genesis `iters` times.
pub fn recovery_replay(ops: u64, iters: u64) -> PerfResult {
    let medium = MemMedium::new();
    {
        let mut server = open_server(medium.clone(), 0);
        for j in 0..ops {
            server.apply(0, j, &scripted(j), j).expect("seed commit");
        }
    }
    let started = Instant::now();
    for _ in 0..iters {
        let server = open_server(medium.clone(), 0);
        assert_eq!(server.last_recovery().records_replayed, ops);
        std::hint::black_box(server.core().root_digest());
    }
    let elapsed = started.elapsed().as_secs_f64();
    PerfResult {
        name: format!("durability/recovery_replay_n{ops}"),
        ops_per_sec: (ops * iters) as f64 / elapsed.max(1e-9),
        proof_bytes: None,
        p50_us: None,
        p99_us: None,
        p999_us: None,
    }
}

/// Checkpoint capture rate on a store holding `ops` committed operations.
pub fn checkpoint_cost(ops: u64, iters: u64) -> PerfResult {
    let mut server = open_server(MemMedium::new(), 0);
    for j in 0..ops {
        server.apply(0, j, &scripted(j), j).expect("seed commit");
    }
    let started = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(server.checkpoint_now().expect("checkpoint"));
    }
    let elapsed = started.elapsed().as_secs_f64();
    PerfResult {
        name: format!("durability/checkpoint_n{ops}"),
        ops_per_sec: iters as f64 / elapsed.max(1e-9),
        proof_bytes: None,
        p50_us: None,
        p99_us: None,
        p999_us: None,
    }
}

/// The durability probe suite; `quick` shrinks sizes for CI smoke runs.
pub fn run_durability_suite(quick: bool) -> Vec<PerfResult> {
    let (ops, iters) = if quick { (500, 5) } else { (4000, 25) };
    vec![
        durable_commit_mem(ops),
        durable_commit_file(if quick { 200 } else { 1000 }),
        recovery_replay(ops, iters),
        checkpoint_cost(ops, iters.max(20)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_produces_finite_numbers() {
        for p in run_durability_suite(true) {
            assert!(p.name.starts_with("durability/"), "{}", p.name);
            assert!(
                p.ops_per_sec.is_finite() && p.ops_per_sec > 0.0,
                "{}: {}",
                p.name,
                p.ops_per_sec
            );
        }
    }
}
