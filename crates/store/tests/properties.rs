//! Property tests for the versioning substrate: diff/patch round trips on
//! arbitrary line sequences and full-history reconstruction.

use proptest::prelude::*;
use tcvs_store::{apply, diff, FileHistory, RevMeta};

fn line_strategy() -> impl Strategy<Value = String> {
    // A small alphabet maximizes repeated lines, the hard case for diffs.
    proptest::collection::vec(prop_oneof![Just('a'), Just('b'), Just('x')], 0..4)
        .prop_map(|cs| cs.into_iter().collect())
}

fn file_strategy() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(line_strategy(), 0..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `patch(a, diff(a, b)) == b` for arbitrary line files.
    #[test]
    fn diff_patch_round_trip(a in file_strategy(), b in file_strategy()) {
        let script = diff(&a, &b);
        prop_assert_eq!(apply(&a, &script).unwrap(), b);
    }

    /// The edit script never claims more copied lines than the base has.
    #[test]
    fn diff_copies_are_in_bounds(a in file_strategy(), b in file_strategy()) {
        for op in diff(&a, &b) {
            if let tcvs_store::DiffOp::Copy { base_start, len } = op {
                prop_assert!(base_start + len <= a.len());
            }
        }
    }

    /// A reverse-delta chain reconstructs every revision exactly, and
    /// survives a serialization round trip.
    #[test]
    fn history_reconstructs_all_revisions(
        versions in proptest::collection::vec(file_strategy(), 1..12),
    ) {
        let meta = |i: u64| RevMeta {
            author: format!("user{}", i % 3),
            message: format!("commit {i}"),
            stamp: i,
        };
        let mut h = FileHistory::create(versions[0].clone(), meta(0));
        for (i, v) in versions.iter().enumerate().skip(1) {
            h.commit(v.clone(), meta(i as u64));
        }
        prop_assert_eq!(h.head_rev() as usize, versions.len());
        for (i, v) in versions.iter().enumerate() {
            prop_assert_eq!(&h.content_at(i as u32 + 1).unwrap(), v);
        }
        let back = FileHistory::from_bytes(&h.to_bytes()).unwrap();
        prop_assert_eq!(back, h);
    }

    /// Diffing a file against itself yields a script with zero insertions
    /// (pure copy) — the minimality sanity floor.
    #[test]
    fn self_diff_is_pure_copy(a in file_strategy()) {
        let script = diff(&a, &a);
        prop_assert_eq!(tcvs_store::inserted_lines(&script), 0);
        prop_assert_eq!(apply(&a, &script).unwrap(), a);
    }
}
