//! Adversarial-input properties for the `enc` framing primitives.
//!
//! The encoder/decoder pair sits under every persisted byte in the
//! workspace (revision chains, log records, checkpoints), so it must be
//! total on arbitrary input: truncation at any byte boundary yields a
//! typed [`DecodeError::Truncated`] with an honest offset, bit flips and
//! splices never panic, and whatever *does* decode under damage is never
//! silently wrong about where it stands in the buffer.

use proptest::prelude::*;
use tcvs_store::enc::{DecodeError, Reader, Writer};

/// A value script both sides agree on, so one buffer exercises every
/// primitive in a round-trip.
#[derive(Clone, Debug)]
enum Item {
    U8(u8),
    U32(u32),
    U64(u64),
    Bytes(Vec<u8>),
    Str(String),
}

fn item_strategy() -> impl Strategy<Value = Item> {
    prop_oneof![
        any::<u8>().prop_map(Item::U8),
        any::<u32>().prop_map(Item::U32),
        any::<u64>().prop_map(Item::U64),
        proptest::collection::vec(any::<u8>(), 0..24).prop_map(Item::Bytes),
        proptest::collection::vec(any::<u8>(), 0..16)
            .prop_map(|bs| Item::Str(bs.iter().map(|b| (b'a' + b % 26) as char).collect())),
    ]
}

fn encode(items: &[Item]) -> Vec<u8> {
    let mut w = Writer::new();
    for it in items {
        match it {
            Item::U8(v) => w.u8(*v),
            Item::U32(v) => w.u32(*v),
            Item::U64(v) => w.u64(*v),
            Item::Bytes(v) => w.bytes(v),
            Item::Str(v) => w.string(v),
        }
    }
    w.into_bytes()
}

/// Decodes the script against a buffer; returns how many items decoded
/// before the first error (and the error).
fn decode(items: &[Item], buf: &[u8]) -> (usize, Option<DecodeError>) {
    let mut r = Reader::new(buf);
    for (i, it) in items.iter().enumerate() {
        let res: Result<(), DecodeError> = match it {
            Item::U8(_) => r.u8().map(drop),
            Item::U32(_) => r.u32().map(drop),
            Item::U64(_) => r.u64().map(drop),
            Item::Bytes(_) => r.bytes().map(drop),
            Item::Str(_) => r.string().map(drop),
        };
        if let Err(e) = res {
            return (i, Some(e));
        }
    }
    (items.len(), r.finish().err())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Untouched buffers round-trip every item and finish clean.
    #[test]
    fn full_buffers_round_trip(items in proptest::collection::vec(item_strategy(), 0..12)) {
        let buf = encode(&items);
        let (decoded, err) = decode(&items, &buf);
        prop_assert_eq!(decoded, items.len());
        prop_assert!(err.is_none(), "{:?}", err);
    }

    /// Truncation at EVERY byte boundary: never a panic, and every failure
    /// is a `Truncated` whose offset is inside the cut buffer and whose
    /// `needed` points past the cut — or, for a cut that severs a length
    /// prefix, an honest smaller-than-advertised read.
    #[test]
    fn truncation_at_every_boundary_is_typed(
        items in proptest::collection::vec(item_strategy(), 1..10)
    ) {
        let buf = encode(&items);
        for cut in 0..buf.len() {
            let (decoded, err) = decode(&items, &buf[..cut]);
            // A strict prefix can't satisfy the whole script AND finish.
            prop_assert!(
                decoded < items.len() || err.is_some(),
                "cut={cut}: decode of a strict prefix succeeded cleanly"
            );
            if let Some(DecodeError::Truncated { offset, needed }) = err {
                prop_assert!(offset <= cut, "cut={cut}: offset {offset} beyond buffer");
                prop_assert!(needed > 0, "cut={cut}: zero-byte shortfall reported");
                prop_assert!(
                    offset + needed > cut,
                    "cut={cut}: claimed shortfall {offset}+{needed} fits the buffer"
                );
            }
        }
    }

    /// A single flipped bit anywhere: never a panic. (The enc layer has no
    /// checksums — integrity is the log framing's job — so a flip may
    /// decode to different values; it must simply never be UB or a crash.)
    #[test]
    fn bit_flips_never_panic(
        items in proptest::collection::vec(item_strategy(), 1..10),
        flip in any::<u32>(),
    ) {
        let mut buf = encode(&items);
        let bit = (flip as usize) % (buf.len() * 8);
        buf[bit / 8] ^= 1 << (bit % 8);
        let _ = decode(&items, &buf);
    }

    /// Spliced buffers (duplicate a slice of the encoding into itself, the
    /// shape of a misdirected block write): never a panic, and a decode
    /// that errors reports an offset within bounds.
    #[test]
    fn duplicate_record_splices_never_panic(
        items in proptest::collection::vec(item_strategy(), 1..8),
        a in any::<u32>(),
        b in any::<u32>(),
    ) {
        let buf = encode(&items);
        let len = buf.len();
        let (a, b) = ((a as usize) % len, (b as usize) % len);
        let (lo, hi) = (a.min(b), a.max(b).max(a.min(b) + 1).min(len));
        let mut spliced = Vec::with_capacity(len + hi - lo);
        spliced.extend_from_slice(&buf[..hi]);
        spliced.extend_from_slice(&buf[lo..hi]); // the duplicate
        spliced.extend_from_slice(&buf[hi..]);
        let (_, err) = decode(&items, &spliced);
        if let Some(DecodeError::Truncated { offset, .. }) = err {
            prop_assert!(offset <= spliced.len());
        }
    }

    /// Pure garbage: reading any script off random bytes never panics.
    #[test]
    fn arbitrary_garbage_never_panics(
        items in proptest::collection::vec(item_strategy(), 0..8),
        garbage in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let _ = decode(&items, &garbage);
    }
}

/// The exact offsets, pinned (not property-based, so a regression names
/// the byte).
#[test]
fn truncated_offsets_are_exact() {
    let mut w = Writer::new();
    w.u32(7); // bytes 0..4
    w.bytes(b"abcdef"); // u64 len at 4..12, payload at 12..18
    let buf = w.into_bytes();

    // Cut inside the payload: the reader is at offset 12 and needs 6.
    let mut r = Reader::new(&buf[..14]);
    r.u32().unwrap();
    match r.bytes() {
        Err(DecodeError::Truncated { offset, needed }) => {
            assert_eq!((offset, needed), (12, 6));
        }
        other => panic!("wanted Truncated, got {other:?}"),
    }

    // Cut inside the length prefix itself: offset 4, needing its 8 bytes.
    let mut r = Reader::new(&buf[..6]);
    r.u32().unwrap();
    match r.bytes() {
        Err(DecodeError::Truncated { offset, needed }) => {
            assert_eq!((offset, needed), (4, 8));
        }
        other => panic!("wanted Truncated, got {other:?}"),
    }
}
