//! Applying edit scripts produced by [`mod@crate::diff`].

use std::fmt;

use crate::diff::{DiffOp, EditScript};

/// Errors from applying a malformed or mismatched edit script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatchError {
    /// A copy op referenced lines beyond the base sequence.
    CopyOutOfRange {
        /// Requested start line.
        start: usize,
        /// Requested length.
        len: usize,
        /// Base sequence length.
        base_len: usize,
    },
}

impl fmt::Display for PatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatchError::CopyOutOfRange {
                start,
                len,
                base_len,
            } => write!(
                f,
                "copy [{start}, {}) out of range for base of {base_len} lines",
                start + len
            ),
        }
    }
}

impl std::error::Error for PatchError {}

/// Applies `script` to `base`, producing the target sequence.
pub fn apply(base: &[String], script: &EditScript) -> Result<Vec<String>, PatchError> {
    let mut out = Vec::new();
    for op in script {
        match op {
            DiffOp::Copy { base_start, len } => {
                let end = base_start.checked_add(*len).filter(|&e| e <= base.len());
                match end {
                    Some(end) => out.extend_from_slice(&base[*base_start..end]),
                    None => {
                        return Err(PatchError::CopyOutOfRange {
                            start: *base_start,
                            len: *len,
                            base_len: base.len(),
                        })
                    }
                }
            }
            DiffOp::Insert(lines) => out.extend_from_slice(lines),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::diff;

    fn lines(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn apply_round_trip() {
        let a = lines(&["one", "two", "three", "four"]);
        let b = lines(&["one", "2", "three", "four", "five"]);
        assert_eq!(apply(&a, &diff(&a, &b)).unwrap(), b);
    }

    #[test]
    fn out_of_range_copy_rejected() {
        let a = lines(&["only"]);
        let script = vec![DiffOp::Copy {
            base_start: 0,
            len: 5,
        }];
        assert_eq!(
            apply(&a, &script),
            Err(PatchError::CopyOutOfRange {
                start: 0,
                len: 5,
                base_len: 1
            })
        );
    }

    #[test]
    fn overflowing_copy_rejected() {
        let a = lines(&["x"]);
        let script = vec![DiffOp::Copy {
            base_start: usize::MAX,
            len: 2,
        }];
        assert!(apply(&a, &script).is_err());
    }

    #[test]
    fn empty_script_yields_empty() {
        let a = lines(&["a", "b"]);
        assert_eq!(apply(&a, &vec![]).unwrap(), Vec::<String>::new());
    }
}
