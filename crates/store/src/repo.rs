//! A plain (unauthenticated) CVS-style repository: the trusted baseline.
//!
//! This is what a conventional CVS server keeps on disk: per-file revision
//! histories plus a global commit log. `tcvs-cvs` maps the same model onto
//! the *authenticated* database; benchmarks compare the two (experiment E9).

use std::collections::BTreeMap;

use crate::revision::{FileHistory, HistoryError, RevMeta, RevNo};

/// A repository-wide commit identifier (1-based, dense).
pub type CommitId = u64;

/// One entry of the global commit log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommitRecord {
    /// Dense commit id.
    pub id: CommitId,
    /// Committing user.
    pub author: String,
    /// Commit message.
    pub message: String,
    /// Logical timestamp.
    pub stamp: u64,
    /// Files changed: `(path, new revision)`.
    pub files: Vec<(String, RevNo)>,
}

/// Errors from repository operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepoError {
    /// Path not present in the repository.
    NoSuchFile(String),
    /// Underlying history failure.
    History(HistoryError),
    /// A commit listed no files.
    EmptyCommit,
}

impl std::fmt::Display for RepoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RepoError::NoSuchFile(p) => write!(f, "no such file: {p}"),
            RepoError::History(e) => write!(f, "history error: {e}"),
            RepoError::EmptyCommit => write!(f, "commit changes no files"),
        }
    }
}

impl std::error::Error for RepoError {}

impl From<HistoryError> for RepoError {
    fn from(e: HistoryError) -> RepoError {
        RepoError::History(e)
    }
}

/// An in-memory CVS repository.
#[derive(Clone, Debug, Default)]
pub struct Repository {
    files: BTreeMap<String, FileHistory>,
    log: Vec<CommitRecord>,
}

impl Repository {
    /// Creates an empty repository.
    pub fn new() -> Repository {
        Repository::default()
    }

    /// Commits a set of file changes atomically; returns the commit id.
    /// Files not previously present are created at revision 1.
    pub fn commit(
        &mut self,
        author: &str,
        message: &str,
        stamp: u64,
        changes: Vec<(String, Vec<String>)>,
    ) -> Result<CommitId, RepoError> {
        if changes.is_empty() {
            return Err(RepoError::EmptyCommit);
        }
        let id = self.log.len() as CommitId + 1;
        let mut touched = Vec::with_capacity(changes.len());
        for (path, content) in changes {
            let meta = RevMeta {
                author: author.to_string(),
                message: message.to_string(),
                stamp,
            };
            let rev = match self.files.get_mut(&path) {
                Some(h) => h.commit(content, meta),
                None => {
                    self.files
                        .insert(path.clone(), FileHistory::create(content, meta));
                    1
                }
            };
            touched.push((path, rev));
        }
        self.log.push(CommitRecord {
            id,
            author: author.to_string(),
            message: message.to_string(),
            stamp,
            files: touched,
        });
        Ok(id)
    }

    /// Head content of `path`.
    pub fn checkout(&self, path: &str) -> Result<&[String], RepoError> {
        self.files
            .get(path)
            .map(|h| h.head_content())
            .ok_or_else(|| RepoError::NoSuchFile(path.to_string()))
    }

    /// Content of `path` at `rev`.
    pub fn checkout_at(&self, path: &str, rev: RevNo) -> Result<Vec<String>, RepoError> {
        let h = self
            .files
            .get(path)
            .ok_or_else(|| RepoError::NoSuchFile(path.to_string()))?;
        Ok(h.content_at(rev)?)
    }

    /// The file's history (for log/annotate).
    pub fn history(&self, path: &str) -> Result<&FileHistory, RepoError> {
        self.files
            .get(path)
            .ok_or_else(|| RepoError::NoSuchFile(path.to_string()))
    }

    /// Global commit log, oldest first.
    pub fn log(&self) -> &[CommitRecord] {
        &self.log
    }

    /// All tracked paths, sorted.
    pub fn paths(&self) -> impl Iterator<Item = &str> {
        self.files.keys().map(String::as_str)
    }

    /// Number of tracked files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn commit_checkout_cycle() {
        let mut r = Repository::new();
        let id = r
            .commit(
                "alice",
                "initial import",
                1,
                vec![
                    ("Common.h".into(), lines(&["#pragma once"])),
                    ("main.c".into(), lines(&["int main(){}"])),
                ],
            )
            .unwrap();
        assert_eq!(id, 1);
        assert_eq!(
            r.checkout("Common.h").unwrap(),
            &lines(&["#pragma once"])[..]
        );
        assert_eq!(r.file_count(), 2);
    }

    #[test]
    fn multi_revision_history() {
        let mut r = Repository::new();
        r.commit("a", "c1", 1, vec![("f".into(), lines(&["v1"]))])
            .unwrap();
        r.commit("b", "c2", 2, vec![("f".into(), lines(&["v2"]))])
            .unwrap();
        r.commit("a", "c3", 3, vec![("f".into(), lines(&["v3"]))])
            .unwrap();
        assert_eq!(r.checkout_at("f", 1).unwrap(), lines(&["v1"]));
        assert_eq!(r.checkout_at("f", 2).unwrap(), lines(&["v2"]));
        assert_eq!(r.checkout("f").unwrap(), &lines(&["v3"])[..]);
        assert_eq!(r.history("f").unwrap().head_rev(), 3);
    }

    #[test]
    fn missing_file_errors() {
        let r = Repository::new();
        assert!(matches!(r.checkout("nope"), Err(RepoError::NoSuchFile(_))));
        assert!(matches!(
            r.checkout_at("nope", 1),
            Err(RepoError::NoSuchFile(_))
        ));
    }

    #[test]
    fn empty_commit_rejected() {
        let mut r = Repository::new();
        assert_eq!(r.commit("a", "m", 1, vec![]), Err(RepoError::EmptyCommit));
        assert!(r.log().is_empty());
    }

    #[test]
    fn log_records_touched_files() {
        let mut r = Repository::new();
        r.commit("a", "c1", 1, vec![("x".into(), lines(&["1"]))])
            .unwrap();
        r.commit(
            "b",
            "c2",
            2,
            vec![("x".into(), lines(&["2"])), ("y".into(), lines(&["1"]))],
        )
        .unwrap();
        let log = r.log();
        assert_eq!(log.len(), 2);
        assert_eq!(
            log[1].files,
            vec![("x".to_string(), 2), ("y".to_string(), 1)]
        );
        assert_eq!(log[1].author, "b");
    }

    #[test]
    fn paths_sorted() {
        let mut r = Repository::new();
        r.commit(
            "a",
            "m",
            1,
            vec![
                ("zebra".into(), lines(&["z"])),
                ("alpha".into(), lines(&["a"])),
            ],
        )
        .unwrap();
        let ps: Vec<&str> = r.paths().collect();
        assert_eq!(ps, vec!["alpha", "zebra"]);
    }
}
