//! # tcvs-store
//!
//! The versioning substrate beneath the CVS front end: Myers line diffs,
//! patch application, RCS-style reverse-delta revision chains, and a plain
//! (unauthenticated) repository model used as the trusted baseline in the
//! end-to-end experiments.
//!
//! ```
//! use tcvs_store::{Repository, to_lines};
//!
//! let mut repo = Repository::new();
//! repo.commit("alice", "import", 1,
//!     vec![("Common.h".into(), to_lines("#pragma once\n"))]).unwrap();
//! repo.commit("bob", "fix", 2,
//!     vec![("Common.h".into(), to_lines("#pragma once\n#define N 4\n"))]).unwrap();
//! assert_eq!(repo.checkout_at("Common.h", 1).unwrap(), to_lines("#pragma once\n"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod diff;
pub mod enc;
pub mod patch;
pub mod repo;
pub mod revision;

pub use diff::{diff, from_lines, inserted_lines, render_unified, to_lines, DiffOp, EditScript};
pub use enc::{DecodeError, Reader, Writer};
pub use patch::{apply, PatchError};
pub use repo::{CommitId, CommitRecord, RepoError, Repository};
pub use revision::{FileHistory, HistoryError, RevMeta, RevNo};
