//! Myers O(ND) diff over line sequences.
//!
//! CVS stores file revisions as line-based deltas; this module computes the
//! minimal edit script between two line sequences using the greedy algorithm
//! of Myers (1986), the same algorithm family GNU diff / RCS use.

/// One operation of an edit script that rewrites `base` into `target`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DiffOp {
    /// Copy `len` lines from `base` starting at `base_start`.
    Copy {
        /// Starting line index in the base sequence.
        base_start: usize,
        /// Number of lines copied.
        len: usize,
    },
    /// Insert these lines.
    Insert(Vec<String>),
}

/// A full edit script: applying the ops in order to `base` yields `target`.
pub type EditScript = Vec<DiffOp>;

/// Computes the shortest edit script turning `base` into `target`.
pub fn diff(base: &[String], target: &[String]) -> EditScript {
    // Trim common prefix/suffix first: cheap and makes the core O(ND) run on
    // the genuinely-different middle, which is tiny for typical commits.
    let mut pre = 0;
    while pre < base.len() && pre < target.len() && base[pre] == target[pre] {
        pre += 1;
    }
    let mut suf = 0;
    while suf < base.len() - pre
        && suf < target.len() - pre
        && base[base.len() - 1 - suf] == target[target.len() - 1 - suf]
    {
        suf += 1;
    }

    let mid_base = &base[pre..base.len() - suf];
    let mid_target = &target[pre..target.len() - suf];
    let trace = myers_moves(mid_base, mid_target);

    let mut script = EditScript::new();
    if pre > 0 {
        script.push(DiffOp::Copy {
            base_start: 0,
            len: pre,
        });
    }
    // Convert the (keep/delete/insert) move list into compact ops, with base
    // indices shifted by the trimmed prefix.
    let mut i = 0; // index into mid_base
    let mut pending_insert: Vec<String> = Vec::new();
    let mut pending_copy: Option<(usize, usize)> = None;
    let flush_copy = |script: &mut EditScript, pc: &mut Option<(usize, usize)>| {
        if let Some((s, l)) = pc.take() {
            script.push(DiffOp::Copy {
                base_start: s,
                len: l,
            });
        }
    };
    let flush_insert = |script: &mut EditScript, pi: &mut Vec<String>| {
        if !pi.is_empty() {
            script.push(DiffOp::Insert(std::mem::take(pi)));
        }
    };
    for mv in trace {
        match mv {
            Move::Keep => {
                flush_insert(&mut script, &mut pending_insert);
                match &mut pending_copy {
                    Some((s, l)) if *s + *l == pre + i => *l += 1,
                    _ => {
                        flush_copy(&mut script, &mut pending_copy);
                        pending_copy = Some((pre + i, 1));
                    }
                }
                i += 1;
            }
            Move::Delete => {
                i += 1;
            }
            Move::Insert(line) => {
                flush_copy(&mut script, &mut pending_copy);
                pending_insert.push(line);
            }
        }
    }
    flush_copy(&mut script, &mut pending_copy);
    flush_insert(&mut script, &mut pending_insert);
    if suf > 0 {
        // Merge with a preceding copy if contiguous.
        let start = base.len() - suf;
        if let Some(DiffOp::Copy { base_start, len }) = script.last_mut() {
            if *base_start + *len == start {
                *len += suf;
                return script;
            }
        }
        script.push(DiffOp::Copy {
            base_start: start,
            len: suf,
        });
    }
    script
}

enum Move {
    Keep,
    Delete,
    Insert(String),
}

/// Core Myers greedy algorithm; returns per-line moves for the middle
/// sections (after common prefix/suffix trimming).
fn myers_moves(a: &[String], b: &[String]) -> Vec<Move> {
    let n = a.len();
    let m = b.len();
    if n == 0 {
        return b.iter().map(|l| Move::Insert(l.clone())).collect();
    }
    if m == 0 {
        return (0..n).map(|_| Move::Delete).collect();
    }

    let max = n + m;
    let offset = max as isize;
    // v[k + offset] = furthest x on diagonal k.
    let mut v = vec![0usize; 2 * max + 1];
    // Trace of v arrays per d, for backtracking.
    let mut trace: Vec<Vec<usize>> = Vec::new();

    'outer: for d in 0..=(max as isize) {
        trace.push(v.clone());
        let mut k = -d;
        while k <= d {
            let ki = (k + offset) as usize;
            let mut x = if k == -d || (k != d && v[ki - 1] < v[ki + 1]) {
                v[ki + 1]
            } else {
                v[ki - 1] + 1
            };
            let mut y = (x as isize - k) as usize;
            while x < n && y < m && a[x] == b[y] {
                x += 1;
                y += 1;
            }
            v[ki] = x;
            if x >= n && y >= m {
                break 'outer;
            }
            k += 2;
        }
    }

    // Backtrack from (n, m).
    let mut moves_rev: Vec<Move> = Vec::new();
    let mut x = n;
    let mut y = m;
    for d in (1..trace.len()).rev() {
        let v = &trace[d];
        let k = x as isize - y as isize;
        let ki = (k + offset) as usize;
        let down = k == -(d as isize) || (k != d as isize && v[ki - 1] < v[ki + 1]);
        let prev_k = if down { k + 1 } else { k - 1 };
        let prev_x = v[(prev_k + offset) as usize];
        let prev_y = (prev_x as isize - prev_k) as usize;
        // Snake (diagonal run of keeps).
        while x > prev_x && y > prev_y && x > 0 && y > 0 {
            moves_rev.push(Move::Keep);
            x -= 1;
            y -= 1;
        }
        if down {
            moves_rev.push(Move::Insert(b[prev_y].clone()));
            y = prev_y;
        } else {
            moves_rev.push(Move::Delete);
            x = prev_x;
        }
    }
    // Leading snake at d = 0.
    while x > 0 && y > 0 {
        moves_rev.push(Move::Keep);
        x -= 1;
        y -= 1;
    }
    debug_assert_eq!(x, 0);
    debug_assert_eq!(y, 0);
    moves_rev.reverse();
    moves_rev
}

/// Number of lines the script inserts (size accounting for delta storage).
pub fn inserted_lines(script: &EditScript) -> usize {
    script
        .iter()
        .map(|op| match op {
            DiffOp::Copy { .. } => 0,
            DiffOp::Insert(lines) => lines.len(),
        })
        .sum()
}

/// Renders a human-readable unified-style diff (used by `cvs diff`).
pub fn render_unified(base: &[String], target: &[String]) -> String {
    let script = diff(base, target);
    let mut out = String::new();
    let mut base_pos = 0usize;
    for op in &script {
        match op {
            DiffOp::Copy { base_start, len } => {
                for line in &base[base_pos..*base_start] {
                    out.push_str("- ");
                    out.push_str(line);
                    out.push('\n');
                }
                for line in &base[*base_start..*base_start + *len] {
                    out.push_str("  ");
                    out.push_str(line);
                    out.push('\n');
                }
                base_pos = base_start + len;
            }
            DiffOp::Insert(lines) => {
                for line in lines {
                    out.push_str("+ ");
                    out.push_str(line);
                    out.push('\n');
                }
            }
        }
    }
    for line in &base[base_pos..] {
        out.push_str("- ");
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Splits text into lines (without terminators) for diffing.
pub fn to_lines(text: &str) -> Vec<String> {
    if text.is_empty() {
        return Vec::new();
    }
    text.lines().map(str::to_string).collect()
}

/// Joins lines back into text with trailing newline per line.
pub fn from_lines(lines: &[String]) -> String {
    let mut s = String::new();
    for l in lines {
        s.push_str(l);
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patch::apply;

    fn lines(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn identical_inputs_one_copy() {
        let a = lines(&["x", "y", "z"]);
        let s = diff(&a, &a);
        assert_eq!(
            s,
            vec![DiffOp::Copy {
                base_start: 0,
                len: 3
            }]
        );
    }

    #[test]
    fn empty_to_full_and_back() {
        let a: Vec<String> = vec![];
        let b = lines(&["new file", "content"]);
        let s = diff(&a, &b);
        assert_eq!(apply(&a, &s).unwrap(), b);
        let s2 = diff(&b, &a);
        assert_eq!(apply(&b, &s2).unwrap(), a);
    }

    #[test]
    fn single_line_change() {
        let a = lines(&["fn main() {", "    old();", "}"]);
        let b = lines(&["fn main() {", "    new();", "}"]);
        let s = diff(&a, &b);
        assert_eq!(apply(&a, &s).unwrap(), b);
        assert_eq!(inserted_lines(&s), 1);
    }

    #[test]
    fn insertion_in_middle() {
        let a = lines(&["a", "b", "c"]);
        let b = lines(&["a", "b", "b2", "c"]);
        let s = diff(&a, &b);
        assert_eq!(apply(&a, &s).unwrap(), b);
    }

    #[test]
    fn deletion_at_ends() {
        let a = lines(&["first", "keep", "last"]);
        let b = lines(&["keep"]);
        let s = diff(&a, &b);
        assert_eq!(apply(&a, &s).unwrap(), b);
    }

    #[test]
    fn completely_different() {
        let a = lines(&["1", "2", "3"]);
        let b = lines(&["x", "y"]);
        let s = diff(&a, &b);
        assert_eq!(apply(&a, &s).unwrap(), b);
    }

    #[test]
    fn repeated_lines() {
        let a = lines(&["dup", "dup", "dup", "x", "dup"]);
        let b = lines(&["dup", "x", "dup", "dup"]);
        let s = diff(&a, &b);
        assert_eq!(apply(&a, &s).unwrap(), b);
    }

    #[test]
    fn myers_is_minimal_for_known_case() {
        // Classic example: ABCABBA -> CBABAC has edit distance 5.
        let a: Vec<String> = "ABCABBA".chars().map(|c| c.to_string()).collect();
        let b: Vec<String> = "CBABAC".chars().map(|c| c.to_string()).collect();
        let s = diff(&a, &b);
        assert_eq!(apply(&a, &s).unwrap(), b);
        let copies: usize = s
            .iter()
            .map(|op| match op {
                DiffOp::Copy { len, .. } => *len,
                _ => 0,
            })
            .sum();
        let inserts = inserted_lines(&s);
        let deletes = a.len() - copies;
        assert_eq!(inserts + deletes, 5, "script {s:?}");
    }

    #[test]
    fn line_round_trip() {
        let text = "a\nb\nc\n";
        let ls = to_lines(text);
        assert_eq!(ls, lines(&["a", "b", "c"]));
        assert_eq!(from_lines(&ls), text);
        assert!(to_lines("").is_empty());
    }

    #[test]
    fn unified_rendering_marks_changes() {
        let a = lines(&["keep", "remove", "keep2"]);
        let b = lines(&["keep", "added", "keep2"]);
        let r = render_unified(&a, &b);
        assert!(r.contains("- remove"));
        assert!(r.contains("+ added"));
        assert!(r.contains("  keep"));
    }
}
