//! Per-file revision chains with RCS-style reverse-delta storage.
//!
//! The newest revision is stored in full; each older revision is stored as
//! an edit script *from the next-newer revision back to it*. Checking out
//! the head is O(1); checking out revision `r` applies `head_rev − r`
//! deltas, matching how CVS/RCS store `,v` files.

use crate::diff::{diff, EditScript};
use crate::enc::{DecodeError, Reader, Writer};
use crate::patch::{apply, PatchError};

/// A revision number within one file's history. The first revision is 1
/// (CVS would render it "1.1").
pub type RevNo = u32;

/// Metadata recorded with every committed revision.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RevMeta {
    /// Committing user's name.
    pub author: String,
    /// Commit message.
    pub message: String,
    /// Logical timestamp (simulation round or wall-clock seconds).
    pub stamp: u64,
}

/// One archived (non-head) revision: metadata + the reverse delta that
/// reconstructs it from the next-newer revision.
#[derive(Clone, Debug, PartialEq, Eq)]
struct ArchivedRev {
    meta: RevMeta,
    /// Edit script from revision `n+1`'s content to revision `n`'s content.
    back_delta: EditScript,
}

/// A file's complete revision history.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileHistory {
    /// Content of the head revision, as lines.
    head: Vec<String>,
    /// Metadata of the head revision.
    head_meta: RevMeta,
    /// Archived older revisions: `archived[i]` is revision `i+1`, so the
    /// last archived entry is the revision just below head.
    archived: Vec<ArchivedRev>,
}

/// Errors when reading a history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HistoryError {
    /// Requested revision does not exist (0 or greater than head).
    NoSuchRevision(RevNo),
    /// A stored delta failed to apply — the history bytes are corrupt.
    Corrupt(PatchError),
}

impl std::fmt::Display for HistoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HistoryError::NoSuchRevision(r) => write!(f, "no such revision {r}"),
            HistoryError::Corrupt(e) => write!(f, "corrupt history: {e}"),
        }
    }
}

impl std::error::Error for HistoryError {}

impl FileHistory {
    /// Creates a history whose revision 1 has `content`.
    pub fn create(content: Vec<String>, meta: RevMeta) -> FileHistory {
        FileHistory {
            head: content,
            head_meta: meta,
            archived: Vec::new(),
        }
    }

    /// Head revision number.
    pub fn head_rev(&self) -> RevNo {
        self.archived.len() as RevNo + 1
    }

    /// Head content (lines).
    pub fn head_content(&self) -> &[String] {
        &self.head
    }

    /// Metadata for `rev`.
    pub fn meta(&self, rev: RevNo) -> Result<&RevMeta, HistoryError> {
        if rev == 0 || rev > self.head_rev() {
            return Err(HistoryError::NoSuchRevision(rev));
        }
        if rev == self.head_rev() {
            Ok(&self.head_meta)
        } else {
            Ok(&self.archived[rev as usize - 1].meta)
        }
    }

    /// Commits new head content; returns the new revision number.
    pub fn commit(&mut self, content: Vec<String>, meta: RevMeta) -> RevNo {
        let back_delta = diff(&content, &self.head);
        let old_meta = std::mem::replace(&mut self.head_meta, meta);
        self.archived.push(ArchivedRev {
            meta: old_meta,
            back_delta,
        });
        // The freshly archived entry describes the *previous* head, which is
        // revision `head_rev - 1` after the push; keep entries ordered by
        // revision: archived[i] = revision i+1. The push appends the highest
        // archived revision, so order is already correct.
        self.head = content;
        self.head_rev()
    }

    /// Reconstructs the content of `rev` (1-based).
    pub fn content_at(&self, rev: RevNo) -> Result<Vec<String>, HistoryError> {
        if rev == 0 || rev > self.head_rev() {
            return Err(HistoryError::NoSuchRevision(rev));
        }
        let mut cur = self.head.clone();
        // Walk back from head-1 down to rev.
        for archived in self.archived[rev as usize - 1..].iter().rev() {
            cur = apply(&cur, &archived.back_delta).map_err(HistoryError::Corrupt)?;
        }
        Ok(cur)
    }

    /// Iterates `(rev, meta)` from revision 1 to head.
    pub fn log(&self) -> impl Iterator<Item = (RevNo, &RevMeta)> {
        self.archived
            .iter()
            .enumerate()
            .map(|(i, a)| (i as RevNo + 1, &a.meta))
            .chain(std::iter::once((self.head_rev(), &self.head_meta)))
    }

    // ------------------------------------------------------------------
    // Serialization (for storing the history as a database value)
    // ------------------------------------------------------------------

    /// Serializes the history to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u32(self.archived.len() as u32);
        for a in &self.archived {
            encode_meta(&mut w, &a.meta);
            encode_script(&mut w, &a.back_delta);
        }
        encode_meta(&mut w, &self.head_meta);
        w.u32(self.head.len() as u32);
        for line in &self.head {
            w.string(line);
        }
        w.into_bytes()
    }

    /// Decodes a history serialized by [`FileHistory::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<FileHistory, DecodeError> {
        let mut r = Reader::new(bytes);
        let n_arch = r.u32()? as usize;
        let mut archived = Vec::with_capacity(n_arch);
        for _ in 0..n_arch {
            let meta = decode_meta(&mut r)?;
            let back_delta = decode_script(&mut r)?;
            archived.push(ArchivedRev { meta, back_delta });
        }
        let head_meta = decode_meta(&mut r)?;
        let n_lines = r.u32()? as usize;
        let mut head = Vec::with_capacity(n_lines);
        for _ in 0..n_lines {
            head.push(r.string()?);
        }
        r.finish()?;
        Ok(FileHistory {
            head,
            head_meta,
            archived,
        })
    }
}

fn encode_meta(w: &mut Writer, m: &RevMeta) {
    w.string(&m.author);
    w.string(&m.message);
    w.u64(m.stamp);
}

fn decode_meta(r: &mut Reader<'_>) -> Result<RevMeta, DecodeError> {
    Ok(RevMeta {
        author: r.string()?,
        message: r.string()?,
        stamp: r.u64()?,
    })
}

fn encode_script(w: &mut Writer, s: &EditScript) {
    use crate::diff::DiffOp;
    w.u32(s.len() as u32);
    for op in s {
        match op {
            DiffOp::Copy { base_start, len } => {
                w.u8(0);
                w.u64(*base_start as u64);
                w.u64(*len as u64);
            }
            DiffOp::Insert(lines) => {
                w.u8(1);
                w.u32(lines.len() as u32);
                for l in lines {
                    w.string(l);
                }
            }
        }
    }
}

fn decode_script(r: &mut Reader<'_>) -> Result<EditScript, DecodeError> {
    use crate::diff::DiffOp;
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        match r.u8()? {
            0 => out.push(DiffOp::Copy {
                base_start: r.u64()? as usize,
                len: r.u64()? as usize,
            }),
            1 => {
                let k = r.u32()? as usize;
                let mut lines = Vec::with_capacity(k);
                for _ in 0..k {
                    lines.push(r.string()?);
                }
                out.push(DiffOp::Insert(lines));
            }
            t => return Err(DecodeError::BadTag(t)),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(author: &str, msg: &str, stamp: u64) -> RevMeta {
        RevMeta {
            author: author.into(),
            message: msg.into(),
            stamp,
        }
    }

    fn lines(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn create_and_head() {
        let h = FileHistory::create(lines(&["v1"]), meta("alice", "initial", 1));
        assert_eq!(h.head_rev(), 1);
        assert_eq!(h.head_content(), &lines(&["v1"])[..]);
        assert_eq!(h.content_at(1).unwrap(), lines(&["v1"]));
    }

    #[test]
    fn commit_chain_reconstructs_every_revision() {
        let mut h = FileHistory::create(lines(&["a"]), meta("alice", "r1", 1));
        h.commit(lines(&["a", "b"]), meta("bob", "r2", 2));
        h.commit(lines(&["a", "B", "c"]), meta("alice", "r3", 3));
        h.commit(lines(&["z"]), meta("carol", "r4", 4));
        assert_eq!(h.head_rev(), 4);
        assert_eq!(h.content_at(1).unwrap(), lines(&["a"]));
        assert_eq!(h.content_at(2).unwrap(), lines(&["a", "b"]));
        assert_eq!(h.content_at(3).unwrap(), lines(&["a", "B", "c"]));
        assert_eq!(h.content_at(4).unwrap(), lines(&["z"]));
    }

    #[test]
    fn bad_revision_numbers() {
        let h = FileHistory::create(lines(&["x"]), meta("a", "m", 0));
        assert_eq!(h.content_at(0), Err(HistoryError::NoSuchRevision(0)));
        assert_eq!(h.content_at(2), Err(HistoryError::NoSuchRevision(2)));
        assert!(h.meta(2).is_err());
    }

    #[test]
    fn log_is_ordered_and_complete() {
        let mut h = FileHistory::create(lines(&["x"]), meta("a", "first", 10));
        h.commit(lines(&["y"]), meta("b", "second", 20));
        h.commit(lines(&["z"]), meta("c", "third", 30));
        let entries: Vec<(RevNo, String)> = h.log().map(|(r, m)| (r, m.message.clone())).collect();
        assert_eq!(
            entries,
            vec![
                (1, "first".to_string()),
                (2, "second".to_string()),
                (3, "third".to_string())
            ]
        );
    }

    #[test]
    fn serialization_round_trip() {
        let mut h = FileHistory::create(lines(&["alpha", "beta"]), meta("a", "r1", 1));
        h.commit(lines(&["alpha", "BETA", "gamma"]), meta("b", "r2", 2));
        h.commit(Vec::new(), meta("c", "emptied", 3));
        let bytes = h.to_bytes();
        let back = FileHistory::from_bytes(&bytes).unwrap();
        assert_eq!(back, h);
        // Contents reconstruct identically after the round trip.
        for rev in 1..=3 {
            assert_eq!(back.content_at(rev).unwrap(), h.content_at(rev).unwrap());
        }
    }

    #[test]
    fn corrupted_bytes_rejected() {
        let h = FileHistory::create(lines(&["x"]), meta("a", "m", 1));
        let bytes = h.to_bytes();
        assert!(FileHistory::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(FileHistory::from_bytes(&extended).is_err());
    }

    #[test]
    fn reverse_delta_storage_is_compact() {
        // 100 revisions each changing one line of a 200-line file: total
        // storage must be far below 100 full copies.
        let base: Vec<String> = (0..200).map(|i| format!("line {i}")).collect();
        let mut h = FileHistory::create(base.clone(), meta("a", "r1", 0));
        for rev in 0..100u64 {
            let mut c = base.clone();
            c[(rev as usize * 7) % 200] = format!("edited at {rev}");
            h.commit(c, meta("a", "edit", rev));
        }
        let stored = h.to_bytes().len();
        let full_copies = 101 * base.iter().map(|l| l.len() + 9).sum::<usize>();
        assert!(
            stored * 5 < full_copies,
            "stored {stored} vs naive {full_copies}"
        );
    }

    #[test]
    fn meta_lookup_per_revision() {
        let mut h = FileHistory::create(lines(&["x"]), meta("alice", "r1", 1));
        h.commit(lines(&["y"]), meta("bob", "r2", 2));
        assert_eq!(h.meta(1).unwrap().author, "alice");
        assert_eq!(h.meta(2).unwrap().author, "bob");
    }
}
