//! Minimal hand-rolled binary codec for persisting histories as database
//! values. Length-prefixed, little-endian; no external serialization crates
//! so the wire format stays explicit and auditable.

use std::fmt;

/// Errors from decoding a malformed byte stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the announced length. `offset` is the byte
    /// position the failed read started at and `needed` how many bytes it
    /// required; recovery code uses the pair to tell a torn tail (the
    /// stream simply stops) apart from interior corruption.
    Truncated {
        /// Byte position where the failed read began.
        offset: usize,
        /// Bytes the read required (more than remained).
        needed: usize,
    },
    /// A string field was not valid UTF-8.
    InvalidUtf8,
    /// An enum tag byte was unknown.
    BadTag(u8),
    /// A field's content was structurally invalid.
    Invalid(&'static str),
    /// Trailing bytes after the final field.
    TrailingBytes,
}

impl DecodeError {
    /// True for the short-input error: the stream ended before a field
    /// completed. The log-recovery path treats this as a torn tail (crash
    /// mid-append) rather than corruption.
    pub fn is_truncated(&self) -> bool {
        matches!(self, DecodeError::Truncated { .. })
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { offset, needed } => {
                write!(f, "input truncated at byte {offset} (needed {needed} more)")
            }
            DecodeError::InvalidUtf8 => write!(f, "invalid utf-8 in string field"),
            DecodeError::BadTag(t) => write!(f, "unknown tag byte {t}"),
            DecodeError::Invalid(what) => write!(f, "invalid field: {what}"),
            DecodeError::TrailingBytes => write!(f, "trailing bytes after value"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Append-only byte writer.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// New empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Finishes and returns the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn string(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Writes raw bytes with no length prefix. The reader must know the
    /// exact width (fixed-size fields like digests).
    pub fn raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Cursor-based byte reader.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(DecodeError::Truncated {
                offset: self.pos,
                needed: n,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Current cursor position in bytes.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads exactly `n` raw bytes (no length prefix).
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        self.take(n)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let len = self.u64()? as usize;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, DecodeError> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| DecodeError::InvalidUtf8)
    }

    /// Asserts that the whole input has been consumed.
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_types() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEADBEEF);
        w.u64(u64::MAX - 1);
        w.bytes(b"raw");
        w.string("héllo");
        let buf = w.into_bytes();

        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEADBEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.bytes().unwrap(), b"raw");
        assert_eq!(r.string().unwrap(), "héllo");
        r.finish().unwrap();
    }

    #[test]
    fn truncation_detected_with_offset() {
        let mut w = Writer::new();
        w.string("long enough");
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf[..buf.len() - 2]);
        // The length prefix (8 bytes) parses; the payload read starting at
        // byte 8 needs 11 bytes but only 9 remain.
        assert_eq!(
            r.string(),
            Err(DecodeError::Truncated {
                offset: 8,
                needed: 11
            })
        );
        assert!(r.string().unwrap_err().is_truncated());
    }

    #[test]
    fn raw_round_trip_and_position() {
        let mut w = Writer::new();
        w.raw(&[1, 2, 3, 4]);
        w.u8(9);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert_eq!(r.position(), 0);
        assert_eq!(r.raw(4).unwrap(), &[1, 2, 3, 4]);
        assert_eq!(r.position(), 4);
        assert_eq!(r.remaining(), 1);
        assert_eq!(r.u8().unwrap(), 9);
        r.finish().unwrap();
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = Writer::new();
        w.u8(1);
        let mut buf = w.into_bytes();
        buf.push(0xFF);
        let mut r = Reader::new(&buf);
        r.u8().unwrap();
        assert_eq!(r.finish(), Err(DecodeError::TrailingBytes));
    }

    #[test]
    fn invalid_utf8_detected() {
        let mut w = Writer::new();
        w.bytes(&[0xFF, 0xFE]);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert_eq!(r.string(), Err(DecodeError::InvalidUtf8));
    }

    #[test]
    fn empty_fields() {
        let mut w = Writer::new();
        w.bytes(b"");
        w.string("");
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert_eq!(r.bytes().unwrap(), b"");
        assert_eq!(r.string().unwrap(), "");
        r.finish().unwrap();
    }
}
