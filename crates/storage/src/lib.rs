//! # tcvs-storage
//!
//! The durable storage engine beneath the trusted-CVS server: a
//! checksummed append-only op log, periodic checkpoint snapshots, and
//! kill-anywhere crash recovery.
//!
//! The layering, bottom up:
//!
//! * [`medium`] — the raw byte device: named append-only files with
//!   explicit `sync` and atomic whole-file replacement. [`MemMedium`]
//!   models an OS page cache whose unsynced tail a crash discards;
//!   [`FileMedium`] is the real thing (`fsync`, `rename`, directory sync).
//! * [`fault`] — [`FaultMedium`], a shim that injects
//!   [`tcvs_core::StorageFault`]s (torn writes, lost fsyncs, bit flips,
//!   short reads) between the engine and any medium.
//! * [`log`] — record framing (`[len][payload][checksum]`, payload
//!   `[lsn][tag][body]`) and the segment scanner that classifies damage:
//!   torn tail vs. corruption vs. splice.
//! * [`storage`] — the [`Storage`] trait (batch → atomic commit →
//!   recover) with the [`MemStorage`] and [`DurableStorage`] backends:
//!   segment rotation, checkpoint retention, log truncation.
//! * [`engine`] — [`DurableServer`], the [`tcvs_core::ServerApi`]
//!   implementation with write-ahead discipline: log → fsync → apply →
//!   reply, and real recovery on [`tcvs_core::ServerApi::crash_restart`].
//!
//! ```
//! use tcvs_core::{ProtocolConfig, ServerApi};
//! use tcvs_merkle::{u64_key, Op};
//! use tcvs_storage::{
//!     DurabilityOptions, DurableOptions, DurableServer, DurableStorage, MemMedium, StorageObs,
//! };
//!
//! let medium = MemMedium::new();
//! let config = ProtocolConfig { order: 4, k: 4, epoch_len: 10 };
//! let store = DurableStorage::open(medium.clone(), DurableOptions::default());
//! let mut server = DurableServer::open(
//!     store, config, DurabilityOptions::default(), StorageObs::disabled()).unwrap();
//! server.handle_op_seq(0, 0, &Op::Put(u64_key(1), b"v".to_vec()), 0);
//! let root = server.core().root_digest();
//!
//! // Kill the process (drop) and the page cache (crash); recover.
//! drop(server);
//! medium.crash();
//! let store = DurableStorage::open(medium, DurableOptions::default());
//! let server = DurableServer::open(
//!     store, config, DurabilityOptions::default(), StorageObs::disabled()).unwrap();
//! assert_eq!(server.core().root_digest(), root);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod codec;
pub mod engine;
pub mod error;
pub mod fault;
pub mod log;
pub mod medium;
pub mod record;
pub mod storage;

pub use codec::{get_response, put_response, response_bytes, DurableState};
pub use engine::{DurabilityOptions, DurableServer, StorageObs};
pub use error::StorageError;
pub use fault::FaultMedium;
pub use log::{SegmentScan, TailStatus};
pub use medium::{FileMedium, Medium, MemMedium};
pub use record::{JournalEntry, Record, NO_SEQ};
pub use storage::{
    DurableOptions, DurableStorage, MemStorage, Recovered, RecoveryReport, Storage, TornTail,
    WriteBatch,
};
