//! The medium: the flat byte-file surface the durable engine writes to.
//!
//! A [`Medium`] is a directory of named byte files with exactly the
//! operations the log engine needs — append, fsync, atomic whole-file
//! replace, delete — and nothing more. Two implementations:
//!
//! * [`FileMedium`] — a real directory. `sync` is `fsync`; `write_atomic`
//!   is write-to-temp + `fsync` + `rename` + directory `fsync`, so a
//!   replace is all-or-nothing across a crash.
//! * [`MemMedium`] — an in-memory directory that *models fsync*: every
//!   file tracks how many bytes a successful `sync` has made durable, and
//!   [`MemMedium::crash`] discards everything after that point — the exact
//!   loss a `kill -9` inflicts on page-cached writes. This is what lets
//!   the kill-anywhere property test crash at every op index in-process.
//!
//! Reads return whatever has been written (durable or not), matching an OS
//! page cache: a process that just wrote sees its own write; only a crash
//! reveals what was actually on the platter.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use crate::error::StorageError;

/// A directory of named byte files, as seen by the log engine.
pub trait Medium: Send {
    /// Names of all files present, in unspecified order.
    fn list(&self) -> Result<Vec<String>, StorageError>;

    /// Full contents of `name`, or `None` if it does not exist.
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, StorageError>;

    /// Appends `data` to `name`, creating it if absent. Not durable until
    /// the next successful [`Medium::sync`] of the same file.
    fn append(&mut self, name: &str, data: &[u8]) -> Result<(), StorageError>;

    /// Makes every byte previously appended to `name` durable (fsync).
    fn sync(&mut self, name: &str) -> Result<(), StorageError>;

    /// Atomically replaces `name` with `data`, durably: after this returns,
    /// a crash leaves either the old contents or the new, never a mix.
    fn write_atomic(&mut self, name: &str, data: &[u8]) -> Result<(), StorageError>;

    /// Deletes `name` (no-op if absent).
    fn remove(&mut self, name: &str) -> Result<(), StorageError>;
}

#[derive(Default)]
struct MemFile {
    data: Vec<u8>,
    /// Bytes made durable by `sync`/`write_atomic`; `crash` truncates here.
    synced: usize,
}

#[derive(Default)]
struct MemState {
    files: BTreeMap<String, MemFile>,
}

/// An in-memory [`Medium`] with modelled fsync semantics (see module docs).
/// Clones share the same directory, so a test can keep a handle while the
/// engine owns another and crash the medium out from under it.
#[derive(Clone, Default)]
pub struct MemMedium {
    state: Arc<Mutex<MemState>>,
}

impl MemMedium {
    /// An empty in-memory directory.
    pub fn new() -> MemMedium {
        MemMedium::default()
    }

    /// Simulates `kill -9`: every file loses the bytes not yet covered by a
    /// successful sync. Files never synced vanish entirely.
    pub fn crash(&self) {
        let mut st = self.state.lock().expect("medium poisoned");
        st.files.retain(|_, f| {
            f.data.truncate(f.synced);
            f.synced > 0
        });
    }

    /// Total durable bytes across all files (diagnostics).
    pub fn durable_bytes(&self) -> u64 {
        let st = self.state.lock().expect("medium poisoned");
        st.files.values().map(|f| f.synced as u64).sum()
    }
}

impl Medium for MemMedium {
    fn list(&self) -> Result<Vec<String>, StorageError> {
        let st = self.state.lock().expect("medium poisoned");
        Ok(st.files.keys().cloned().collect())
    }

    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, StorageError> {
        let st = self.state.lock().expect("medium poisoned");
        Ok(st.files.get(name).map(|f| f.data.clone()))
    }

    fn append(&mut self, name: &str, data: &[u8]) -> Result<(), StorageError> {
        let mut st = self.state.lock().expect("medium poisoned");
        st.files
            .entry(name.to_string())
            .or_default()
            .data
            .extend_from_slice(data);
        Ok(())
    }

    fn sync(&mut self, name: &str) -> Result<(), StorageError> {
        let mut st = self.state.lock().expect("medium poisoned");
        if let Some(f) = st.files.get_mut(name) {
            f.synced = f.data.len();
        }
        Ok(())
    }

    fn write_atomic(&mut self, name: &str, data: &[u8]) -> Result<(), StorageError> {
        let mut st = self.state.lock().expect("medium poisoned");
        let f = st.files.entry(name.to_string()).or_default();
        f.data = data.to_vec();
        f.synced = f.data.len();
        Ok(())
    }

    fn remove(&mut self, name: &str) -> Result<(), StorageError> {
        let mut st = self.state.lock().expect("medium poisoned");
        st.files.remove(name);
        Ok(())
    }
}

/// A real directory on disk.
pub struct FileMedium {
    root: PathBuf,
}

impl FileMedium {
    /// Opens (creating if needed) the directory at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<FileMedium, StorageError> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(FileMedium { root })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    /// fsync the directory itself so renames/creates are durable.
    fn sync_dir(&self) -> Result<(), StorageError> {
        std::fs::File::open(&self.root)?.sync_all()?;
        Ok(())
    }
}

impl Medium for FileMedium {
    fn list(&self) -> Result<Vec<String>, StorageError> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let entry = entry?;
            if let Ok(name) = entry.file_name().into_string() {
                // Stray temp files from an interrupted write_atomic are
                // dead: the rename never happened.
                if !name.ends_with(".tmp") {
                    out.push(name);
                }
            }
        }
        Ok(out)
    }

    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, StorageError> {
        match std::fs::read(self.path(name)) {
            Ok(data) => Ok(Some(data)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn append(&mut self, name: &str, data: &[u8]) -> Result<(), StorageError> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(name))?;
        f.write_all(data)?;
        Ok(())
    }

    fn sync(&mut self, name: &str) -> Result<(), StorageError> {
        std::fs::OpenOptions::new()
            .append(true)
            .open(self.path(name))?
            .sync_all()?;
        // The file's directory entry must also be durable the first time.
        // Syncing the directory on every sync is redundant but cheap at the
        // per-batch rate the engine calls this.
        self.sync_dir()
    }

    fn write_atomic(&mut self, name: &str, data: &[u8]) -> Result<(), StorageError> {
        let tmp = self.path(&format!("{name}.tmp"));
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(data)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, self.path(name))?;
        self.sync_dir()
    }

    fn remove(&mut self, name: &str) -> Result<(), StorageError> {
        match std::fs::remove_file(self.path(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_crash_drops_unsynced_tail() {
        let mut m = MemMedium::new();
        m.append("a", b"durable").unwrap();
        m.sync("a").unwrap();
        m.append("a", b" volatile").unwrap();
        m.append("b", b"never synced").unwrap();
        m.crash();
        assert_eq!(m.read("a").unwrap().unwrap(), b"durable");
        assert_eq!(m.read("b").unwrap(), None, "unsynced file vanishes");
    }

    #[test]
    fn mem_write_atomic_is_durable() {
        let mut m = MemMedium::new();
        m.write_atomic("c", b"v1").unwrap();
        m.crash();
        assert_eq!(m.read("c").unwrap().unwrap(), b"v1");
    }

    #[test]
    fn mem_clones_share_state() {
        let mut m = MemMedium::new();
        let other = m.clone();
        m.append("x", b"hi").unwrap();
        assert_eq!(other.read("x").unwrap().unwrap(), b"hi");
    }

    #[test]
    fn file_medium_round_trip() {
        let dir = std::env::temp_dir().join(format!("tcvs-medium-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut m = FileMedium::open(&dir).unwrap();
        m.append("seg", b"abc").unwrap();
        m.append("seg", b"def").unwrap();
        m.sync("seg").unwrap();
        m.write_atomic("ckpt", b"state").unwrap();
        assert_eq!(m.read("seg").unwrap().unwrap(), b"abcdef");
        assert_eq!(m.read("ckpt").unwrap().unwrap(), b"state");
        let mut names = m.list().unwrap();
        names.sort();
        assert_eq!(names, vec!["ckpt", "seg"]);
        m.remove("seg").unwrap();
        assert_eq!(m.read("seg").unwrap(), None);
        m.remove("seg").unwrap(); // idempotent
        let _ = std::fs::remove_dir_all(&dir);
    }
}
