//! Log records: the committed facts the append-only log carries.
//!
//! A record persists an operation's *inputs* — who, which retry, what, when
//! — never its outputs. The server state machine is deterministic, so
//! recovery regenerates every response (including the reply-journal entry
//! the transport acknowledged) by replaying inputs on top of the last
//! checkpoint. That keeps the per-op log write small: an op record costs
//! tens of bytes where a response (with its Merkle proof) costs kilobytes.

use tcvs_core::{ServerResponse, SignedCheckpoint, SignedEpochState, SignedState, UserId};
use tcvs_merkle::Op;
use tcvs_obs::Event;
use tcvs_store::enc::{DecodeError, Reader, Writer};

use crate::codec;

/// The sentinel sequence number for ops that arrived without an
/// exactly-once sequence (direct [`tcvs_core::ServerApi::handle_op`]
/// calls); such ops replay into state but never into the reply journal.
pub const NO_SEQ: u64 = u64::MAX;

/// One committed fact.
#[derive(Clone, Debug)]
pub enum Record {
    /// An operation executed by the serialized write path.
    Op {
        /// The requesting user.
        user: UserId,
        /// The transport's exactly-once sequence number ([`NO_SEQ`] if the
        /// op arrived without one).
        seq: u64,
        /// The operation itself.
        op: Op,
        /// The server-side round it executed at.
        round: u64,
    },
    /// A Protocol I signature deposit.
    Signature(SignedState),
    /// A Protocol III epoch-state deposit.
    EpochState(SignedEpochState),
    /// A Protocol III audited checkpoint deposit.
    AuditCheckpoint(SignedCheckpoint),
    /// A flight-recorder frame (the crash-surviving black box rides the
    /// same log as the state it narrates).
    Flight(Event),
    /// A captured deviation evidence bundle, stored as its canonical
    /// encoded bytes (`tcvs_core::EvidenceBundle::to_bytes`). Opaque to the
    /// engine on purpose: the bundle format is self-integrity-checked, so
    /// the log neither re-encodes nor trusts its contents — incident
    /// artifacts survive crashes exactly as captured.
    Evidence(Vec<u8>),
}

const TAG_OP: u8 = 1;
const TAG_SIGNATURE: u8 = 2;
const TAG_EPOCH_STATE: u8 = 3;
const TAG_AUDIT_CHECKPOINT: u8 = 4;
const TAG_FLIGHT: u8 = 5;
const TAG_EVIDENCE: u8 = 6;

impl Record {
    /// The record's log tag byte.
    pub fn tag(&self) -> u8 {
        match self {
            Record::Op { .. } => TAG_OP,
            Record::Signature(_) => TAG_SIGNATURE,
            Record::EpochState(_) => TAG_EPOCH_STATE,
            Record::AuditCheckpoint(_) => TAG_AUDIT_CHECKPOINT,
            Record::Flight(_) => TAG_FLIGHT,
            Record::Evidence(_) => TAG_EVIDENCE,
        }
    }

    /// Encodes the record body (everything after the log framing's
    /// `[lsn][tag]` prefix).
    pub fn body(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Record::Op {
                user,
                seq,
                op,
                round,
            } => {
                w.u32(*user);
                w.u64(*seq);
                w.u64(*round);
                codec::put_op(&mut w, op);
            }
            Record::Signature(s) => codec::put_signed_state(&mut w, s),
            Record::EpochState(s) => codec::put_epoch_state(&mut w, s),
            Record::AuditCheckpoint(c) => codec::put_audit_checkpoint(&mut w, c),
            Record::Flight(ev) => codec::put_event(&mut w, ev),
            Record::Evidence(bytes) => w.bytes(bytes),
        }
        w.into_bytes()
    }

    /// Decodes a record from its tag and body.
    pub fn decode(tag: u8, body: &[u8]) -> Result<Record, DecodeError> {
        let mut r = Reader::new(body);
        let rec = match tag {
            TAG_OP => {
                let user = r.u32()?;
                let seq = r.u64()?;
                let round = r.u64()?;
                let op = codec::get_op(&mut r)?;
                Record::Op {
                    user,
                    seq,
                    op,
                    round,
                }
            }
            TAG_SIGNATURE => Record::Signature(codec::get_signed_state(&mut r)?),
            TAG_EPOCH_STATE => Record::EpochState(codec::get_epoch_state(&mut r)?),
            TAG_AUDIT_CHECKPOINT => Record::AuditCheckpoint(codec::get_audit_checkpoint(&mut r)?),
            TAG_FLIGHT => Record::Flight(codec::get_event(&mut r)?),
            TAG_EVIDENCE => Record::Evidence(r.bytes()?.to_vec()),
            t => return Err(DecodeError::BadTag(t)),
        };
        r.finish()?;
        Ok(rec)
    }
}

/// A [`ServerResponse`] journal entry regenerated (or about to be
/// persisted) alongside its exactly-once key.
pub type JournalEntry = (UserId, u64, ServerResponse);

#[cfg(test)]
mod tests {
    use super::*;
    use tcvs_merkle::u64_key;
    use tcvs_obs::EventKind;

    #[test]
    fn op_record_round_trips() {
        let rec = Record::Op {
            user: 2,
            seq: 41,
            op: Op::Put(u64_key(9), b"val".to_vec()),
            round: 17,
        };
        let back = Record::decode(rec.tag(), &rec.body()).unwrap();
        match back {
            Record::Op {
                user,
                seq,
                op,
                round,
            } => {
                assert_eq!((user, seq, round), (2, 41, 17));
                assert_eq!(op, Op::Put(u64_key(9), b"val".to_vec()));
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn flight_record_round_trips() {
        let rec = Record::Flight(Event::new(3, EventKind::OpServed, 1).detail("ctr=3"));
        let back = Record::decode(rec.tag(), &rec.body()).unwrap();
        match back {
            Record::Flight(ev) => assert_eq!(ev.detail, "ctr=3"),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn evidence_record_round_trips_opaquely() {
        let rec = Record::Evidence(b"TCVSEVB1-opaque-payload".to_vec());
        let back = Record::decode(rec.tag(), &rec.body()).unwrap();
        match back {
            Record::Evidence(bytes) => assert_eq!(bytes, b"TCVSEVB1-opaque-payload"),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(matches!(
            Record::decode(99, &[]),
            Err(DecodeError::BadTag(99))
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let rec = Record::Op {
            user: 0,
            seq: 0,
            op: Op::Get(u64_key(0)),
            round: 0,
        };
        let mut body = rec.body();
        body.push(0);
        assert!(matches!(
            Record::decode(rec.tag(), &body),
            Err(DecodeError::TrailingBytes)
        ));
    }
}
