//! Storage fault injection: a [`Medium`] shim that misbehaves on schedule.
//!
//! [`FaultMedium`] sits between the engine and a real medium and applies
//! [`StorageFault`]s from a [`tcvs_core::FaultPlan`]-style schedule, keyed
//! by *append index* (the n-th `append` call — one per committed batch, so
//! under a pure op workload append index = op index):
//!
//! * `TornWrite` — only a prefix of the batch reaches the medium, then the
//!   medium goes dead (the process would have lost power mid-write). The
//!   engine sees an error; recovery must detect and discard the torn tail.
//! * `FsyncLost` — the sync after the faulted append silently succeeds
//!   without making anything durable: the classic lying-fsync. Harmless
//!   unless a crash follows before the next real sync.
//! * `BitFlip` — one bit of the appended batch flips on the way down
//!   (latent sector corruption). The record checksum must catch it at
//!   recovery; until then reads return the corrupted bytes.
//! * `ShortRead` — the next `read` of each file returns a prefix; a retry
//!   sees the full contents. Recovery must re-read rather than mistake the
//!   transient truncation for a torn tail.

use std::collections::BTreeMap;

use tcvs_core::StorageFault;

use crate::error::StorageError;
use crate::medium::Medium;

/// A fault-injecting wrapper around a [`Medium`] (see module docs).
pub struct FaultMedium<M: Medium> {
    inner: M,
    faults: BTreeMap<u64, StorageFault>,
    appends: u64,
    /// Set by a torn write: the medium is dead until [`FaultMedium::heal`].
    dead: bool,
    /// Set by `FsyncLost`: the next sync is silently dropped.
    lose_next_sync: bool,
    /// Armed by `ShortRead`: exactly one upcoming read returns a prefix.
    /// A `Cell` because `read` takes `&self` (transient faults are a read-
    /// side property); `Cell<bool>` keeps the medium `Send`.
    short_read_pending: std::cell::Cell<bool>,
    applied: u64,
}

impl<M: Medium> FaultMedium<M> {
    /// Wraps `inner` with an empty schedule (transparent until scheduled).
    pub fn new(inner: M) -> FaultMedium<M> {
        FaultMedium {
            inner,
            faults: BTreeMap::new(),
            appends: 0,
            dead: false,
            lose_next_sync: false,
            short_read_pending: std::cell::Cell::new(false),
            applied: 0,
        }
    }

    /// Schedules `fault` at append index `at` (the n-th future append).
    pub fn schedule(&mut self, at: u64, fault: StorageFault) -> &mut Self {
        self.faults.insert(at, fault);
        self
    }

    /// Revives a medium killed by a torn write (models the restart after
    /// the power loss).
    pub fn heal(&mut self) {
        self.dead = false;
    }

    /// Arms one short read directly (recovery-side tests have no append to
    /// hang a scheduled `ShortRead` on).
    pub fn arm_short_read(&mut self) {
        self.short_read_pending.set(true);
        self.applied += 1;
    }

    /// Faults applied so far.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// The wrapped medium.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    fn check_dead(&self) -> Result<(), StorageError> {
        if self.dead {
            Err(StorageError::io("medium dead after torn write"))
        } else {
            Ok(())
        }
    }
}

impl<M: Medium> Medium for FaultMedium<M> {
    fn list(&self) -> Result<Vec<String>, StorageError> {
        self.check_dead()?;
        self.inner.list()
    }

    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, StorageError> {
        self.check_dead()?;
        let full = self.inner.read(name)?;
        if self.short_read_pending.get() {
            if let Some(data) = &full {
                if data.len() > 1 {
                    self.short_read_pending.set(false);
                    return Ok(Some(data[..data.len() / 2].to_vec()));
                }
            }
        }
        Ok(full)
    }

    fn append(&mut self, name: &str, data: &[u8]) -> Result<(), StorageError> {
        self.check_dead()?;
        let idx = self.appends;
        self.appends += 1;
        match self.faults.get(&idx).copied() {
            None => self.inner.append(name, data),
            Some(StorageFault::TornWrite) => {
                self.applied += 1;
                let torn = &data[..data.len() / 2];
                if !torn.is_empty() {
                    self.inner.append(name, torn)?;
                }
                self.dead = true;
                Err(StorageError::io("torn write: power lost mid-append"))
            }
            Some(StorageFault::FsyncLost) => {
                self.applied += 1;
                self.lose_next_sync = true;
                self.inner.append(name, data)
            }
            Some(StorageFault::BitFlip) => {
                self.applied += 1;
                let mut flipped = data.to_vec();
                let bit = (idx as usize).wrapping_mul(7) % (flipped.len() * 8);
                flipped[bit / 8] ^= 1 << (bit % 8);
                self.inner.append(name, &flipped)
            }
            Some(StorageFault::ShortRead) => {
                self.applied += 1;
                self.short_read_pending.set(true);
                self.inner.append(name, data)
            }
        }
    }

    fn sync(&mut self, name: &str) -> Result<(), StorageError> {
        self.check_dead()?;
        if self.lose_next_sync {
            self.lose_next_sync = false;
            return Ok(()); // the lie: reported durable, actually not
        }
        self.inner.sync(name)
    }

    fn write_atomic(&mut self, name: &str, data: &[u8]) -> Result<(), StorageError> {
        self.check_dead()?;
        self.inner.write_atomic(name, data)
    }

    fn remove(&mut self, name: &str) -> Result<(), StorageError> {
        self.check_dead()?;
        self.inner.remove(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::medium::MemMedium;

    #[test]
    fn torn_write_kills_the_medium_until_healed() {
        let mem = MemMedium::new();
        let mut m = FaultMedium::new(mem.clone());
        m.schedule(1, StorageFault::TornWrite);
        m.append("f", b"first").unwrap();
        let err = m.append("f", b"secondsecond").unwrap_err();
        assert!(matches!(err, StorageError::Io(_)));
        assert!(m.append("f", b"x").is_err(), "dead until healed");
        m.heal();
        m.append("f", b"x").unwrap();
        // Prefix of the torn batch landed.
        assert_eq!(mem.read("f").unwrap().unwrap(), b"firstsecondx");
        assert_eq!(m.applied(), 1);
    }

    #[test]
    fn lost_fsync_leaves_data_volatile() {
        let mem = MemMedium::new();
        let mut m = FaultMedium::new(mem.clone());
        m.schedule(1, StorageFault::FsyncLost);
        m.append("f", b"safe").unwrap();
        m.sync("f").unwrap();
        m.append("f", b" lost").unwrap();
        m.sync("f").unwrap(); // silently dropped
        mem.crash();
        assert_eq!(mem.read("f").unwrap().unwrap(), b"safe");
    }

    #[test]
    fn bit_flip_corrupts_exactly_one_bit() {
        let mem = MemMedium::new();
        let mut m = FaultMedium::new(mem.clone());
        m.schedule(0, StorageFault::BitFlip);
        m.append("f", &[0u8; 8]).unwrap();
        let data = mem.read("f").unwrap().unwrap();
        let ones: u32 = data.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1);
    }

    #[test]
    fn short_read_is_transient() {
        let mem = MemMedium::new();
        let mut m = FaultMedium::new(mem);
        m.schedule(0, StorageFault::ShortRead);
        m.append("f", b"0123456789").unwrap();
        assert_eq!(m.read("f").unwrap().unwrap(), b"01234", "first read short");
        assert_eq!(m.read("f").unwrap().unwrap(), b"0123456789", "retry full");
    }
}
