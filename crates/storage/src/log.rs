//! Record framing and segment scanning for the append-only op log.
//!
//! Wire format of one framed record:
//!
//! ```text
//! [len: u32 LE] [payload: len bytes] [check: 8 bytes]
//! ```
//!
//! where `check` is the first 8 bytes of `sha256(payload)` and the payload
//! itself begins `[lsn: u64 LE] [tag: u8] [body…]`. The three integrity
//! layers are deliberately distinct, because recovery must *classify*, not
//! just reject:
//!
//! * **insufficient bytes** (header or payload cut off) — a *torn tail*:
//!   the expected shape of a crash mid-append. Recovery discards it and
//!   continues; nothing acknowledged is lost, because acknowledgment
//!   happens only after fsync.
//! * **checksum mismatch** — *corruption* (bit rot, misdirected write).
//!   Recovery stops at the corrupt record and reports it; replaying past a
//!   lie would launder it into state.
//! * **LSN discontinuity** — a *splice* (duplicated or dropped record,
//!   e.g. a misdirected block landing twice). Also corruption: recovery
//!   stops and reports.

use tcvs_crypto::sha256;
use tcvs_store::enc::{Reader, Writer};

/// Bytes of `sha256(payload)` stored per record.
pub const CHECK_LEN: usize = 8;

/// Frame header size (the length prefix).
pub const HEADER_LEN: usize = 4;

/// Largest payload a frame may carry (1 GiB): anything bigger in a length
/// header is treated as corruption, not an allocation request.
pub const MAX_PAYLOAD: usize = 1 << 30;

/// Frames a record payload: length prefix + payload + truncated checksum.
///
/// # Panics
///
/// Panics when `payload` exceeds [`MAX_PAYLOAD`]: such a frame would be
/// classified as corruption on every subsequent scan (and past `u32::MAX`
/// the length prefix would silently wrap), so it must never reach disk.
/// [`crate::DurableStorage`] rejects oversized payloads with a typed
/// [`crate::StorageError::TooLarge`] before calling this.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_PAYLOAD,
        "payload of {} bytes exceeds the maximum frame size",
        payload.len()
    );
    let mut w = Writer::new();
    w.u32(payload.len() as u32);
    w.raw(payload);
    w.raw(&sha256(payload).0[..CHECK_LEN]);
    w.into_bytes()
}

/// Builds a record payload: `[lsn][tag][body]`.
pub fn payload(lsn: u64, tag: u8, body: &[u8]) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(lsn);
    w.u8(tag);
    w.raw(body);
    w.into_bytes()
}

/// On-disk bytes of one framed record whose body is `body_len` bytes:
/// header + (lsn + tag + body) + checksum.
pub fn frame_len(body_len: usize) -> u64 {
    (HEADER_LEN + 8 + 1 + body_len + CHECK_LEN) as u64
}

/// Largest record *body* that still frames within [`MAX_PAYLOAD`] (the
/// payload wraps the body in an lsn and a tag byte).
pub const MAX_BODY: usize = MAX_PAYLOAD - 9;

/// Why a segment scan stopped before the end of the buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TailStatus {
    /// Every byte belonged to a complete, valid record.
    Clean,
    /// The final record is incomplete — a crash cut the append short.
    /// `offset` is where the torn record starts; `dropped` how many bytes
    /// after it are discarded.
    Torn {
        /// Byte offset of the torn record's frame.
        offset: u64,
        /// Bytes discarded (from `offset` to the end of the buffer).
        dropped: u64,
    },
    /// A record failed its checksum or LSN continuity check. `offset` is
    /// where the bad frame starts.
    Corrupt {
        /// Byte offset of the corrupt frame.
        offset: u64,
        /// Which check failed.
        reason: &'static str,
    },
}

impl TailStatus {
    /// True when the scan consumed the whole buffer.
    pub fn is_clean(&self) -> bool {
        *self == TailStatus::Clean
    }
}

/// Result of scanning one segment buffer.
#[derive(Clone, Debug)]
pub struct SegmentScan {
    /// Valid records, in order: `(lsn, tag, body)`.
    pub records: Vec<(u64, u8, Vec<u8>)>,
    /// How the scan ended.
    pub tail: TailStatus,
    /// Bytes of valid prefix (frame-aligned); the segment can be truncated
    /// here to shed a torn or corrupt tail.
    pub valid_len: u64,
}

/// Scans a segment buffer, expecting the first record to carry
/// `expected_lsn` and each subsequent record the next LSN. Stops at the
/// first torn or corrupt frame; never panics on any input.
pub fn scan(buf: &[u8], mut expected_lsn: u64) -> SegmentScan {
    let mut records = Vec::new();
    let mut r = Reader::new(buf);
    loop {
        let frame_start = r.position() as u64;
        if r.remaining() == 0 {
            return SegmentScan {
                records,
                tail: TailStatus::Clean,
                valid_len: frame_start,
            };
        }
        let torn = |records: Vec<(u64, u8, Vec<u8>)>| SegmentScan {
            records,
            tail: TailStatus::Torn {
                offset: frame_start,
                dropped: (buf.len() as u64) - frame_start,
            },
            valid_len: frame_start,
        };
        let len = match r.u32() {
            Ok(len) => len as usize,
            Err(_) => return torn(records),
        };
        if len > MAX_PAYLOAD {
            return SegmentScan {
                records,
                tail: TailStatus::Corrupt {
                    offset: frame_start,
                    reason: "length header exceeds maximum payload",
                },
                valid_len: frame_start,
            };
        }
        if r.remaining() < len + CHECK_LEN {
            return torn(records);
        }
        let payload = r.raw(len).expect("length just checked");
        let check = r.raw(CHECK_LEN).expect("length just checked");
        if &sha256(payload).0[..CHECK_LEN] != check {
            return SegmentScan {
                records,
                tail: TailStatus::Corrupt {
                    offset: frame_start,
                    reason: "checksum mismatch",
                },
                valid_len: frame_start,
            };
        }
        let mut pr = Reader::new(payload);
        let (lsn, tag) = match (pr.u64(), pr.u8()) {
            (Ok(lsn), Ok(tag)) => (lsn, tag),
            _ => {
                return SegmentScan {
                    records,
                    tail: TailStatus::Corrupt {
                        offset: frame_start,
                        reason: "payload too short for lsn+tag",
                    },
                    valid_len: frame_start,
                }
            }
        };
        if lsn != expected_lsn {
            return SegmentScan {
                records,
                tail: TailStatus::Corrupt {
                    offset: frame_start,
                    reason: "lsn discontinuity",
                },
                valid_len: frame_start,
            };
        }
        let body = payload[pr.position()..].to_vec();
        records.push((lsn, tag, body));
        expected_lsn += 1;
    }
}

/// Verifies and unpacks a checkpoint file: a single [`frame`] whose payload
/// is `[lsn: u64 LE][state bytes]`. Returns `None` on any damage — the
/// caller falls back to an older checkpoint.
pub fn scan_checkpoint(buf: &[u8]) -> Option<(u64, Vec<u8>)> {
    let mut r = Reader::new(buf);
    let len = r.u32().ok()? as usize;
    if len > MAX_PAYLOAD || r.remaining() != len + CHECK_LEN {
        return None;
    }
    let payload = r.raw(len).ok()?;
    let check = r.raw(CHECK_LEN).ok()?;
    if &sha256(payload).0[..CHECK_LEN] != check {
        return None;
    }
    let mut pr = Reader::new(payload);
    let lsn = pr.u64().ok()?;
    Some((lsn, payload[pr.position()..].to_vec()))
}

/// Segment file name for the segment whose first record carries `lsn`.
pub fn segment_name(lsn: u64) -> String {
    format!("seg-{lsn:016x}.log")
}

/// Checkpoint file name for a checkpoint taken at `lsn` (covering every
/// record below it).
pub fn checkpoint_name(lsn: u64) -> String {
    format!("ckpt-{lsn:016x}.ckp")
}

/// Quarantine name for a file recovery has discarded: the bytes are kept
/// for manual salvage, but neither [`parse_segment_name`] nor
/// [`parse_checkpoint_name`] matches the prefixed name, so no scan or
/// rotation will ever touch them again.
pub fn quarantine_name(name: &str) -> String {
    format!("quarantine-{name}")
}

/// Parses a segment file name back to its first LSN.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("seg-")?.strip_suffix(".log")?;
    u64::from_str_radix(hex, 16).ok()
}

/// Parses a checkpoint file name back to its LSN.
pub fn parse_checkpoint_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("ckpt-")?.strip_suffix(".ckp")?;
    u64::from_str_radix(hex, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(lsn: u64, tag: u8, body: &[u8]) -> Vec<u8> {
        frame(&payload(lsn, tag, body))
    }

    #[test]
    fn clean_log_scans_fully() {
        let mut buf = Vec::new();
        for i in 0..5u64 {
            buf.extend_from_slice(&record(i, 1, &[i as u8; 3]));
        }
        let scan = scan(&buf, 0);
        assert_eq!(scan.records.len(), 5);
        assert!(scan.tail.is_clean());
        assert_eq!(scan.valid_len, buf.len() as u64);
        assert_eq!(scan.records[3], (3, 1, vec![3u8; 3]));
    }

    #[test]
    fn truncation_at_every_boundary_is_torn_never_corrupt() {
        let mut buf = Vec::new();
        for i in 0..3u64 {
            buf.extend_from_slice(&record(i, 2, b"body"));
        }
        let frame_len = record(0, 2, b"body").len();
        for cut in 0..buf.len() {
            let scan = scan(&buf[..cut], 0);
            let whole = cut / frame_len;
            assert_eq!(scan.records.len(), whole, "cut={cut}");
            if cut % frame_len == 0 {
                assert!(scan.tail.is_clean(), "cut={cut}");
            } else {
                assert!(
                    matches!(scan.tail, TailStatus::Torn { .. }),
                    "cut={cut}: {:?}",
                    scan.tail
                );
                assert_eq!(scan.valid_len as usize, whole * frame_len);
            }
        }
    }

    #[test]
    fn bit_flip_is_corrupt_not_torn() {
        let mut buf = record(0, 1, b"payload");
        buf.extend_from_slice(&record(1, 1, b"payload"));
        // Flip a payload bit of the first record.
        buf[HEADER_LEN + 9] ^= 0x10;
        let scan = scan(&buf, 0);
        assert!(scan.records.is_empty());
        assert_eq!(
            scan.tail,
            TailStatus::Corrupt {
                offset: 0,
                reason: "checksum mismatch"
            }
        );
    }

    #[test]
    fn spliced_duplicate_is_an_lsn_discontinuity() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&record(0, 1, b"a"));
        let dup = record(0, 1, b"a");
        buf.extend_from_slice(&dup); // the same record again
        buf.extend_from_slice(&record(1, 1, b"b"));
        let scan = scan(&buf, 0);
        assert_eq!(scan.records.len(), 1, "duplicate never delivered twice");
        assert!(matches!(
            scan.tail,
            TailStatus::Corrupt {
                reason: "lsn discontinuity",
                ..
            }
        ));
    }

    #[test]
    fn absurd_length_header_is_corruption_not_allocation() {
        let mut w = Writer::new();
        w.u32(u32::MAX);
        w.raw(&[0u8; 16]);
        let scan = scan(&w.into_bytes(), 0);
        assert!(matches!(scan.tail, TailStatus::Corrupt { .. }));
    }

    #[test]
    fn names_round_trip() {
        assert_eq!(parse_segment_name(&segment_name(42)), Some(42));
        assert_eq!(parse_checkpoint_name(&checkpoint_name(7)), Some(7));
        assert_eq!(parse_segment_name("ckpt-0000000000000007.ckp"), None);
        assert_eq!(parse_segment_name("seg-zz.log"), None);
        let quar = quarantine_name(&segment_name(42));
        assert_eq!(
            parse_segment_name(&quar),
            None,
            "quarantined: never scanned"
        );
        assert_eq!(
            parse_checkpoint_name(&quarantine_name(&checkpoint_name(7))),
            None
        );
    }

    #[test]
    fn frame_len_matches_the_wire_format() {
        for body_len in [0usize, 1, 7, 300] {
            let body = vec![0xAB; body_len];
            assert_eq!(
                frame_len(body_len),
                record(5, 1, &body).len() as u64,
                "body_len={body_len}"
            );
        }
    }
}
