//! Byte codecs for everything the durable engine persists.
//!
//! Built on `tcvs_store::enc`'s length-prefixed little-endian framing so
//! the whole on-disk vocabulary shares one explicit, auditable format. Two
//! kinds of value are encoded:
//!
//! * **log record bodies** ([`crate::record::Record`]) — op *inputs*, not
//!   outputs: the server state machine is deterministic, so replaying the
//!   inputs regenerates every response (and hence the reply journal)
//!   byte-identically. Only checkpoints serialize responses.
//! * **checkpoint states** ([`DurableState`]) — a full
//!   [`ServerSnapshot`] plus the transport's reply journal, the complete
//!   durable world at one LSN.
//!
//! Decoders validate everything: signatures and trees re-verify their
//! digests, enum tags reject unknown values, and all errors surface as
//! typed [`DecodeError`]s with offsets (the recovery path needs to tell a
//! torn tail from corruption).

use tcvs_core::{Ctr, Epoch, ServerMetrics, ServerResponse, ServerSnapshot, UserId};
use tcvs_merkle::{MerkleTree, Op, OpResult, VerificationObject};
use tcvs_store::enc::{DecodeError, Reader, Writer};

// The protocol-vocabulary codecs (digests, signatures, deposits, events)
// live in `tcvs_core::wire` — shared with the evidence-bundle format so
// the durable log and the portable forensic artifact speak one encoding.
pub(crate) use tcvs_core::wire::{
    get_audit_checkpoint, get_epoch_state, get_event, get_signed_state, put_audit_checkpoint,
    put_epoch_state, put_event, put_signed_state,
};

// --- operations and results ----------------------------------------------

pub(crate) fn put_op(w: &mut Writer, op: &Op) {
    match op {
        Op::Get(k) => {
            w.u8(0);
            w.bytes(k);
        }
        Op::Range(lo, hi) => {
            w.u8(1);
            put_opt_bytes(w, lo.as_deref());
            put_opt_bytes(w, hi.as_deref());
        }
        Op::Put(k, v) => {
            w.u8(2);
            w.bytes(k);
            w.bytes(v);
        }
        Op::Delete(k) => {
            w.u8(3);
            w.bytes(k);
        }
    }
}

pub(crate) fn get_op(r: &mut Reader) -> Result<Op, DecodeError> {
    match r.u8()? {
        0 => Ok(Op::Get(r.bytes()?.to_vec())),
        1 => Ok(Op::Range(get_opt_bytes(r)?, get_opt_bytes(r)?)),
        2 => Ok(Op::Put(r.bytes()?.to_vec(), r.bytes()?.to_vec())),
        3 => Ok(Op::Delete(r.bytes()?.to_vec())),
        t => Err(DecodeError::BadTag(t)),
    }
}

fn put_opt_bytes(w: &mut Writer, v: Option<&[u8]>) {
    match v {
        None => w.u8(0),
        Some(v) => {
            w.u8(1);
            w.bytes(v);
        }
    }
}

fn get_opt_bytes(r: &mut Reader) -> Result<Option<Vec<u8>>, DecodeError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.bytes()?.to_vec())),
        t => Err(DecodeError::BadTag(t)),
    }
}

fn put_op_result(w: &mut Writer, res: &OpResult) {
    match res {
        OpResult::Value(v) => {
            w.u8(0);
            put_opt_bytes(w, v.as_deref());
        }
        OpResult::Entries(entries) => {
            w.u8(1);
            w.u32(entries.len() as u32);
            for (k, v) in entries {
                w.bytes(k);
                w.bytes(v);
            }
        }
        OpResult::Replaced(v) => {
            w.u8(2);
            put_opt_bytes(w, v.as_deref());
        }
        OpResult::Deleted(v) => {
            w.u8(3);
            put_opt_bytes(w, v.as_deref());
        }
    }
}

fn get_op_result(r: &mut Reader) -> Result<OpResult, DecodeError> {
    match r.u8()? {
        0 => Ok(OpResult::Value(get_opt_bytes(r)?)),
        1 => {
            let n = r.u32()? as usize;
            let mut entries = Vec::new();
            for _ in 0..n {
                entries.push((r.bytes()?.to_vec(), r.bytes()?.to_vec()));
            }
            Ok(OpResult::Entries(entries))
        }
        2 => Ok(OpResult::Replaced(get_opt_bytes(r)?)),
        3 => Ok(OpResult::Deleted(get_opt_bytes(r)?)),
        t => Err(DecodeError::BadTag(t)),
    }
}

// --- responses ------------------------------------------------------------

/// Encodes a full server response (checkpoint journal entries only; live
/// op records persist inputs and regenerate responses by replay).
pub fn put_response(w: &mut Writer, resp: &ServerResponse) {
    put_op_result(w, &resp.result);
    w.bytes(&resp.vo.to_bytes());
    w.u64(resp.ctr);
    w.u32(resp.last_user);
    match &resp.sig {
        None => w.u8(0),
        Some(s) => {
            w.u8(1);
            put_signed_state(w, s);
        }
    }
    w.u64(resp.epoch);
    w.u8(u8::from(resp.new_epoch));
}

/// Decodes a [`put_response`] encoding; the verification object's digests
/// re-verify during decode.
pub fn get_response(r: &mut Reader) -> Result<ServerResponse, DecodeError> {
    let result = get_op_result(r)?;
    let vo = VerificationObject::from_bytes(r.bytes()?)
        .map_err(|_| DecodeError::Invalid("verification object"))?;
    let ctr = r.u64()?;
    let last_user = r.u32()?;
    let sig = match r.u8()? {
        0 => None,
        1 => Some(get_signed_state(r)?),
        t => return Err(DecodeError::BadTag(t)),
    };
    Ok(ServerResponse {
        result,
        vo,
        ctr,
        last_user,
        sig,
        epoch: r.u64()?,
        new_epoch: match r.u8()? {
            0 => false,
            1 => true,
            t => return Err(DecodeError::BadTag(t)),
        },
    })
}

/// Canonical bytes of a response — the unit the kill-anywhere property
/// compares for "byte-identical journal" across a recovery.
pub fn response_bytes(resp: &ServerResponse) -> Vec<u8> {
    let mut w = Writer::new();
    put_response(&mut w, resp);
    w.into_bytes()
}

// --- the durable checkpoint state -----------------------------------------

/// Magic prefix of an encoded [`DurableState`].
const STATE_MAGIC: &[u8; 4] = b"TCKP";
/// Format version of the checkpoint encoding.
const STATE_VERSION: u32 = 2;

/// The complete durable world at one LSN: the server's crash snapshot plus
/// the transport's exactly-once reply journal.
pub struct DurableState {
    /// The server state (database, counters, deposits, flight tail).
    pub snapshot: ServerSnapshot,
    /// The reply journal as `(user, seq, response)` — one live entry per
    /// user (older entries are below the acknowledgment watermark).
    pub journal: Vec<(UserId, u64, ServerResponse)>,
    /// Persisted deviation evidence bundles, opaque canonical bytes
    /// (self-integrity-checked by the bundle format). Carried in the
    /// checkpoint so incident artifacts outlive log pruning.
    pub evidence: Vec<Vec<u8>>,
}

impl DurableState {
    /// Encodes the state for a checkpoint file.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.raw(STATE_MAGIC);
        w.u32(STATE_VERSION);
        w.u64(self.snapshot.ctr());
        w.u32(self.snapshot.last_user());
        w.u64(self.snapshot.epoch_len());
        match self.snapshot.last_sig() {
            None => w.u8(0),
            Some(s) => {
                w.u8(1);
                put_signed_state(&mut w, s);
            }
        }
        w.u32(self.snapshot.epoch_states().len() as u32);
        for s in self.snapshot.epoch_states() {
            put_epoch_state(&mut w, s);
        }
        w.u32(self.snapshot.checkpoints().len() as u32);
        for c in self.snapshot.checkpoints() {
            put_audit_checkpoint(&mut w, c);
        }
        w.u32(self.snapshot.user_epochs().len() as u32);
        for (u, e) in self.snapshot.user_epochs() {
            w.u32(*u);
            w.u64(*e);
        }
        let m = self.snapshot.snapshot_metrics();
        w.u64(m.ops);
        w.u64(m.msgs_in);
        w.u64(m.msgs_out);
        w.u64(m.bytes_out);
        w.u32(self.snapshot.flight_events().len() as u32);
        for ev in self.snapshot.flight_events() {
            put_event(&mut w, ev);
        }
        w.u32(self.journal.len() as u32);
        for (user, seq, resp) in &self.journal {
            w.u32(*user);
            w.u64(*seq);
            put_response(&mut w, resp);
        }
        w.u32(self.evidence.len() as u32);
        for e in &self.evidence {
            w.bytes(e);
        }
        w.bytes(&self.snapshot.db().to_bytes());
        w.into_bytes()
    }

    /// Decodes a checkpoint file body; the database's digests are fully
    /// re-verified during decode.
    pub fn from_bytes(bytes: &[u8]) -> Result<DurableState, DecodeError> {
        let mut r = Reader::new(bytes);
        if r.raw(4)? != STATE_MAGIC {
            return Err(DecodeError::Invalid("bad checkpoint magic"));
        }
        if r.u32()? != STATE_VERSION {
            return Err(DecodeError::Invalid("unknown checkpoint version"));
        }
        let ctr: Ctr = r.u64()?;
        let last_user: UserId = r.u32()?;
        let epoch_len = r.u64()?;
        let last_sig = match r.u8()? {
            0 => None,
            1 => Some(get_signed_state(&mut r)?),
            t => return Err(DecodeError::BadTag(t)),
        };
        let n = r.u32()? as usize;
        let mut epoch_states = Vec::new();
        for _ in 0..n {
            epoch_states.push(get_epoch_state(&mut r)?);
        }
        let n = r.u32()? as usize;
        let mut checkpoints = Vec::new();
        for _ in 0..n {
            checkpoints.push(get_audit_checkpoint(&mut r)?);
        }
        let n = r.u32()? as usize;
        let mut user_epochs: Vec<(UserId, Epoch)> = Vec::new();
        for _ in 0..n {
            user_epochs.push((r.u32()?, r.u64()?));
        }
        let metrics = ServerMetrics {
            ops: r.u64()?,
            msgs_in: r.u64()?,
            msgs_out: r.u64()?,
            bytes_out: r.u64()?,
        };
        let n = r.u32()? as usize;
        let mut flight = Vec::new();
        for _ in 0..n {
            flight.push(get_event(&mut r)?);
        }
        let n = r.u32()? as usize;
        let mut journal = Vec::new();
        for _ in 0..n {
            let user = r.u32()?;
            let seq = r.u64()?;
            journal.push((user, seq, get_response(&mut r)?));
        }
        let n = r.u32()? as usize;
        let mut evidence = Vec::new();
        for _ in 0..n {
            evidence.push(r.bytes()?.to_vec());
        }
        let db = MerkleTree::from_bytes(r.bytes()?)
            .map_err(|_| DecodeError::Invalid("checkpoint database"))?;
        r.finish()?;
        let snapshot = ServerSnapshot::from_parts(
            db,
            ctr,
            last_user,
            epoch_len,
            last_sig,
            epoch_states,
            checkpoints,
            user_epochs,
            metrics,
            flight,
        )
        .map_err(|_| DecodeError::Invalid("snapshot parts"))?;
        Ok(DurableState {
            snapshot,
            journal,
            evidence,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcvs_core::wire::{get_mss, put_mss};
    use tcvs_core::{HonestServer, ProtocolConfig, ServerApi, SignedState};
    use tcvs_crypto::MssSignature;
    use tcvs_merkle::u64_key;
    use tcvs_obs::{Event, EventKind, SpanContext};

    fn sample_sig(seed: u8) -> MssSignature {
        let (mut rings, _) = tcvs_crypto::setup_users([seed; 32], 1, 3);
        rings[0].sign(&tcvs_crypto::sha256(&[seed])).unwrap()
    }

    #[test]
    fn op_codec_round_trips() {
        let ops = [
            Op::Get(u64_key(1)),
            Op::Range(None, Some(u64_key(9))),
            Op::Range(Some(u64_key(2)), None),
            Op::Put(u64_key(3), b"v".to_vec()),
            Op::Delete(u64_key(4)),
        ];
        for op in &ops {
            let mut w = Writer::new();
            put_op(&mut w, op);
            let buf = w.into_bytes();
            let mut r = Reader::new(&buf);
            assert_eq!(&get_op(&mut r).unwrap(), op);
            r.finish().unwrap();
        }
    }

    #[test]
    fn signature_codec_round_trips_and_rejects_garbage() {
        let sig = sample_sig(5);
        let mut w = Writer::new();
        put_mss(&mut w, &sig);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        let back = get_mss(&mut r).unwrap();
        assert_eq!(back.leaf_index, sig.leaf_index);
        assert_eq!(back.auth_path, sig.auth_path);
        assert_eq!(back.wots.to_bytes(), sig.wots.to_bytes());

        let mut r = Reader::new(&buf[..buf.len() - 1]);
        assert!(get_mss(&mut r).is_err());
    }

    #[test]
    fn response_codec_round_trips_byte_identically() {
        let mut server = HonestServer::new(&ProtocolConfig::default());
        server.handle_op(0, &Op::Put(u64_key(1), b"a".to_vec()), 0);
        let resp = server.handle_op(1, &Op::Get(u64_key(1)), 1);
        let bytes = response_bytes(&resp);
        let mut r = Reader::new(&bytes);
        let back = get_response(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(response_bytes(&back), bytes, "encode∘decode is identity");
        assert_eq!(back.ctr, resp.ctr);
        assert_eq!(back.result, resp.result);
        assert_eq!(back.vo.root_digest(), resp.vo.root_digest());
    }

    #[test]
    fn event_codec_round_trips_spans() {
        let ctx = SpanContext::root(3, 9).child(4);
        let ev = Event::new(7, EventKind::Recovery, 3)
            .detail("replayed=12")
            .span(ctx);
        let mut w = Writer::new();
        put_event(&mut w, &ev);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert_eq!(get_event(&mut r).unwrap(), ev);
        r.finish().unwrap();
    }

    #[test]
    fn durable_state_round_trips() {
        let config = ProtocolConfig::default();
        let mut server = HonestServer::new(&config);
        let mut journal = Vec::new();
        for i in 0..10u64 {
            let resp = server.handle_op((i % 2) as u32, &Op::Put(u64_key(i), vec![i as u8]), i);
            journal.push(((i % 2) as u32, i, resp));
        }
        server.deposit_signature(
            0,
            SignedState {
                signer: 0,
                root: server.core().root_digest(),
                ctr: 10,
                sig: sample_sig(1),
            },
        );
        let state = DurableState {
            snapshot: server.core().crash_snapshot(),
            journal,
            evidence: vec![b"TCVSEVB1-bundle-bytes".to_vec()],
        };
        let bytes = state.to_bytes();
        let back = DurableState::from_bytes(&bytes).unwrap();
        assert_eq!(back.snapshot.root_digest(), state.snapshot.root_digest());
        assert_eq!(back.snapshot.ctr(), state.snapshot.ctr());
        assert!(back.snapshot.last_sig().is_some());
        assert_eq!(back.evidence, state.evidence);
        assert_eq!(back.journal.len(), 10);
        for ((u1, s1, r1), (u2, s2, r2)) in back.journal.iter().zip(state.journal.iter()) {
            assert_eq!((u1, s1), (u2, s2));
            assert_eq!(response_bytes(r1), response_bytes(r2));
        }

        // Corruption in the database bytes is rejected by digest re-check.
        let mut bad = bytes.clone();
        let idx = bad.len() - 3;
        bad[idx] ^= 0x40;
        assert!(DurableState::from_bytes(&bad).is_err());
    }
}
