//! Kill-anywhere crash smoke test over the real filesystem.
//!
//! Orchestrator mode (`crash_smoke <dir> <rounds>`) spawns itself in worker
//! mode, lets the worker append durable operations for a pseudo-random few
//! milliseconds, SIGKILLs it, recovers the store in-process, and verifies
//! the recovered world against an in-memory oracle that replays the same
//! deterministic op stream. Repeats for `<rounds>` rounds; any divergence,
//! corruption stop, or recovery failure exits nonzero.
//!
//! Worker mode (`crash_smoke worker <dir>`) recovers the store, then
//! applies ops `f(ctr), f(ctr+1), …` forever — the op stream is a pure
//! function of the op index, so the oracle can reconstruct the full history
//! from the recovered counter alone.

use std::process::{Command, Stdio};
use std::time::Duration;

use tcvs_core::{ProtocolConfig, ServerApi, ServerCore};
use tcvs_merkle::{u64_key, Op};
use tcvs_storage::{
    response_bytes, DurabilityOptions, DurableOptions, DurableServer, DurableStorage, FileMedium,
    StorageObs,
};

fn config() -> ProtocolConfig {
    ProtocolConfig {
        order: 4,
        k: 4,
        epoch_len: 64,
    }
}

/// The deterministic op stream: op index → (user, seq, op, round).
fn scripted(j: u64) -> (u32, u64, Op, u64) {
    let user = (j % 3) as u32;
    let op = match j % 4 {
        0 => Op::Put(u64_key(j % 97), vec![(j % 251) as u8; 5]),
        1 => Op::Get(u64_key((j + 13) % 97)),
        2 => Op::Put(u64_key((j + 31) % 97), vec![(j % 13) as u8]),
        _ => Op::Delete(u64_key((j + 7) % 97)),
    };
    (user, j, op, j)
}

fn open(dir: &str) -> Result<DurableServer<DurableStorage<FileMedium>>, String> {
    let medium = FileMedium::open(dir).map_err(|e| format!("open medium: {e}"))?;
    let opts = DurableOptions {
        segment_bytes: 8 * 1024,
        retain_checkpoints: 2,
    };
    let store = DurableStorage::open(medium, opts);
    DurableServer::open(
        store,
        config(),
        // No salvage override: a SIGKILL must never corrupt the log, so a
        // corrupt-stop refusal here is exactly the failure the smoke test
        // exists to catch.
        DurabilityOptions {
            checkpoint_every: 16,
            ..DurabilityOptions::default()
        },
        StorageObs::disabled(),
    )
    .map_err(|e| format!("open server: {e}"))
}

fn worker(dir: &str) -> Result<(), String> {
    let mut server = open(dir)?;
    let mut j = server.core().ctr();
    loop {
        let (user, seq, op, round) = scripted(j);
        server
            .apply(user, seq, &op, round)
            .map_err(|e| format!("apply {j}: {e}"))?;
        j += 1;
    }
}

fn orchestrate(dir: &str, rounds: u64) -> Result<(), String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut max_ctr = 0u64;
    for round in 0..rounds {
        let mut child = Command::new(&exe)
            .arg("worker")
            .arg(dir)
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| format!("spawn worker: {e}"))?;
        // A different kill point every round: the crash lands before the
        // first op, mid-append, mid-fsync, mid-checkpoint, …
        std::thread::sleep(Duration::from_millis(15 + (round * 7) % 60));
        child.kill().map_err(|e| format!("kill worker: {e}"))?; // SIGKILL
        child.wait().map_err(|e| format!("wait worker: {e}"))?;

        let server = open(dir)?;
        let report = server.last_recovery().clone();
        if let Some(stop) = &report.corrupt_stop {
            return Err(format!("round {round}: recovery hit corruption: {stop}"));
        }
        let ctr = server.core().ctr();
        if ctr < max_ctr {
            return Err(format!(
                "round {round}: recovered ctr {ctr} regressed below {max_ctr}"
            ));
        }
        max_ctr = ctr;

        // Oracle: replay the scripted stream from genesis in memory; the
        // recovered server must be indistinguishable from one that never
        // crashed, and journal replies must be byte-identical.
        let journal = server.recovered_journal().unwrap_or_default();
        let mut oracle = ServerCore::new(&config());
        let mut wanted: Vec<(u64, Vec<u8>)> = Vec::new();
        for j in 0..ctr {
            let (user, seq, op, round_no) = scripted(j);
            let resp = oracle.process(user, &op, round_no);
            if journal.iter().any(|(_, s, _)| *s == seq) {
                wanted.push((seq, response_bytes(&resp)));
            }
        }
        if server.core().root_digest() != oracle.root_digest() {
            return Err(format!(
                "round {round}: recovered root diverges from oracle at ctr {ctr}"
            ));
        }
        for (user, seq, resp) in &journal {
            let Some((_, oracle_bytes)) = wanted.iter().find(|(s, _)| s == seq) else {
                return Err(format!(
                    "round {round}: journal entry for user {user} seq {seq} beyond ctr {ctr}"
                ));
            };
            if &response_bytes(resp) != oracle_bytes {
                return Err(format!(
                    "round {round}: journal reply for user {user} seq {seq} not byte-identical"
                ));
            }
        }
        println!(
            "round {round}: recovered ctr={ctr} replayed={} torn_tail={} — ok",
            report.records_replayed,
            report.torn_tail.is_some(),
        );
    }
    println!("crash-smoke: {rounds} kill -9 rounds survived, final ctr {max_ctr}");
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let result = match args.get(1).map(String::as_str) {
        Some("worker") => match args.get(2) {
            Some(dir) => worker(dir),
            None => Err("usage: crash_smoke worker <dir>".into()),
        },
        Some(dir) => {
            let rounds = args.get(2).and_then(|r| r.parse().ok()).unwrap_or(25);
            orchestrate(dir, rounds)
        }
        None => Err("usage: crash_smoke <dir> [rounds] | crash_smoke worker <dir>".into()),
    };
    if let Err(msg) = result {
        eprintln!("crash-smoke FAILED: {msg}");
        std::process::exit(1);
    }
}
