//! The durable server engine: [`tcvs_core::ServerApi`] over a [`Storage`].
//!
//! [`DurableServer`] wraps the deterministic [`ServerCore`] with
//! write-ahead discipline: every state-changing message — operation,
//! signature deposit, epoch-state deposit, audited checkpoint, plus any
//! flight-recorder frames emitted since the previous commit — is committed
//! to the log (one append, one fsync) *before* the core applies it and the
//! response leaves the process. A crash at any instant therefore loses at
//! most work that was never acknowledged.
//!
//! Because the core is deterministic, the log carries only inputs (see
//! [`Record`]): recovery restores the newest checkpoint and replays the
//! tail through the same [`ServerCore::process`] path, regenerating every
//! response — including the reply-journal entries the transport
//! acknowledged — byte-identically.
//!
//! Commit failures are crash-stop: the [`tcvs_core::ServerApi`] entry
//! points panic rather than acknowledge an op that was never made durable.
//! The fallible [`DurableServer::apply`] exists for harnesses that inject
//! storage faults and want the error back instead.

use std::collections::HashMap;
use std::sync::Arc;

use tcvs_core::{
    Ctr, Digest, Epoch, ProtocolConfig, ReadSnapshot, ServerApi, ServerCore, ServerMetrics,
    ServerResponse, SignedCheckpoint, SignedEpochState, SignedState, UserId,
};
use tcvs_merkle::{ChunkAssembler, ChunkManifest, Op};
use tcvs_obs::{Counter, Event, EventKind, MetricsRegistry, Tracer};

use crate::codec::DurableState;
use crate::error::StorageError;
use crate::record::{JournalEntry, Record, NO_SEQ};
use crate::storage::{RecoveryReport, Storage, WriteBatch};

/// Tuning knobs for [`DurableServer`].
#[derive(Clone, Copy, Debug)]
pub struct DurabilityOptions {
    /// Take a checkpoint after this many committed operations (0 disables
    /// automatic checkpoints; [`DurableServer::checkpoint_now`] still works).
    pub checkpoint_every: u64,
    /// Serve even when recovery stopped at interior log corruption
    /// ([`RecoveryReport::corrupt_stop`]). Off by default: a corrupt stop
    /// means acknowledged operations may be lost, so [`DurableServer::open`]
    /// and [`tcvs_core::ServerApi::crash_restart`] fail with
    /// [`StorageError::Unrecoverable`] and an operator must opt in before
    /// the server resumes from the salvaged prefix. The storage layer has
    /// already quarantined everything past the stop point either way, so a
    /// salvage restart continues on a single consistent timeline.
    pub salvage_corruption: bool,
}

impl Default for DurabilityOptions {
    fn default() -> DurabilityOptions {
        DurabilityOptions {
            checkpoint_every: 256,
            salvage_corruption: false,
        }
    }
}

/// Storage-engine observability: tracer plus commit/recovery counters.
pub struct StorageObs {
    /// Event tracer (recovery events are emitted through it).
    pub tracer: Tracer,
    registry: Arc<MetricsRegistry>,
    commits: Arc<Counter>,
    checkpoints: Arc<Counter>,
    recoveries: Arc<Counter>,
    recovery_replayed: Arc<Counter>,
    torn_tail_dropped_bytes: Arc<Counter>,
    stale_segments_quarantined: Arc<Counter>,
}

impl StorageObs {
    /// Observability wired to `tracer` and a fresh registry.
    pub fn new(tracer: Tracer) -> StorageObs {
        let registry = Arc::new(MetricsRegistry::new());
        StorageObs {
            commits: registry.counter("storage.commits"),
            checkpoints: registry.counter("storage.checkpoints"),
            recoveries: registry.counter("storage.recoveries"),
            recovery_replayed: registry.counter("storage.recovery_replayed"),
            torn_tail_dropped_bytes: registry.counter("storage.torn_tail_dropped_bytes"),
            stale_segments_quarantined: registry.counter("storage.stale_segments_quarantined"),
            registry,
            tracer,
        }
    }

    /// No-op observability.
    pub fn disabled() -> StorageObs {
        StorageObs::new(Tracer::disabled())
    }

    /// The metrics registry (for export/snapshot).
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }
}

/// A crash-safe server: [`ServerCore`] behind a write-ahead log (see
/// module docs).
pub struct DurableServer<S: Storage> {
    storage: S,
    core: ServerCore,
    config: ProtocolConfig,
    opts: DurabilityOptions,
    obs: StorageObs,
    /// Mirror of the transport's exactly-once journal: the latest
    /// `(seq, response)` per user, regenerated on recovery.
    journal: HashMap<UserId, (u64, ServerResponse)>,
    /// High-water mark of flight events already committed to the log.
    flight_drained: u64,
    ops_since_checkpoint: u64,
    last_report: RecoveryReport,
    /// Flight events recovered from the log tail (the checkpoint's own
    /// tail lives in the snapshot).
    recovered_flight: Vec<Event>,
    /// Every persisted deviation evidence bundle (checkpoint + log tail +
    /// bundles persisted this incarnation), opaque canonical bytes.
    evidence: Vec<Vec<u8>>,
}

impl<S: Storage> DurableServer<S> {
    /// Opens the engine: recovers from `storage` (checkpoint + replay) or
    /// starts fresh from `config` when the storage is empty.
    pub fn open(
        storage: S,
        config: ProtocolConfig,
        opts: DurabilityOptions,
        obs: StorageObs,
    ) -> Result<DurableServer<S>, StorageError> {
        let mut server = DurableServer {
            storage,
            core: ServerCore::new(&config),
            config,
            opts,
            obs,
            journal: HashMap::new(),
            flight_drained: 0,
            ops_since_checkpoint: 0,
            last_report: RecoveryReport::default(),
            recovered_flight: Vec::new(),
            evidence: Vec::new(),
        };
        server.recover()?;
        Ok(server)
    }

    /// Opens the engine from a **verified chunk stream** instead of local
    /// disk: disaster recovery for a node whose storage is empty or gone.
    ///
    /// The manifest and each chunk (fetched from any peer over any
    /// transport — `fetch(index)` returns the chunk's bytes) are verified
    /// against `expected_anchor` before a single byte is admitted; the
    /// assembled tree must recompute to the anchor exactly, and the
    /// resulting core is checkpointed to `storage` immediately so
    /// subsequent restarts recover locally through the normal
    /// [`DurableServer::open`] path.
    ///
    /// Refuses non-empty storage: a checkpoint or log tail on disk means
    /// this node already has durable state, and silently replacing it with
    /// a remote snapshot could discard acknowledged operations. Wipe the
    /// storage (an explicit operator action) before bootstrapping.
    #[allow(clippy::too_many_arguments)]
    pub fn open_from_chunks(
        storage: S,
        config: ProtocolConfig,
        opts: DurabilityOptions,
        obs: StorageObs,
        expected_anchor: &Digest,
        ctr: Ctr,
        manifest_bytes: &[u8],
        mut fetch: impl FnMut(u32) -> Option<Vec<u8>>,
    ) -> Result<DurableServer<S>, StorageError> {
        let manifest = ChunkManifest::from_bytes(manifest_bytes)
            .map_err(|e| StorageError::Bootstrap(format!("manifest rejected: {e}")))?;
        if manifest.anchor != *expected_anchor {
            return Err(StorageError::Bootstrap(
                "manifest anchor does not match the expected root".into(),
            ));
        }
        let mut assembler = ChunkAssembler::new(manifest)
            .map_err(|e| StorageError::Bootstrap(format!("manifest rejected: {e}")))?;
        for index in assembler.missing() {
            let bytes = fetch(index)
                .ok_or_else(|| StorageError::Bootstrap(format!("chunk {index} unavailable")))?;
            assembler
                .admit(index, &bytes)
                .map_err(|e| StorageError::Bootstrap(format!("chunk {index} rejected: {e}")))?;
        }
        let tree = assembler
            .finish()
            .map_err(|e| StorageError::Bootstrap(format!("assembly rejected: {e}")))?;
        let core = ServerCore::from_verified_state(tree, ctr, &config)
            .map_err(|e| StorageError::Bootstrap(format!("verified state rejected: {e}")))?;

        let mut server = DurableServer {
            storage,
            core,
            config,
            opts,
            obs,
            journal: HashMap::new(),
            flight_drained: 0,
            ops_since_checkpoint: 0,
            last_report: RecoveryReport::default(),
            recovered_flight: Vec::new(),
            evidence: Vec::new(),
        };
        let found = server.storage.recover()?;
        if found.checkpoint.is_some()
            || !found.tail.is_empty()
            || found.report.corrupt_stop.is_some()
        {
            return Err(StorageError::Bootstrap(
                "storage already holds durable state; refusing to overwrite it with a \
                 remote snapshot — wipe the storage first"
                    .into(),
            ));
        }
        server.checkpoint_now()?;
        server.obs.tracer.emit(|| {
            Event::new(
                server.core.ctr(),
                EventKind::Recovery,
                server.core.last_user(),
            )
            .detail("bootstrap: restored from verified chunk stream".to_string())
        });
        Ok(server)
    }

    /// Runs recovery against the storage, replacing the in-memory world
    /// with what was durable. Keeps the attached flight recorder (the live
    /// ring is host-side infrastructure, not server state).
    fn recover(&mut self) -> Result<(), StorageError> {
        let recorder = self.core.flight_recorder();
        let mut recovered = self.storage.recover()?;
        if let Some(stop) = &recovered.report.corrupt_stop {
            if !self.opts.salvage_corruption {
                // Crash-stop discipline, mirrored: committing refuses to
                // acknowledge what is not durable, and recovery refuses to
                // serve from a log that *lost* something durable. The log
                // is left exactly as found; an operator restarts with
                // `salvage_corruption` to accept the loss explicitly.
                return Err(StorageError::Unrecoverable(format!(
                    "interior log corruption ({stop}); acknowledged operations past the stop \
                     point are lost — restart with DurabilityOptions::salvage_corruption to \
                     serve from the surviving prefix"
                )));
            }
            // The operator accepted the loss: make the discard durable
            // (quarantine the stale suffix, truncate the stopped segment)
            // and rebuild from the salvaged log.
            recovered = self.storage.salvage()?;
        }
        self.journal.clear();
        self.recovered_flight.clear();
        self.evidence.clear();
        self.core = match &recovered.checkpoint {
            Some((_, state)) => {
                let ds = DurableState::from_bytes(state)?;
                for (user, seq, resp) in ds.journal {
                    self.journal.insert(user, (seq, resp));
                }
                self.evidence = ds.evidence;
                ServerCore::crash_restore(&ds.snapshot)
                    .map_err(|_| StorageError::io("checkpoint snapshot rejected"))?
            }
            None => ServerCore::new(&self.config),
        };
        for (_lsn, rec) in recovered.tail {
            match rec {
                Record::Op {
                    user,
                    seq,
                    op,
                    round,
                } => {
                    let resp = self.core.process(user, &op, round);
                    if seq != NO_SEQ {
                        self.journal.insert(user, (seq, resp));
                    }
                }
                Record::Signature(s) => self.core.store_signature(s),
                Record::EpochState(s) => self.core.store_epoch_state(s),
                Record::AuditCheckpoint(c) => self.core.store_checkpoint(c),
                Record::Flight(ev) => self.recovered_flight.push(ev),
                Record::Evidence(bytes) => self.evidence.push(bytes),
            }
        }
        if let Some(r) = recorder {
            self.core.attach_flight_recorder(Arc::clone(&r));
            self.flight_drained = r.recorded();
        } else {
            self.flight_drained = 0;
        }
        self.ops_since_checkpoint = 0;
        let report = recovered.report;
        self.obs.recoveries.inc();
        self.obs.recovery_replayed.add(report.records_replayed);
        if let Some(tt) = &report.torn_tail {
            self.obs.torn_tail_dropped_bytes.add(tt.dropped_bytes);
        }
        self.obs
            .stale_segments_quarantined
            .add(report.stale_segments_quarantined);
        self.obs.tracer.emit(|| {
            Event::new(self.core.ctr(), EventKind::Recovery, self.core.last_user()).detail(format!(
                "replayed={} torn={} corrupt_ckpts={}",
                report.records_replayed,
                report.torn_tail.is_some(),
                report.corrupt_checkpoints
            ))
        });
        self.last_report = report;
        Ok(())
    }

    /// Attaches an always-on flight recorder; frames it captures are
    /// committed to the log alongside the ops that caused them, so the
    /// black box survives real (process-death) crashes.
    pub fn attach_flight_recorder(&mut self, recorder: Arc<tcvs_obs::FlightRecorder>) {
        self.flight_drained = recorder.recorded();
        self.core.attach_flight_recorder(recorder);
    }

    /// Read access to the core (tests, oracles).
    pub fn core(&self) -> &ServerCore {
        &self.core
    }

    /// The storage backend.
    pub fn storage(&self) -> &S {
        &self.storage
    }

    /// What the most recent recovery saw.
    pub fn last_recovery(&self) -> &RecoveryReport {
        &self.last_report
    }

    /// Flight-recorder frames recovered from the log tail at the last
    /// recovery (oldest first). Frames older than the last checkpoint live
    /// in the snapshot instead ([`tcvs_core::ServerSnapshot::flight_events`]).
    pub fn recovered_flight(&self) -> &[Event] {
        &self.recovered_flight
    }

    /// Storage observability (metrics registry, tracer).
    pub fn obs(&self) -> &StorageObs {
        &self.obs
    }

    /// Persists a captured deviation evidence bundle through the same
    /// atomic-commit path as operations: logged and fsynced before the call
    /// returns, carried forward by every subsequent checkpoint, so the
    /// incident artifact survives crashes and log pruning alike. The bytes
    /// are stored opaquely — the bundle's own integrity digest, not the
    /// engine, vouches for them.
    pub fn persist_evidence(&mut self, bundle: Vec<u8>) -> Result<(), StorageError> {
        self.commit(Record::Evidence(bundle.clone()))?;
        self.evidence.push(bundle);
        Ok(())
    }

    /// Every evidence bundle this durable world holds (recovered from the
    /// checkpoint and log tail, plus any persisted this incarnation),
    /// oldest first.
    pub fn evidence_bundles(&self) -> &[Vec<u8>] {
        &self.evidence
    }

    /// Stages flight frames recorded since the last commit. The ring holds
    /// the newest `capacity` frames, so a burst larger than the ring between
    /// two commits loses its oldest frames — same contract as the ring
    /// itself.
    fn drain_flight(&mut self, batch: &mut WriteBatch) {
        let Some(r) = self.core.flight_recorder() else {
            return;
        };
        let total = r.recorded();
        if total <= self.flight_drained {
            return;
        }
        let tail = r.snapshot();
        let fresh = (total - self.flight_drained) as usize;
        let start = tail.len().saturating_sub(fresh);
        for ev in &tail[start..] {
            batch.push(Record::Flight(ev.clone()));
        }
        self.flight_drained = total;
    }

    /// Commits `rec` (plus pending flight frames) durably.
    fn commit(&mut self, rec: Record) -> Result<(), StorageError> {
        let mut batch = WriteBatch::new();
        batch.push(rec);
        self.drain_flight(&mut batch);
        self.storage.commit(batch)?;
        self.obs.commits.inc();
        Ok(())
    }

    /// The fallible op path: log → sync → apply → journal. This is
    /// [`tcvs_core::ServerApi::handle_op_seq`] with the storage error
    /// surfaced instead of panicking — for fault-injection harnesses.
    pub fn apply(
        &mut self,
        user: UserId,
        seq: u64,
        op: &Op,
        round: u64,
    ) -> Result<ServerResponse, StorageError> {
        self.commit(Record::Op {
            user,
            seq,
            op: op.clone(),
            round,
        })?;
        let resp = self.core.process(user, op, round);
        if seq != NO_SEQ {
            self.journal.insert(user, (seq, resp.clone()));
        }
        self.ops_since_checkpoint += 1;
        if self.opts.checkpoint_every > 0 && self.ops_since_checkpoint >= self.opts.checkpoint_every
        {
            self.checkpoint_now()?;
        }
        Ok(resp)
    }

    /// Takes a checkpoint immediately: persists the full durable world
    /// (server snapshot + reply journal) and lets the storage prune the log
    /// behind it.
    pub fn checkpoint_now(&mut self) -> Result<u64, StorageError> {
        let mut journal: Vec<JournalEntry> = self
            .journal
            .iter()
            .map(|(u, (s, r))| (*u, *s, r.clone()))
            .collect();
        journal.sort_by_key(|(u, _, _)| *u);
        let state = DurableState {
            snapshot: self.core.crash_snapshot(),
            journal,
            evidence: self.evidence.clone(),
        };
        let lsn = self.storage.checkpoint(&state.to_bytes())?;
        self.obs.checkpoints.inc();
        self.ops_since_checkpoint = 0;
        Ok(lsn)
    }
}

impl<S: Storage> ServerApi for DurableServer<S> {
    fn handle_op(&mut self, user: UserId, op: &Op, round: u64) -> ServerResponse {
        self.handle_op_seq(user, NO_SEQ, op, round)
    }

    fn handle_op_seq(&mut self, user: UserId, seq: u64, op: &Op, round: u64) -> ServerResponse {
        // Crash-stop: acknowledging an op that is not durable would break
        // the recovery contract, so a commit failure is fatal here.
        self.apply(user, seq, op, round)
            .expect("durable commit failed; refusing to acknowledge")
    }

    fn deposit_signature(&mut self, _user: UserId, s: SignedState) {
        self.commit(Record::Signature(s.clone()))
            .expect("durable commit failed; refusing to acknowledge");
        self.core.store_signature(s);
    }

    fn deposit_epoch_state(&mut self, s: SignedEpochState) {
        self.commit(Record::EpochState(s.clone()))
            .expect("durable commit failed; refusing to acknowledge");
        self.core.store_epoch_state(s);
    }

    fn fetch_epoch_states(&mut self, _requester: UserId, epoch: Epoch) -> Vec<SignedEpochState> {
        self.core.epoch_states(epoch)
    }

    fn deposit_checkpoint(&mut self, c: SignedCheckpoint) {
        self.commit(Record::AuditCheckpoint(c.clone()))
            .expect("durable commit failed; refusing to acknowledge");
        self.core.store_checkpoint(c);
    }

    fn fetch_checkpoint(&mut self, _requester: UserId, epoch: Epoch) -> Option<SignedCheckpoint> {
        self.core.checkpoint(epoch)
    }

    fn metrics(&self) -> ServerMetrics {
        self.core.metrics()
    }

    /// A *real* crash-restart: all volatile state is dropped and the world
    /// is rebuilt from storage alone (checkpoint + log replay), unlike the
    /// in-memory [`tcvs_core::HonestServer`] whose restart round-trips
    /// through a snapshot it conveniently still holds.
    fn crash_restart(&mut self) {
        self.recover().expect("recovery after crash");
    }

    fn read_snapshot(&self) -> Option<ReadSnapshot> {
        Some(self.core.read_snapshot())
    }

    fn recovered_journal(&self) -> Option<Vec<JournalEntry>> {
        let mut out: Vec<JournalEntry> = self
            .journal
            .iter()
            .map(|(u, (s, r))| (*u, *s, r.clone()))
            .collect();
        out.sort_by_key(|(u, _, _)| *u);
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::response_bytes;
    use crate::medium::{Medium, MemMedium};
    use crate::storage::{DurableOptions, DurableStorage, MemStorage};
    use tcvs_merkle::u64_key;

    fn config() -> ProtocolConfig {
        ProtocolConfig {
            order: 4,
            k: 4,
            epoch_len: 10,
        }
    }

    fn op(i: u64) -> Op {
        match i % 3 {
            0 => Op::Put(u64_key(i % 17), vec![i as u8; 3]),
            1 => Op::Get(u64_key((i + 5) % 17)),
            _ => Op::Delete(u64_key((i + 11) % 17)),
        }
    }

    fn durable(mem: &MemMedium, every: u64) -> DurableServer<DurableStorage<MemMedium>> {
        let store = DurableStorage::open(mem.clone(), DurableOptions::default());
        DurableServer::open(
            store,
            config(),
            DurabilityOptions {
                checkpoint_every: every,
                ..DurabilityOptions::default()
            },
            StorageObs::disabled(),
        )
        .unwrap()
    }

    #[test]
    fn mem_backend_behaves_like_honest_server() {
        let mut durable = DurableServer::open(
            MemStorage::new(),
            config(),
            DurabilityOptions::default(),
            StorageObs::disabled(),
        )
        .unwrap();
        let mut honest = tcvs_core::HonestServer::new(&config());
        for i in 0..40 {
            let a = durable.handle_op_seq((i % 3) as u32, i, &op(i), i);
            let b = honest.handle_op((i % 3) as u32, &op(i), i);
            assert_eq!(response_bytes(&a), response_bytes(&b));
        }
        assert_eq!(durable.core().root_digest(), honest.core().root_digest());
    }

    #[test]
    fn crash_restart_recovers_from_storage_alone() {
        let mem = MemMedium::new();
        let mut s = durable(&mem, 8);
        let mut acked = Vec::new();
        for i in 0..30 {
            acked.push(response_bytes(&s.handle_op_seq(
                (i % 3) as u32,
                i,
                &op(i),
                i,
            )));
        }
        let root = s.core().root_digest();
        let ctr = s.core().ctr();
        s.crash_restart();
        assert_eq!(s.core().root_digest(), root);
        assert_eq!(s.core().ctr(), ctr);
        // The journal regenerated byte-identical replies for the last ack
        // of each user.
        let journal = s.recovered_journal().unwrap();
        assert_eq!(journal.len(), 3);
        for (user, seq, resp) in journal {
            assert_eq!(seq, 27 + user as u64);
            assert_eq!(response_bytes(&resp), acked[seq as usize]);
        }
        // And the server keeps serving correctly.
        let r = s.handle_op_seq(0, 30, &op(30), 30);
        assert_eq!(r.ctr, 30);
    }

    #[test]
    fn process_death_loses_nothing_acknowledged() {
        let mem = MemMedium::new();
        let mut s = durable(&mem, 10);
        for i in 0..25 {
            s.handle_op_seq((i % 3) as u32, i, &op(i), i);
        }
        let root = s.core().root_digest();
        drop(s); // process death: all volatile state gone
        mem.crash(); // and the page cache with it
        let s2 = durable(&mem, 10);
        assert_eq!(s2.core().root_digest(), root);
        assert_eq!(s2.core().ctr(), 25);
        assert!(s2.last_recovery().corrupt_stop.is_none());
    }

    #[test]
    fn deposits_survive_a_real_crash() {
        let (mut rings, _) = tcvs_crypto::setup_users([7; 32], 1, 4);
        let mem = MemMedium::new();
        let mut s = durable(&mem, 100);
        s.handle_op_seq(0, 0, &op(0), 0);
        let root = s.core().root_digest();
        let payload = tcvs_core::state::signed_payload(&root, 1);
        s.deposit_signature(
            0,
            SignedState {
                signer: 0,
                root,
                ctr: 1,
                sig: rings[0].sign(&payload).unwrap(),
            },
        );
        drop(s);
        mem.crash();
        let mut s2 = durable(&mem, 100);
        // The deposit is served back on the very next op.
        let r = s2.handle_op_seq(1, 1, &op(1), 1);
        assert!(r.sig.is_some(), "Protocol I deposit survived the crash");
        assert_eq!(r.sig.unwrap().root, root);
    }

    #[test]
    fn flight_frames_survive_a_real_crash() {
        let mem = MemMedium::new();
        let mut s = durable(&mem, 100);
        let (tracer, recorder) = Tracer::flight(8);
        s.attach_flight_recorder(Arc::clone(&recorder));
        for i in 0..6 {
            tracer.emit(|| Event::new(i, EventKind::OpServed, 0).detail(format!("op {i}")));
            s.handle_op_seq(0, i, &op(i), i);
        }
        drop(s);
        mem.crash();
        let s2 = durable(&mem, 100);
        let ts: Vec<u64> = s2.recovered_flight().iter().map(|e| e.t).collect();
        assert_eq!(ts, vec![0, 1, 2, 3, 4, 5], "black box survived the crash");
    }

    #[test]
    fn evidence_survives_a_real_crash_and_checkpoint_pruning() {
        let mem = MemMedium::new();
        let mut s = durable(&mem, 5);
        s.handle_op_seq(0, 0, &op(0), 0);
        s.persist_evidence(b"TCVSEVB1-incident-one".to_vec())
            .unwrap();
        // Push enough ops to force checkpoints (log pruned behind them).
        for i in 1..20 {
            s.handle_op_seq((i % 3) as u32, i, &op(i), i);
        }
        s.persist_evidence(b"TCVSEVB1-incident-two".to_vec())
            .unwrap();
        drop(s);
        mem.crash();
        let s2 = durable(&mem, 5);
        assert_eq!(
            s2.evidence_bundles(),
            &[
                b"TCVSEVB1-incident-one".to_vec(),
                b"TCVSEVB1-incident-two".to_vec()
            ],
            "both bundles survived crash + pruning, oldest first"
        );
    }

    #[test]
    fn checkpoints_bound_replay() {
        let mem = MemMedium::new();
        let mut s = durable(&mem, 5);
        for i in 0..23 {
            s.handle_op_seq((i % 3) as u32, i, &op(i), i);
        }
        drop(s);
        mem.crash();
        let s2 = durable(&mem, 5);
        assert_eq!(s2.core().ctr(), 23);
        assert!(
            s2.last_recovery().records_replayed <= 5,
            "checkpoint bounds the tail: {:?}",
            s2.last_recovery()
        );
    }

    #[test]
    fn interior_corruption_refuses_to_serve_without_salvage() {
        let mem = MemMedium::new();
        let mut s = durable(&mem, 100);
        for i in 0..6 {
            s.handle_op_seq(0, i, &op(i), i);
        }
        drop(s);
        // Flip a payload bit of the 4th record: interior corruption that
        // loses acknowledged operations 3..6.
        let name = crate::log::segment_name(0);
        let mut buf = mem.read(&name).unwrap().unwrap();
        let scan = crate::log::scan(&buf, 0);
        let offset: u64 = scan.records[..3]
            .iter()
            .map(|(_, _, body)| crate::log::frame_len(body.len()))
            .sum();
        buf[offset as usize + crate::log::HEADER_LEN] ^= 0x01;
        let mut raw = mem.clone();
        raw.write_atomic(&name, &buf).unwrap();

        // Default options: the open fails loudly instead of silently
        // serving from the rolled-back prefix.
        let store = DurableStorage::open(mem.clone(), DurableOptions::default());
        match DurableServer::open(
            store,
            config(),
            DurabilityOptions::default(),
            StorageObs::disabled(),
        ) {
            Err(StorageError::Unrecoverable(msg)) => {
                assert!(
                    msg.contains("salvage"),
                    "points the operator at the knob: {msg}"
                )
            }
            Ok(_) => panic!("open must fail on interior corruption"),
            Err(other) => panic!("expected Unrecoverable, got {other:?}"),
        }

        // Explicit salvage serves the surviving prefix.
        let store = DurableStorage::open(mem, DurableOptions::default());
        let s2 = DurableServer::open(
            store,
            config(),
            DurabilityOptions {
                checkpoint_every: 100,
                salvage_corruption: true,
            },
            StorageObs::disabled(),
        )
        .unwrap();
        assert!(s2.last_recovery().corrupt_stop.is_some());
        assert_eq!(s2.core().ctr(), 3, "exactly the prefix before the flip");
    }

    #[test]
    fn metrics_count_commits_and_recoveries() {
        let mem = MemMedium::new();
        let store = DurableStorage::open(mem.clone(), DurableOptions::default());
        let mut s = DurableServer::open(
            store,
            config(),
            DurabilityOptions {
                checkpoint_every: 4,
                ..DurabilityOptions::default()
            },
            StorageObs::new(Tracer::disabled()),
        )
        .unwrap();
        for i in 0..9 {
            s.handle_op_seq(0, i, &op(i), i);
        }
        s.crash_restart();
        let snap = s.obs().registry().snapshot();
        assert_eq!(snap.counter("storage.commits"), Some(9));
        assert_eq!(snap.counter("storage.checkpoints"), Some(2));
        assert_eq!(snap.counter("storage.recoveries"), Some(2), "open + crash");
    }

    /// A populated source server, plus the chunk stream a peer would serve.
    fn chunk_stream(n_ops: u64) -> (DurableServer<MemStorage>, tcvs_merkle::ChunkSource, Ctr) {
        let mut src = DurableServer::open(
            MemStorage::new(),
            config(),
            DurabilityOptions::default(),
            StorageObs::disabled(),
        )
        .unwrap();
        for i in 0..n_ops {
            src.handle_op_seq((i % 3) as u32, i, &op(i), i);
        }
        let snap = ServerApi::read_snapshot(&src).unwrap();
        let source = tcvs_merkle::ChunkSource::new(snap.db(), 256).unwrap();
        let ctr = snap.ctr();
        (src, source, ctr)
    }

    #[test]
    fn open_from_chunks_restores_and_checkpoints_locally() {
        let (src, source, ctr) = chunk_stream(50);
        let mem = MemMedium::new();
        let store = DurableStorage::open(mem.clone(), DurableOptions::default());
        let manifest = source.manifest().to_bytes();
        let mut restored = DurableServer::open_from_chunks(
            store,
            config(),
            DurabilityOptions::default(),
            StorageObs::disabled(),
            &source.manifest().anchor,
            ctr,
            &manifest,
            |i| source.chunk(i),
        )
        .unwrap();
        assert_eq!(restored.core().root_digest(), src.core().root_digest());
        assert_eq!(restored.core().ctr(), ctr);

        // The restored node serves ops and stays in lockstep with the
        // source. The very first response differs in one documented way:
        // chunks carry the verified database, not the writer identity, so
        // the restored core reports `last_user = NO_USER` until its first
        // op lands — skip the byte comparison for that op only.
        let mut src = src;
        for i in 50..60 {
            let a = restored.handle_op_seq((i % 3) as u32, i, &op(i), i);
            let b = src.handle_op_seq((i % 3) as u32, i, &op(i), i);
            if i > 50 {
                assert_eq!(response_bytes(&a), response_bytes(&b));
            }
        }
        assert_eq!(restored.core().root_digest(), src.core().root_digest());

        // The bootstrap checkpoint is durable: a normal open() on the same
        // medium recovers the restored state with no chunk stream in sight.
        drop(restored);
        let store = DurableStorage::open(mem.clone(), DurableOptions::default());
        let reopened = DurableServer::open(
            store,
            config(),
            DurabilityOptions::default(),
            StorageObs::disabled(),
        )
        .unwrap();
        assert_eq!(reopened.core().root_digest(), src.core().root_digest());
    }

    #[test]
    fn open_from_chunks_rejects_forged_and_missing_chunks() {
        let (_src, source, ctr) = chunk_stream(40);
        let manifest = source.manifest().to_bytes();
        let anchor = source.manifest().anchor;

        // A single flipped byte in any chunk must be rejected (or be
        // content-neutral codec slack; the assembler decides — here we only
        // require that a *detected* forgery surfaces as Bootstrap).
        let forged = DurableServer::open_from_chunks(
            MemStorage::new(),
            config(),
            DurabilityOptions::default(),
            StorageObs::disabled(),
            &anchor,
            ctr,
            &manifest,
            |i| {
                source.chunk(i).map(|mut b| {
                    let mid = b.len() / 2;
                    b[mid] ^= 0xff;
                    b
                })
            },
        );
        assert!(
            matches!(forged.as_ref().err(), Some(StorageError::Bootstrap(_))),
            "{:?}",
            forged.err()
        );

        // A peer that stops serving mid-stream fails cleanly.
        let cut = DurableServer::open_from_chunks(
            MemStorage::new(),
            config(),
            DurabilityOptions::default(),
            StorageObs::disabled(),
            &anchor,
            ctr,
            &manifest,
            |i| {
                if i + 1 == source.num_chunks() {
                    None
                } else {
                    source.chunk(i)
                }
            },
        );
        assert!(
            matches!(cut.as_ref().err(), Some(StorageError::Bootstrap(_))),
            "{:?}",
            cut.err()
        );

        // An anchor mismatch is refused before any chunk is fetched.
        let wrong = DurableServer::open_from_chunks(
            MemStorage::new(),
            config(),
            DurabilityOptions::default(),
            StorageObs::disabled(),
            &Digest::default(),
            ctr,
            &manifest,
            |_| panic!("no chunk may be fetched under a wrong anchor"),
        );
        assert!(
            matches!(wrong.as_ref().err(), Some(StorageError::Bootstrap(_))),
            "{:?}",
            wrong.err()
        );
    }

    #[test]
    fn open_from_chunks_refuses_nonempty_storage() {
        let (_src, source, ctr) = chunk_stream(20);
        let mem = MemMedium::new();
        {
            let mut s = durable(&mem, 4);
            for i in 0..10 {
                s.handle_op_seq(0, i, &op(i), i);
            }
        }
        let store = DurableStorage::open(mem.clone(), DurableOptions::default());
        let refused = DurableServer::open_from_chunks(
            store,
            config(),
            DurabilityOptions::default(),
            StorageObs::disabled(),
            &source.manifest().anchor,
            ctr,
            &source.manifest().to_bytes(),
            |i| source.chunk(i),
        );
        assert!(
            matches!(refused.as_ref().err(), Some(StorageError::Bootstrap(_))),
            "bootstrap must not clobber existing durable state: {:?}",
            refused.err()
        );
    }
}
