//! The storage abstraction: open → batch → atomic commit → recover.
//!
//! [`Storage`] is the boundary between the server engine and persistence,
//! in the shape of grovedb's storage layer: the engine stages [`Record`]s
//! into a [`WriteBatch`], commits the batch atomically (one append + one
//! fsync), and on restart calls [`Storage::recover`] to get back the
//! newest valid checkpoint plus the log tail after it.
//!
//! Two backends:
//!
//! * [`MemStorage`] — the refactored in-memory maps: same trait, no
//!   durability (a `recover` after drop starts empty). The simulator and
//!   unit tests run on this.
//! * [`DurableStorage`] — the real engine over a [`Medium`]: checksummed
//!   length-prefixed append-only segments ([`crate::log`]), periodic
//!   checkpoint files, segment rotation, and log truncation after
//!   checkpoint.
//!
//! ## Recovery state machine ([`DurableStorage::recover`])
//!
//! 1. **Pick a checkpoint**: try checkpoint files newest-first; the first
//!    one whose frame checksum and body decode verify wins. Corrupt ones
//!    are counted and skipped (that is why two are retained).
//! 2. **Scan the log**: segments in LSN order, each record's checksum and
//!    LSN continuity verified. A *torn* tail (incomplete frame) in the
//!    last segment is the expected crash shape: discard it, note it,
//!    continue. Torn or corrupt frames anywhere else stop the scan — no
//!    record after a hole is trusted.
//! 3. **Re-read on short read**: a scan that stops early retries the read
//!    once; a transient short read heals, a real torn tail does not.
//! 4. **Truncate the torn tail**: the last segment is atomically rewritten
//!    to its valid prefix, so the discarded bytes can never resurface.

use crate::error::StorageError;
use crate::log::{self, SegmentScan, TailStatus};
use crate::medium::Medium;
use crate::record::Record;

/// Records staged for one atomic commit.
#[derive(Default)]
pub struct WriteBatch {
    records: Vec<Record>,
}

impl WriteBatch {
    /// An empty batch.
    pub fn new() -> WriteBatch {
        WriteBatch::default()
    }

    /// Stages a record.
    pub fn push(&mut self, rec: Record) -> &mut WriteBatch {
        self.records.push(rec);
        self
    }

    /// Number of staged records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// What happened during the tail scan of a recovery.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Segments scanned.
    pub segments_scanned: u64,
    /// Records handed back for replay.
    pub records_replayed: u64,
    /// Checkpoint files that failed verification and were skipped.
    pub corrupt_checkpoints: u64,
    /// A torn tail that was detected and discarded, if any.
    pub torn_tail: Option<TornTail>,
    /// Set when the scan stopped at interior corruption (checksum or LSN
    /// failure before the tail); everything after is discarded.
    pub corrupt_stop: Option<String>,
    /// Reads that came back short and were retried successfully.
    pub short_reads_retried: u64,
    /// Segments past a corrupt stop that were moved aside (renamed to a
    /// `quarantine-` name recovery never scans) so their stale records can
    /// neither be replayed on a later recovery nor appended into when
    /// rotation reuses an LSN from the rolled-back range.
    pub stale_segments_quarantined: u64,
}

/// A torn (incomplete) record tail discarded by recovery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TornTail {
    /// Segment file the tear was found in.
    pub segment: String,
    /// Byte offset of the torn frame.
    pub offset: u64,
    /// Bytes discarded.
    pub dropped_bytes: u64,
}

/// Everything [`Storage::recover`] hands back.
pub struct Recovered {
    /// `(lsn, state bytes)` of the newest valid checkpoint, if any. Every
    /// record below `lsn` is subsumed by it.
    pub checkpoint: Option<(u64, Vec<u8>)>,
    /// Log records at or after the checkpoint LSN, in order, with their
    /// LSNs — the replay tail.
    pub tail: Vec<(u64, Record)>,
    /// What the scan saw.
    pub report: RecoveryReport,
}

/// The storage boundary (see module docs).
pub trait Storage: Send {
    /// Commits a batch atomically: all records become durable (one fsync)
    /// or none do. Returns the LSN after the last committed record.
    fn commit(&mut self, batch: WriteBatch) -> Result<u64, StorageError>;

    /// Persists a checkpoint covering every committed record, then prunes
    /// log segments and old checkpoints it subsumes. Returns the
    /// checkpoint's LSN.
    fn checkpoint(&mut self, state: &[u8]) -> Result<u64, StorageError>;

    /// Re-reads durable state: newest valid checkpoint + replay tail.
    ///
    /// A recovery that stops at *interior corruption*
    /// ([`RecoveryReport::corrupt_stop`]) leaves the medium exactly as
    /// found — the damaged bytes and everything after them are evidence —
    /// and the store refuses commits until [`Storage::salvage`] makes the
    /// discard explicit. A benign torn tail (the expected crash shape) is
    /// repaired in place and does not halt the store.
    fn recover(&mut self) -> Result<Recovered, StorageError>;

    /// Accepts the loss a corrupt-stopped [`Storage::recover`] reported:
    /// makes the discard permanent (quarantines every segment past the
    /// stop point, truncates the stopped one) and reopens the store for
    /// commits. On a healthy store this is just `recover`.
    fn salvage(&mut self) -> Result<Recovered, StorageError> {
        self.recover()
    }

    /// The LSN the next committed record will get.
    fn next_lsn(&self) -> u64;
}

/// The in-memory backend: the trait over plain vectors. `recover` returns
/// what was committed in this process lifetime — dropping it loses
/// everything, exactly as the pre-durability server did.
#[derive(Default)]
pub struct MemStorage {
    checkpoint: Option<(u64, Vec<u8>)>,
    records: Vec<(u64, Record)>,
    next_lsn: u64,
}

impl MemStorage {
    /// An empty in-memory store.
    pub fn new() -> MemStorage {
        MemStorage::default()
    }
}

impl Storage for MemStorage {
    fn commit(&mut self, batch: WriteBatch) -> Result<u64, StorageError> {
        for rec in batch.records {
            self.records.push((self.next_lsn, rec));
            self.next_lsn += 1;
        }
        Ok(self.next_lsn)
    }

    fn checkpoint(&mut self, state: &[u8]) -> Result<u64, StorageError> {
        let lsn = self.next_lsn;
        self.checkpoint = Some((lsn, state.to_vec()));
        self.records.retain(|(l, _)| *l >= lsn);
        Ok(lsn)
    }

    fn recover(&mut self) -> Result<Recovered, StorageError> {
        let base = self.checkpoint.as_ref().map_or(0, |(lsn, _)| *lsn);
        let tail: Vec<(u64, Record)> = self
            .records
            .iter()
            .filter(|(l, _)| *l >= base)
            .cloned()
            .collect();
        Ok(Recovered {
            checkpoint: self.checkpoint.clone(),
            report: RecoveryReport {
                records_replayed: tail.len() as u64,
                ..RecoveryReport::default()
            },
            tail,
        })
    }

    fn next_lsn(&self) -> u64 {
        self.next_lsn
    }
}

/// Tuning knobs for [`DurableStorage`].
#[derive(Clone, Copy, Debug)]
pub struct DurableOptions {
    /// Rotate to a new segment once the active one exceeds this many bytes.
    pub segment_bytes: usize,
    /// Checkpoint files retained (≥ 1). Two by default: if the newest is
    /// corrupt, recovery falls back to the previous one plus the log tail
    /// kept alive since it.
    pub retain_checkpoints: usize,
}

impl Default for DurableOptions {
    fn default() -> DurableOptions {
        DurableOptions {
            segment_bytes: 1 << 20,
            retain_checkpoints: 2,
        }
    }
}

/// The durable backend over a [`Medium`] (see module docs).
pub struct DurableStorage<M: Medium> {
    medium: M,
    opts: DurableOptions,
    next_lsn: u64,
    /// Active segment file name.
    seg_name: String,
    /// Bytes already in the active segment.
    seg_bytes: usize,
    /// Set by [`Storage::recover`]; commits before it are refused, because
    /// only recovery positions the append cursor past existing records.
    recovered: bool,
    /// Set when the last recovery stopped at interior corruption without
    /// repairing it: commits stay refused until [`Storage::salvage`].
    halted: Option<String>,
}

impl<M: Medium> DurableStorage<M> {
    /// Opens the store on `medium`. [`Storage::recover`] must run before
    /// the first commit — it positions the append cursor and truncates any
    /// torn tail; [`crate::DurableServer::open`] runs it for you.
    pub fn open(medium: M, opts: DurableOptions) -> DurableStorage<M> {
        DurableStorage {
            medium,
            opts: DurableOptions {
                retain_checkpoints: opts.retain_checkpoints.max(1),
                ..opts
            },
            next_lsn: 0,
            seg_name: log::segment_name(0),
            seg_bytes: 0,
            recovered: false,
            halted: None,
        }
    }

    /// The medium (tests inspect durable bytes through it).
    pub fn medium(&self) -> &M {
        &self.medium
    }

    fn checkpoint_lsns(&self) -> Result<Vec<u64>, StorageError> {
        let mut lsns: Vec<u64> = self
            .medium
            .list()?
            .iter()
            .filter_map(|n| log::parse_checkpoint_name(n))
            .collect();
        lsns.sort_unstable();
        Ok(lsns)
    }

    fn segment_lsns(&self) -> Result<Vec<u64>, StorageError> {
        let mut lsns: Vec<u64> = self
            .medium
            .list()?
            .iter()
            .filter_map(|n| log::parse_segment_name(n))
            .collect();
        lsns.sort_unstable();
        Ok(lsns)
    }

    /// Reads and scans one segment, retrying once if the tail looks torn
    /// but a re-read returns more bytes (transient short read).
    fn scan_segment(
        &self,
        name: &str,
        expected_lsn: u64,
        report: &mut RecoveryReport,
    ) -> Result<SegmentScan, StorageError> {
        let buf = self.medium.read(name)?.unwrap_or_default();
        let scan = log::scan(&buf, expected_lsn);
        if scan.tail.is_clean() {
            return Ok(scan);
        }
        let again = self.medium.read(name)?.unwrap_or_default();
        if again.len() > buf.len() {
            report.short_reads_retried += 1;
            return Ok(log::scan(&again, expected_lsn));
        }
        Ok(scan)
    }

    /// Drops log segments fully covered by the oldest retained checkpoint
    /// and checkpoints beyond the retention count.
    fn prune(&mut self) -> Result<(), StorageError> {
        let mut ckpts = self.checkpoint_lsns()?;
        while ckpts.len() > self.opts.retain_checkpoints {
            let oldest = ckpts.remove(0);
            self.medium.remove(&log::checkpoint_name(oldest))?;
        }
        let Some(&cutoff) = ckpts.first() else {
            return Ok(());
        };
        let segs = self.segment_lsns()?;
        // Segment i covers [segs[i], segs[i+1]); it is disposable when the
        // whole range sits below the cutoff. The active segment (last) is
        // never removed.
        for pair in segs.windows(2) {
            if pair[1] <= cutoff && log::segment_name(pair[0]) != self.seg_name {
                self.medium.remove(&log::segment_name(pair[0]))?;
            }
        }
        Ok(())
    }
}

impl<M: Medium> Storage for DurableStorage<M> {
    fn commit(&mut self, batch: WriteBatch) -> Result<u64, StorageError> {
        if let Some(stop) = &self.halted {
            return Err(StorageError::Unrecoverable(format!(
                "commits refused: recovery stopped at interior corruption ({stop}); \
                 salvage() makes the discard explicit"
            )));
        }
        if !self.recovered {
            return Err(StorageError::io("commit before recovery"));
        }
        if batch.is_empty() {
            return Ok(self.next_lsn);
        }
        let mut buf = Vec::new();
        let mut lsn = self.next_lsn;
        for rec in &batch.records {
            let body = rec.body();
            // Reject before framing: an oversized frame would be written
            // fine and then classified as corruption on every recovery.
            if body.len() > log::MAX_BODY {
                return Err(StorageError::TooLarge {
                    what: "record",
                    bytes: body.len(),
                });
            }
            buf.extend_from_slice(&log::frame(&log::payload(lsn, rec.tag(), &body)));
            lsn += 1;
        }
        if self.seg_bytes > 0 && self.seg_bytes + buf.len() > self.opts.segment_bytes {
            self.seg_name = log::segment_name(self.next_lsn);
            self.seg_bytes = 0;
        }
        // One append + one fsync per batch: a crash either keeps the whole
        // suffix out (torn tail, discarded at recovery) or lands it all.
        self.medium.append(&self.seg_name, &buf)?;
        self.medium.sync(&self.seg_name)?;
        self.seg_bytes += buf.len();
        self.next_lsn = lsn;
        Ok(lsn)
    }

    fn checkpoint(&mut self, state: &[u8]) -> Result<u64, StorageError> {
        if let Some(stop) = &self.halted {
            return Err(StorageError::Unrecoverable(format!(
                "checkpoint refused: recovery stopped at interior corruption ({stop}); \
                 salvage() makes the discard explicit"
            )));
        }
        if !self.recovered {
            return Err(StorageError::io("checkpoint before recovery"));
        }
        let lsn = self.next_lsn;
        if 8 + state.len() > log::MAX_PAYLOAD {
            return Err(StorageError::TooLarge {
                what: "checkpoint",
                bytes: state.len(),
            });
        }
        let mut body = Vec::with_capacity(8 + state.len());
        body.extend_from_slice(&lsn.to_le_bytes());
        body.extend_from_slice(state);
        self.medium
            .write_atomic(&log::checkpoint_name(lsn), &log::frame(&body))?;
        // Rotate so the pre-checkpoint segment becomes prunable once the
        // *next* checkpoint lands.
        if self.seg_bytes > 0 {
            self.seg_name = log::segment_name(lsn);
            self.seg_bytes = 0;
        }
        self.prune()?;
        Ok(lsn)
    }

    fn recover(&mut self) -> Result<Recovered, StorageError> {
        self.recover_impl(false)
    }

    fn salvage(&mut self) -> Result<Recovered, StorageError> {
        self.recover_impl(true)
    }

    fn next_lsn(&self) -> u64 {
        self.next_lsn
    }
}

impl<M: Medium> DurableStorage<M> {
    /// The recovery state machine (see module docs). `repair` is the
    /// [`Storage::salvage`] mode: with it, a corrupt stop quarantines the
    /// stale suffix and truncates the stopped segment so the store can
    /// serve on from the surviving prefix; without it, interior corruption
    /// halts the store with the medium left exactly as found.
    fn recover_impl(&mut self, repair: bool) -> Result<Recovered, StorageError> {
        let mut report = RecoveryReport::default();
        self.halted = None;

        // 1. Newest checkpoint that verifies.
        let mut checkpoint: Option<(u64, Vec<u8>)> = None;
        for lsn in self.checkpoint_lsns()?.into_iter().rev() {
            let name = log::checkpoint_name(lsn);
            let Some(buf) = self.medium.read(&name)? else {
                continue;
            };
            let scan = log::scan_checkpoint(&buf);
            match scan {
                Some((stored_lsn, state)) if stored_lsn == lsn => {
                    checkpoint = Some((lsn, state));
                    break;
                }
                _ => report.corrupt_checkpoints += 1,
            }
        }
        let base = checkpoint.as_ref().map_or(0, |(lsn, _)| *lsn);

        // 2. Scan segments in LSN order.
        let segs = self.segment_lsns()?;
        let mut tail: Vec<(u64, Record)> = Vec::new();
        let mut expected = segs.first().copied().unwrap_or(0);
        let mut last_valid: Option<(String, u64)> = None; // (name, valid_len)
        let mut stopped = false;
        // First segment index the scan never reached; everything from here
        // on is quarantined when the scan stopped at corruption.
        let mut stale_from = segs.len();
        for (i, &first_lsn) in segs.iter().enumerate() {
            if stopped {
                break;
            }
            let next_first = segs.get(i + 1).copied();
            // A segment entirely below the checkpoint whose records we will
            // never replay can be skipped wholesale (it survives only until
            // the next prune).
            if next_first.is_some_and(|n| n <= base) {
                expected = next_first.unwrap();
                continue;
            }
            let name = log::segment_name(first_lsn);
            if first_lsn != expected {
                report.corrupt_stop = Some(format!(
                    "segment {name} starts at lsn {first_lsn}, expected {expected}"
                ));
                stale_from = i;
                break;
            }
            report.segments_scanned += 1;
            let scan = self.scan_segment(&name, expected, &mut report)?;
            let mut valid_len = scan.valid_len;
            let mut offset = 0u64; // byte offset of the record under examination
            for (lsn, tag, body) in &scan.records {
                if *lsn >= base {
                    match Record::decode(*tag, body) {
                        Ok(rec) => tail.push((*lsn, rec)),
                        Err(e) => {
                            // The frame verified but the record does not
                            // decode: stop *at* this record — `expected`
                            // stays rolled back to its LSN and the frame is
                            // shed from the segment with everything after
                            // it, so it can never be rescanned.
                            report.corrupt_stop = Some(format!("record {lsn} in {name}: {e}"));
                            valid_len = offset;
                            stopped = true;
                            break;
                        }
                    }
                }
                offset += log::frame_len(body.len());
                expected = lsn + 1;
            }
            if !stopped {
                match &scan.tail {
                    TailStatus::Clean => {}
                    TailStatus::Torn { offset, dropped } => {
                        // A torn tail is only benign where a crash can
                        // produce one: with no successor segment carrying
                        // on. A tear *under* a later segment is a hole.
                        if next_first.is_some() {
                            report.corrupt_stop = Some(format!(
                                "torn record at byte {offset} of {name} below a later segment"
                            ));
                        } else {
                            report.torn_tail = Some(TornTail {
                                segment: name.clone(),
                                offset: *offset,
                                dropped_bytes: *dropped,
                            });
                        }
                        stopped = true;
                    }
                    TailStatus::Corrupt { offset, reason } => {
                        report.corrupt_stop = Some(format!("{reason} at byte {offset} of {name}"));
                        stopped = true;
                    }
                }
            }
            if stopped {
                stale_from = i + 1;
            }
            last_valid = Some((name, valid_len));
        }
        report.records_replayed = tail.len() as u64;

        // 3. Interior corruption means acknowledged records past the stop
        // point are lost. Outside salvage mode, leave the medium exactly as
        // found — the damaged bytes are evidence for the operator — and
        // halt: commits are refused until `salvage` makes the discard
        // explicit. (A benign torn tail never takes this path.)
        if let Some(stop) = &report.corrupt_stop {
            if !repair {
                self.next_lsn = expected.max(base);
                self.halted = Some(stop.clone());
                self.recovered = false;
                return Ok(Recovered {
                    checkpoint,
                    tail,
                    report,
                });
            }
        }

        // 4. (Salvage only.) A corrupt stop poisons everything after it:
        // records beyond the stop point are never replayed ("no record
        // after a hole"), so leaving their segments on disk would let the
        // *next* recovery scan straight past the repaired prefix into the
        // old timeline once new commits fill the LSN range back up — and
        // rotation could reuse a stale segment's name and append into its
        // old contents. Move them aside under names no scan or rotation
        // ever touches.
        if report.corrupt_stop.is_some() {
            for &first_lsn in &segs[stale_from..] {
                let name = log::segment_name(first_lsn);
                if let Some(buf) = self.medium.read(&name)? {
                    self.medium
                        .write_atomic(&log::quarantine_name(&name), &buf)?;
                }
                self.medium.remove(&name)?;
                report.stale_segments_quarantined += 1;
            }
        }

        // 5. Make the discard permanent: truncate the last scanned segment
        // to its valid prefix so torn bytes can never resurface, and point
        // appends at it.
        self.next_lsn = expected.max(base);
        if let Some((name, valid_len)) = &last_valid {
            let buf = self.medium.read(name)?.unwrap_or_default();
            if (buf.len() as u64) > *valid_len {
                self.medium
                    .write_atomic(name, &buf[..*valid_len as usize])?;
            }
        }
        match last_valid {
            // Resume appending to the scanned segment only when the next
            // commit continues its LSN run; if the checkpoint sits past the
            // end of the scanned log (`base > expected`, e.g. corruption
            // below a checkpoint that subsumes it), appending there would
            // put an LSN gap *inside* the segment, so start a fresh one.
            Some((name, valid_len)) if self.next_lsn == expected => {
                self.seg_name = name;
                self.seg_bytes = valid_len as usize;
            }
            _ => {
                self.seg_name = log::segment_name(self.next_lsn);
                self.seg_bytes = 0;
            }
        }
        self.recovered = true;
        Ok(Recovered {
            checkpoint,
            tail,
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::medium::MemMedium;
    use tcvs_merkle::{u64_key, Op};

    fn op_record(i: u64) -> Record {
        Record::Op {
            user: (i % 3) as u32,
            seq: i,
            op: Op::Put(u64_key(i), vec![i as u8]),
            round: i,
        }
    }

    fn commit_one<S: Storage>(s: &mut S, i: u64) -> u64 {
        let mut b = WriteBatch::new();
        b.push(op_record(i));
        s.commit(b).unwrap()
    }

    #[test]
    fn mem_storage_round_trips() {
        let mut s = MemStorage::new();
        for i in 0..5 {
            commit_one(&mut s, i);
        }
        s.checkpoint(b"state@5").unwrap();
        for i in 5..8 {
            commit_one(&mut s, i);
        }
        let rec = s.recover().unwrap();
        assert_eq!(rec.checkpoint, Some((5, b"state@5".to_vec())));
        assert_eq!(rec.tail.len(), 3);
        assert_eq!(rec.tail[0].0, 5);
    }

    #[test]
    fn durable_commit_recover_round_trips() {
        let mem = MemMedium::new();
        let mut s = DurableStorage::open(mem.clone(), DurableOptions::default());
        assert!(s.recover().unwrap().tail.is_empty());
        for i in 0..10 {
            commit_one(&mut s, i);
        }
        drop(s);
        let mut s2 = DurableStorage::open(mem, DurableOptions::default());
        let rec = s2.recover().unwrap();
        assert_eq!(rec.tail.len(), 10);
        assert!(rec.report.torn_tail.is_none());
        assert!(rec.report.corrupt_stop.is_none());
        assert_eq!(s2.next_lsn(), 10);
        for (i, (lsn, rec)) in rec.tail.iter().enumerate() {
            assert_eq!(*lsn, i as u64);
            assert!(matches!(rec, Record::Op { seq, .. } if *seq == i as u64));
        }
    }

    #[test]
    fn unsynced_tail_is_lost_cleanly() {
        let mem = MemMedium::new();
        let mut s = DurableStorage::open(mem.clone(), DurableOptions::default());
        s.recover().unwrap();
        for i in 0..4 {
            commit_one(&mut s, i);
        }
        // Torn write: half a frame lands beyond the synced prefix.
        let mut buf = Vec::new();
        buf.extend_from_slice(&log::frame(&log::payload(4, 1, b"x")));
        let mut raw = mem.clone();
        raw.append(&log::segment_name(0), &buf[..buf.len() / 2])
            .unwrap();
        mem.crash();
        let rec = DurableStorage::open(mem, DurableOptions::default())
            .recover()
            .unwrap();
        assert_eq!(rec.tail.len(), 4, "synced records survive");
        assert!(rec.report.torn_tail.is_none(), "crash cut at sync boundary");
    }

    #[test]
    fn torn_tail_is_detected_discarded_and_truncated() {
        let mem = MemMedium::new();
        let mut s = DurableStorage::open(mem.clone(), DurableOptions::default());
        s.recover().unwrap();
        for i in 0..3 {
            commit_one(&mut s, i);
        }
        // A torn frame that *was* synced (power loss between fsync of a
        // partial page and the rest never arriving).
        let torn = log::frame(&log::payload(3, 1, &[0u8; 40]));
        let mut raw = mem.clone();
        raw.append(&log::segment_name(0), &torn[..torn.len() - 7])
            .unwrap();
        raw.sync(&log::segment_name(0)).unwrap();
        mem.crash();
        let mut s2 = DurableStorage::open(mem.clone(), DurableOptions::default());
        let rec = s2.recover().unwrap();
        assert_eq!(rec.tail.len(), 3);
        let tt = rec.report.torn_tail.expect("torn tail detected");
        assert!(tt.dropped_bytes > 0);
        assert_eq!(s2.next_lsn(), 3);
        // The truncation is durable: a second recovery sees a clean log.
        let rec2 = DurableStorage::open(mem, DurableOptions::default())
            .recover()
            .unwrap();
        assert!(rec2.report.torn_tail.is_none());
        assert_eq!(rec2.tail.len(), 3);
    }

    #[test]
    fn checkpoint_prunes_segments_and_keeps_fallback() {
        let mem = MemMedium::new();
        let opts = DurableOptions {
            segment_bytes: 128,
            retain_checkpoints: 2,
        };
        let mut s = DurableStorage::open(mem.clone(), opts);
        s.recover().unwrap();
        for i in 0..6 {
            commit_one(&mut s, i);
        }
        s.checkpoint(b"state@6").unwrap();
        for i in 6..12 {
            commit_one(&mut s, i);
        }
        s.checkpoint(b"state@12").unwrap();
        for i in 12..15 {
            commit_one(&mut s, i);
        }
        s.checkpoint(b"state@15").unwrap();
        let names = mem.list().unwrap();
        let ckpts: Vec<_> = names
            .iter()
            .filter(|n| log::parse_checkpoint_name(n).is_some())
            .collect();
        assert_eq!(ckpts.len(), 2, "retention bound holds: {names:?}");
        let rec = DurableStorage::open(mem.clone(), opts).recover().unwrap();
        assert_eq!(rec.checkpoint, Some((15, b"state@15".to_vec())));
        assert!(rec.tail.is_empty());

        // Newest checkpoint corrupt → fall back to the previous one and
        // replay the tail records since it.
        let name = log::checkpoint_name(15);
        let mut buf = mem.read(&name).unwrap().unwrap();
        let mid = buf.len() / 2;
        buf[mid] ^= 0xFF;
        let mut raw = mem.clone();
        raw.write_atomic(&name, &buf).unwrap();
        let rec = DurableStorage::open(mem, opts).recover().unwrap();
        assert_eq!(rec.report.corrupt_checkpoints, 1);
        assert_eq!(rec.checkpoint.as_ref().unwrap().0, 12);
        assert_eq!(rec.tail.len(), 3, "records 12..15 replay from the log");
    }

    #[test]
    fn bit_flip_stops_replay_at_the_flip() {
        let mem = MemMedium::new();
        let mut s = DurableStorage::open(mem.clone(), DurableOptions::default());
        s.recover().unwrap();
        for i in 0..6 {
            commit_one(&mut s, i);
        }
        let name = log::segment_name(0);
        let mut buf = mem.read(&name).unwrap().unwrap();
        // Flip a bit inside the 4th record's frame.
        let frame_len = buf.len() / 6;
        buf[3 * frame_len + 10] ^= 0x04;
        let mut raw = mem.clone();
        raw.write_atomic(&name, &buf).unwrap();
        let mut s2 = DurableStorage::open(mem.clone(), DurableOptions::default());
        let rec = s2.recover().unwrap();
        assert_eq!(rec.tail.len(), 3, "replay stops before the corruption");
        assert!(rec.report.corrupt_stop.is_some());
        assert_eq!(s2.next_lsn(), 3);
        // The store is halted: nothing may be acknowledged on top of a log
        // that lost acknowledged records, and the damage stays on disk for
        // the operator (a plain re-recovery still reports it).
        let refused = s2.commit({
            let mut b = WriteBatch::new();
            b.push(op_record(3));
            b
        });
        assert!(
            matches!(refused, Err(StorageError::Unrecoverable(_))),
            "{refused:?}"
        );
        let again = DurableStorage::open(mem.clone(), DurableOptions::default())
            .recover()
            .unwrap();
        assert!(again.report.corrupt_stop.is_some(), "evidence preserved");
        // Salvage makes the discard durable; only then is the log clean.
        let mut s3 = DurableStorage::open(mem.clone(), DurableOptions::default());
        let rec3 = s3.salvage().unwrap();
        assert!(rec3.report.corrupt_stop.is_some());
        assert_eq!(rec3.tail.len(), 3);
        let rec4 = DurableStorage::open(mem, DurableOptions::default())
            .recover()
            .unwrap();
        assert!(rec4.report.corrupt_stop.is_none());
        assert_eq!(rec4.tail.len(), 3);
    }

    /// The old-timeline resurrection hazard: interior corruption in an
    /// early segment rolls the LSN back, new commits refill the rolled-back
    /// range, and the *stale* later segments — whose first LSN and record
    /// continuity still line up — must never be scanned back into state.
    #[test]
    fn corrupt_stop_quarantines_stale_segments_for_good() {
        let mem = MemMedium::new();
        let opts = DurableOptions {
            segment_bytes: 100,
            retain_checkpoints: 2,
        };
        let mut s = DurableStorage::open(mem.clone(), opts);
        s.recover().unwrap();
        for i in 0..20 {
            commit_one(&mut s, i);
        }
        let segs = s.segment_lsns().unwrap();
        assert!(segs.len() > 2, "needs several segments: {segs:?}");
        // Flip a checksum bit of the first segment's last record: interior
        // corruption with live segments after it.
        let name = log::segment_name(segs[0]);
        let mut buf = mem.read(&name).unwrap().unwrap();
        let end = buf.len() - 1;
        buf[end] ^= 0xFF;
        let mut raw = mem.clone();
        raw.write_atomic(&name, &buf).unwrap();
        drop(s);

        let mut s2 = DurableStorage::open(mem.clone(), opts);
        assert!(
            s2.recover().unwrap().report.corrupt_stop.is_some(),
            "recovery reports the stop and halts"
        );
        let rec = s2.salvage().unwrap();
        assert!(rec.report.corrupt_stop.is_some());
        assert_eq!(
            rec.report.stale_segments_quarantined,
            (segs.len() - 1) as u64,
            "every segment after the stop is quarantined"
        );
        let survivors = rec.tail.len() as u64;
        assert!(survivors < segs[1], "the corrupted record is discarded");
        assert_eq!(s2.next_lsn(), survivors);
        let names = mem.list().unwrap();
        assert!(
            names
                .iter()
                .filter_map(|n| log::parse_segment_name(n))
                .all(|l| l == segs[0]),
            "no stale segment remains scannable: {names:?}"
        );
        assert!(
            names.iter().any(|n| n.starts_with("quarantine-")),
            "stale bytes kept for manual salvage: {names:?}"
        );

        // New commits refill the rolled-back LSN range on the new timeline.
        for j in 0..12 {
            commit_one(&mut s2, 1000 + j);
        }
        drop(s2);
        let rec2 = DurableStorage::open(mem, opts).recover().unwrap();
        assert!(rec2.report.corrupt_stop.is_none(), "{:?}", rec2.report);
        assert!(rec2.report.torn_tail.is_none());
        assert_eq!(rec2.tail.len() as u64, survivors + 12);
        for (i, (lsn, rec)) in rec2.tail.iter().enumerate() {
            assert_eq!(*lsn, i as u64);
            let want_seq = if (i as u64) < survivors {
                i as u64
            } else {
                1000 + (i as u64 - survivors)
            };
            assert!(
                matches!(rec, Record::Op { seq, .. } if *seq == want_seq),
                "lsn {lsn}: stale-timeline record resurfaced"
            );
        }
    }

    /// A frame that verifies but whose record does not decode is shed from
    /// the segment at recovery, so the stop does not recur forever.
    #[test]
    fn undecodable_record_is_shed_not_rescanned() {
        let mem = MemMedium::new();
        let mut s = DurableStorage::open(mem.clone(), DurableOptions::default());
        s.recover().unwrap();
        for i in 0..3 {
            commit_one(&mut s, i);
        }
        // A well-framed record with a tag no decoder knows.
        let bogus = log::frame(&log::payload(3, 0xEE, b"junk"));
        let mut raw = mem.clone();
        raw.append(&log::segment_name(0), &bogus).unwrap();
        raw.sync(&log::segment_name(0)).unwrap();
        drop(s);

        let mut s2 = DurableStorage::open(mem.clone(), DurableOptions::default());
        let rec = s2.salvage().unwrap();
        assert_eq!(rec.tail.len(), 3);
        assert!(rec.report.corrupt_stop.is_some());
        assert_eq!(s2.next_lsn(), 3, "rolled back to the undecodable record");
        // Shed durably: recovery does not stop at the same record again,
        // and the log keeps growing cleanly past it.
        commit_one(&mut s2, 3);
        drop(s2);
        let rec2 = DurableStorage::open(mem, DurableOptions::default())
            .recover()
            .unwrap();
        assert!(rec2.report.corrupt_stop.is_none(), "{:?}", rec2.report);
        assert_eq!(rec2.tail.len(), 4);
    }

    /// Oversized payloads are rejected when written, not discovered as
    /// "corruption" by the next recovery.
    #[test]
    fn oversized_checkpoint_rejected_at_write_time() {
        let mem = MemMedium::new();
        let mut s = DurableStorage::open(mem.clone(), DurableOptions::default());
        s.recover().unwrap();
        commit_one(&mut s, 0);
        // Zero pages: allocated lazily, never touched before the size check.
        let huge = vec![0u8; log::MAX_PAYLOAD - 7];
        match s.checkpoint(&huge) {
            Err(StorageError::TooLarge { what, .. }) => assert_eq!(what, "checkpoint"),
            other => panic!("expected TooLarge, got {other:?}"),
        }
        // Nothing reached disk; the store still recovers cleanly.
        drop(s);
        let rec = DurableStorage::open(mem, DurableOptions::default())
            .recover()
            .unwrap();
        assert!(rec.checkpoint.is_none());
        assert_eq!(rec.tail.len(), 1);
    }

    #[test]
    fn segment_rotation_preserves_replay_order() {
        let mem = MemMedium::new();
        let opts = DurableOptions {
            segment_bytes: 100,
            retain_checkpoints: 2,
        };
        let mut s = DurableStorage::open(mem.clone(), opts);
        s.recover().unwrap();
        for i in 0..20 {
            commit_one(&mut s, i);
        }
        let segs = s.segment_lsns().unwrap();
        assert!(segs.len() > 1, "rotation happened: {segs:?}");
        let rec = DurableStorage::open(mem, opts).recover().unwrap();
        assert_eq!(rec.tail.len(), 20);
        for (i, (lsn, _)) in rec.tail.iter().enumerate() {
            assert_eq!(*lsn, i as u64);
        }
    }
}
