//! The storage abstraction: open → batch → atomic commit → recover.
//!
//! [`Storage`] is the boundary between the server engine and persistence,
//! in the shape of grovedb's storage layer: the engine stages [`Record`]s
//! into a [`WriteBatch`], commits the batch atomically (one append + one
//! fsync), and on restart calls [`Storage::recover`] to get back the
//! newest valid checkpoint plus the log tail after it.
//!
//! Two backends:
//!
//! * [`MemStorage`] — the refactored in-memory maps: same trait, no
//!   durability (a `recover` after drop starts empty). The simulator and
//!   unit tests run on this.
//! * [`DurableStorage`] — the real engine over a [`Medium`]: checksummed
//!   length-prefixed append-only segments ([`crate::log`]), periodic
//!   checkpoint files, segment rotation, and log truncation after
//!   checkpoint.
//!
//! ## Recovery state machine ([`DurableStorage::recover`])
//!
//! 1. **Pick a checkpoint**: try checkpoint files newest-first; the first
//!    one whose frame checksum and body decode verify wins. Corrupt ones
//!    are counted and skipped (that is why two are retained).
//! 2. **Scan the log**: segments in LSN order, each record's checksum and
//!    LSN continuity verified. A *torn* tail (incomplete frame) in the
//!    last segment is the expected crash shape: discard it, note it,
//!    continue. Torn or corrupt frames anywhere else stop the scan — no
//!    record after a hole is trusted.
//! 3. **Re-read on short read**: a scan that stops early retries the read
//!    once; a transient short read heals, a real torn tail does not.
//! 4. **Truncate the torn tail**: the last segment is atomically rewritten
//!    to its valid prefix, so the discarded bytes can never resurface.

use crate::error::StorageError;
use crate::log::{self, SegmentScan, TailStatus};
use crate::medium::Medium;
use crate::record::Record;

/// Records staged for one atomic commit.
#[derive(Default)]
pub struct WriteBatch {
    records: Vec<Record>,
}

impl WriteBatch {
    /// An empty batch.
    pub fn new() -> WriteBatch {
        WriteBatch::default()
    }

    /// Stages a record.
    pub fn push(&mut self, rec: Record) -> &mut WriteBatch {
        self.records.push(rec);
        self
    }

    /// Number of staged records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// What happened during the tail scan of a recovery.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Segments scanned.
    pub segments_scanned: u64,
    /// Records handed back for replay.
    pub records_replayed: u64,
    /// Checkpoint files that failed verification and were skipped.
    pub corrupt_checkpoints: u64,
    /// A torn tail that was detected and discarded, if any.
    pub torn_tail: Option<TornTail>,
    /// Set when the scan stopped at interior corruption (checksum or LSN
    /// failure before the tail); everything after is discarded.
    pub corrupt_stop: Option<String>,
    /// Reads that came back short and were retried successfully.
    pub short_reads_retried: u64,
}

/// A torn (incomplete) record tail discarded by recovery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TornTail {
    /// Segment file the tear was found in.
    pub segment: String,
    /// Byte offset of the torn frame.
    pub offset: u64,
    /// Bytes discarded.
    pub dropped_bytes: u64,
}

/// Everything [`Storage::recover`] hands back.
pub struct Recovered {
    /// `(lsn, state bytes)` of the newest valid checkpoint, if any. Every
    /// record below `lsn` is subsumed by it.
    pub checkpoint: Option<(u64, Vec<u8>)>,
    /// Log records at or after the checkpoint LSN, in order, with their
    /// LSNs — the replay tail.
    pub tail: Vec<(u64, Record)>,
    /// What the scan saw.
    pub report: RecoveryReport,
}

/// The storage boundary (see module docs).
pub trait Storage: Send {
    /// Commits a batch atomically: all records become durable (one fsync)
    /// or none do. Returns the LSN after the last committed record.
    fn commit(&mut self, batch: WriteBatch) -> Result<u64, StorageError>;

    /// Persists a checkpoint covering every committed record, then prunes
    /// log segments and old checkpoints it subsumes. Returns the
    /// checkpoint's LSN.
    fn checkpoint(&mut self, state: &[u8]) -> Result<u64, StorageError>;

    /// Re-reads durable state: newest valid checkpoint + replay tail.
    fn recover(&mut self) -> Result<Recovered, StorageError>;

    /// The LSN the next committed record will get.
    fn next_lsn(&self) -> u64;
}

/// The in-memory backend: the trait over plain vectors. `recover` returns
/// what was committed in this process lifetime — dropping it loses
/// everything, exactly as the pre-durability server did.
#[derive(Default)]
pub struct MemStorage {
    checkpoint: Option<(u64, Vec<u8>)>,
    records: Vec<(u64, Record)>,
    next_lsn: u64,
}

impl MemStorage {
    /// An empty in-memory store.
    pub fn new() -> MemStorage {
        MemStorage::default()
    }
}

impl Storage for MemStorage {
    fn commit(&mut self, batch: WriteBatch) -> Result<u64, StorageError> {
        for rec in batch.records {
            self.records.push((self.next_lsn, rec));
            self.next_lsn += 1;
        }
        Ok(self.next_lsn)
    }

    fn checkpoint(&mut self, state: &[u8]) -> Result<u64, StorageError> {
        let lsn = self.next_lsn;
        self.checkpoint = Some((lsn, state.to_vec()));
        self.records.retain(|(l, _)| *l >= lsn);
        Ok(lsn)
    }

    fn recover(&mut self) -> Result<Recovered, StorageError> {
        let base = self.checkpoint.as_ref().map_or(0, |(lsn, _)| *lsn);
        let tail: Vec<(u64, Record)> = self
            .records
            .iter()
            .filter(|(l, _)| *l >= base)
            .cloned()
            .collect();
        Ok(Recovered {
            checkpoint: self.checkpoint.clone(),
            report: RecoveryReport {
                records_replayed: tail.len() as u64,
                ..RecoveryReport::default()
            },
            tail,
        })
    }

    fn next_lsn(&self) -> u64 {
        self.next_lsn
    }
}

/// Tuning knobs for [`DurableStorage`].
#[derive(Clone, Copy, Debug)]
pub struct DurableOptions {
    /// Rotate to a new segment once the active one exceeds this many bytes.
    pub segment_bytes: usize,
    /// Checkpoint files retained (≥ 1). Two by default: if the newest is
    /// corrupt, recovery falls back to the previous one plus the log tail
    /// kept alive since it.
    pub retain_checkpoints: usize,
}

impl Default for DurableOptions {
    fn default() -> DurableOptions {
        DurableOptions {
            segment_bytes: 1 << 20,
            retain_checkpoints: 2,
        }
    }
}

/// The durable backend over a [`Medium`] (see module docs).
pub struct DurableStorage<M: Medium> {
    medium: M,
    opts: DurableOptions,
    next_lsn: u64,
    /// Active segment file name.
    seg_name: String,
    /// Bytes already in the active segment.
    seg_bytes: usize,
    /// Set by [`Storage::recover`]; commits before it are refused, because
    /// only recovery positions the append cursor past existing records.
    recovered: bool,
}

impl<M: Medium> DurableStorage<M> {
    /// Opens the store on `medium`. [`Storage::recover`] must run before
    /// the first commit — it positions the append cursor and truncates any
    /// torn tail; [`crate::DurableServer::open`] runs it for you.
    pub fn open(medium: M, opts: DurableOptions) -> DurableStorage<M> {
        DurableStorage {
            medium,
            opts: DurableOptions {
                retain_checkpoints: opts.retain_checkpoints.max(1),
                ..opts
            },
            next_lsn: 0,
            seg_name: log::segment_name(0),
            seg_bytes: 0,
            recovered: false,
        }
    }

    /// The medium (tests inspect durable bytes through it).
    pub fn medium(&self) -> &M {
        &self.medium
    }

    fn checkpoint_lsns(&self) -> Result<Vec<u64>, StorageError> {
        let mut lsns: Vec<u64> = self
            .medium
            .list()?
            .iter()
            .filter_map(|n| log::parse_checkpoint_name(n))
            .collect();
        lsns.sort_unstable();
        Ok(lsns)
    }

    fn segment_lsns(&self) -> Result<Vec<u64>, StorageError> {
        let mut lsns: Vec<u64> = self
            .medium
            .list()?
            .iter()
            .filter_map(|n| log::parse_segment_name(n))
            .collect();
        lsns.sort_unstable();
        Ok(lsns)
    }

    /// Reads and scans one segment, retrying once if the tail looks torn
    /// but a re-read returns more bytes (transient short read).
    fn scan_segment(
        &self,
        name: &str,
        expected_lsn: u64,
        report: &mut RecoveryReport,
    ) -> Result<SegmentScan, StorageError> {
        let buf = self.medium.read(name)?.unwrap_or_default();
        let scan = log::scan(&buf, expected_lsn);
        if scan.tail.is_clean() {
            return Ok(scan);
        }
        let again = self.medium.read(name)?.unwrap_or_default();
        if again.len() > buf.len() {
            report.short_reads_retried += 1;
            return Ok(log::scan(&again, expected_lsn));
        }
        Ok(scan)
    }

    /// Drops log segments fully covered by the oldest retained checkpoint
    /// and checkpoints beyond the retention count.
    fn prune(&mut self) -> Result<(), StorageError> {
        let mut ckpts = self.checkpoint_lsns()?;
        while ckpts.len() > self.opts.retain_checkpoints {
            let oldest = ckpts.remove(0);
            self.medium.remove(&log::checkpoint_name(oldest))?;
        }
        let Some(&cutoff) = ckpts.first() else {
            return Ok(());
        };
        let segs = self.segment_lsns()?;
        // Segment i covers [segs[i], segs[i+1]); it is disposable when the
        // whole range sits below the cutoff. The active segment (last) is
        // never removed.
        for pair in segs.windows(2) {
            if pair[1] <= cutoff && log::segment_name(pair[0]) != self.seg_name {
                self.medium.remove(&log::segment_name(pair[0]))?;
            }
        }
        Ok(())
    }
}

impl<M: Medium> Storage for DurableStorage<M> {
    fn commit(&mut self, batch: WriteBatch) -> Result<u64, StorageError> {
        if !self.recovered {
            return Err(StorageError::io("commit before recovery"));
        }
        if batch.is_empty() {
            return Ok(self.next_lsn);
        }
        let mut buf = Vec::new();
        let mut lsn = self.next_lsn;
        for rec in &batch.records {
            buf.extend_from_slice(&log::frame(&log::payload(lsn, rec.tag(), &rec.body())));
            lsn += 1;
        }
        if self.seg_bytes > 0 && self.seg_bytes + buf.len() > self.opts.segment_bytes {
            self.seg_name = log::segment_name(self.next_lsn);
            self.seg_bytes = 0;
        }
        // One append + one fsync per batch: a crash either keeps the whole
        // suffix out (torn tail, discarded at recovery) or lands it all.
        self.medium.append(&self.seg_name, &buf)?;
        self.medium.sync(&self.seg_name)?;
        self.seg_bytes += buf.len();
        self.next_lsn = lsn;
        Ok(lsn)
    }

    fn checkpoint(&mut self, state: &[u8]) -> Result<u64, StorageError> {
        if !self.recovered {
            return Err(StorageError::io("checkpoint before recovery"));
        }
        let lsn = self.next_lsn;
        let mut body = Vec::with_capacity(8 + state.len());
        body.extend_from_slice(&lsn.to_le_bytes());
        body.extend_from_slice(state);
        self.medium
            .write_atomic(&log::checkpoint_name(lsn), &log::frame(&body))?;
        // Rotate so the pre-checkpoint segment becomes prunable once the
        // *next* checkpoint lands.
        if self.seg_bytes > 0 {
            self.seg_name = log::segment_name(lsn);
            self.seg_bytes = 0;
        }
        self.prune()?;
        Ok(lsn)
    }

    fn recover(&mut self) -> Result<Recovered, StorageError> {
        let mut report = RecoveryReport::default();

        // 1. Newest checkpoint that verifies.
        let mut checkpoint: Option<(u64, Vec<u8>)> = None;
        for lsn in self.checkpoint_lsns()?.into_iter().rev() {
            let name = log::checkpoint_name(lsn);
            let Some(buf) = self.medium.read(&name)? else {
                continue;
            };
            let scan = log::scan_checkpoint(&buf);
            match scan {
                Some((stored_lsn, state)) if stored_lsn == lsn => {
                    checkpoint = Some((lsn, state));
                    break;
                }
                _ => report.corrupt_checkpoints += 1,
            }
        }
        let base = checkpoint.as_ref().map_or(0, |(lsn, _)| *lsn);

        // 2. Scan segments in LSN order.
        let segs = self.segment_lsns()?;
        let mut tail: Vec<(u64, Record)> = Vec::new();
        let mut expected = segs.first().copied().unwrap_or(0);
        let mut last_valid: Option<(String, u64)> = None; // (name, valid_len)
        let mut stopped = false;
        for (i, &first_lsn) in segs.iter().enumerate() {
            if stopped {
                break;
            }
            let next_first = segs.get(i + 1).copied();
            // A segment entirely below the checkpoint whose records we will
            // never replay can be skipped wholesale (it survives only until
            // the next prune).
            if next_first.is_some_and(|n| n <= base) {
                expected = next_first.unwrap();
                continue;
            }
            let name = log::segment_name(first_lsn);
            if first_lsn != expected {
                report.corrupt_stop = Some(format!(
                    "segment {name} starts at lsn {first_lsn}, expected {expected}"
                ));
                break;
            }
            report.segments_scanned += 1;
            let scan = self.scan_segment(&name, expected, &mut report)?;
            for (lsn, tag, body) in &scan.records {
                expected = lsn + 1;
                if *lsn < base {
                    continue;
                }
                match Record::decode(*tag, body) {
                    Ok(rec) => tail.push((*lsn, rec)),
                    Err(e) => {
                        report.corrupt_stop = Some(format!("record {lsn} in {name}: {e}"));
                        stopped = true;
                        break;
                    }
                }
            }
            if !stopped {
                match &scan.tail {
                    TailStatus::Clean => {}
                    TailStatus::Torn { offset, dropped } => {
                        // A torn tail is only benign where a crash can
                        // produce one: with no successor segment carrying
                        // on. A tear *under* a later segment is a hole.
                        if next_first.is_some() {
                            report.corrupt_stop = Some(format!(
                                "torn record at byte {offset} of {name} below a later segment"
                            ));
                        } else {
                            report.torn_tail = Some(TornTail {
                                segment: name.clone(),
                                offset: *offset,
                                dropped_bytes: *dropped,
                            });
                        }
                        stopped = true;
                    }
                    TailStatus::Corrupt { offset, reason } => {
                        report.corrupt_stop = Some(format!("{reason} at byte {offset} of {name}"));
                        stopped = true;
                    }
                }
            }
            last_valid = Some((name, scan.valid_len));
        }
        report.records_replayed = tail.len() as u64;

        // 3. Make the discard permanent: truncate the last scanned segment
        // to its valid prefix so torn bytes can never resurface, and point
        // appends at it.
        self.next_lsn = expected.max(base);
        match last_valid {
            Some((name, valid_len)) => {
                let buf = self.medium.read(&name)?.unwrap_or_default();
                if (buf.len() as u64) > valid_len {
                    self.medium
                        .write_atomic(&name, &buf[..valid_len as usize])?;
                }
                self.seg_name = name;
                self.seg_bytes = valid_len as usize;
            }
            None => {
                self.seg_name = log::segment_name(self.next_lsn);
                self.seg_bytes = 0;
            }
        }
        self.recovered = true;
        Ok(Recovered {
            checkpoint,
            tail,
            report,
        })
    }

    fn next_lsn(&self) -> u64 {
        self.next_lsn
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::medium::MemMedium;
    use tcvs_merkle::{u64_key, Op};

    fn op_record(i: u64) -> Record {
        Record::Op {
            user: (i % 3) as u32,
            seq: i,
            op: Op::Put(u64_key(i), vec![i as u8]),
            round: i,
        }
    }

    fn commit_one<S: Storage>(s: &mut S, i: u64) -> u64 {
        let mut b = WriteBatch::new();
        b.push(op_record(i));
        s.commit(b).unwrap()
    }

    #[test]
    fn mem_storage_round_trips() {
        let mut s = MemStorage::new();
        for i in 0..5 {
            commit_one(&mut s, i);
        }
        s.checkpoint(b"state@5").unwrap();
        for i in 5..8 {
            commit_one(&mut s, i);
        }
        let rec = s.recover().unwrap();
        assert_eq!(rec.checkpoint, Some((5, b"state@5".to_vec())));
        assert_eq!(rec.tail.len(), 3);
        assert_eq!(rec.tail[0].0, 5);
    }

    #[test]
    fn durable_commit_recover_round_trips() {
        let mem = MemMedium::new();
        let mut s = DurableStorage::open(mem.clone(), DurableOptions::default());
        assert!(s.recover().unwrap().tail.is_empty());
        for i in 0..10 {
            commit_one(&mut s, i);
        }
        drop(s);
        let mut s2 = DurableStorage::open(mem, DurableOptions::default());
        let rec = s2.recover().unwrap();
        assert_eq!(rec.tail.len(), 10);
        assert!(rec.report.torn_tail.is_none());
        assert!(rec.report.corrupt_stop.is_none());
        assert_eq!(s2.next_lsn(), 10);
        for (i, (lsn, rec)) in rec.tail.iter().enumerate() {
            assert_eq!(*lsn, i as u64);
            assert!(matches!(rec, Record::Op { seq, .. } if *seq == i as u64));
        }
    }

    #[test]
    fn unsynced_tail_is_lost_cleanly() {
        let mem = MemMedium::new();
        let mut s = DurableStorage::open(mem.clone(), DurableOptions::default());
        s.recover().unwrap();
        for i in 0..4 {
            commit_one(&mut s, i);
        }
        // Torn write: half a frame lands beyond the synced prefix.
        let mut buf = Vec::new();
        buf.extend_from_slice(&log::frame(&log::payload(4, 1, b"x")));
        let mut raw = mem.clone();
        raw.append(&log::segment_name(0), &buf[..buf.len() / 2])
            .unwrap();
        mem.crash();
        let rec = DurableStorage::open(mem, DurableOptions::default())
            .recover()
            .unwrap();
        assert_eq!(rec.tail.len(), 4, "synced records survive");
        assert!(rec.report.torn_tail.is_none(), "crash cut at sync boundary");
    }

    #[test]
    fn torn_tail_is_detected_discarded_and_truncated() {
        let mem = MemMedium::new();
        let mut s = DurableStorage::open(mem.clone(), DurableOptions::default());
        s.recover().unwrap();
        for i in 0..3 {
            commit_one(&mut s, i);
        }
        // A torn frame that *was* synced (power loss between fsync of a
        // partial page and the rest never arriving).
        let torn = log::frame(&log::payload(3, 1, &[0u8; 40]));
        let mut raw = mem.clone();
        raw.append(&log::segment_name(0), &torn[..torn.len() - 7])
            .unwrap();
        raw.sync(&log::segment_name(0)).unwrap();
        mem.crash();
        let mut s2 = DurableStorage::open(mem.clone(), DurableOptions::default());
        let rec = s2.recover().unwrap();
        assert_eq!(rec.tail.len(), 3);
        let tt = rec.report.torn_tail.expect("torn tail detected");
        assert!(tt.dropped_bytes > 0);
        assert_eq!(s2.next_lsn(), 3);
        // The truncation is durable: a second recovery sees a clean log.
        let rec2 = DurableStorage::open(mem, DurableOptions::default())
            .recover()
            .unwrap();
        assert!(rec2.report.torn_tail.is_none());
        assert_eq!(rec2.tail.len(), 3);
    }

    #[test]
    fn checkpoint_prunes_segments_and_keeps_fallback() {
        let mem = MemMedium::new();
        let opts = DurableOptions {
            segment_bytes: 128,
            retain_checkpoints: 2,
        };
        let mut s = DurableStorage::open(mem.clone(), opts);
        s.recover().unwrap();
        for i in 0..6 {
            commit_one(&mut s, i);
        }
        s.checkpoint(b"state@6").unwrap();
        for i in 6..12 {
            commit_one(&mut s, i);
        }
        s.checkpoint(b"state@12").unwrap();
        for i in 12..15 {
            commit_one(&mut s, i);
        }
        s.checkpoint(b"state@15").unwrap();
        let names = mem.list().unwrap();
        let ckpts: Vec<_> = names
            .iter()
            .filter(|n| log::parse_checkpoint_name(n).is_some())
            .collect();
        assert_eq!(ckpts.len(), 2, "retention bound holds: {names:?}");
        let rec = DurableStorage::open(mem.clone(), opts).recover().unwrap();
        assert_eq!(rec.checkpoint, Some((15, b"state@15".to_vec())));
        assert!(rec.tail.is_empty());

        // Newest checkpoint corrupt → fall back to the previous one and
        // replay the tail records since it.
        let name = log::checkpoint_name(15);
        let mut buf = mem.read(&name).unwrap().unwrap();
        let mid = buf.len() / 2;
        buf[mid] ^= 0xFF;
        let mut raw = mem.clone();
        raw.write_atomic(&name, &buf).unwrap();
        let rec = DurableStorage::open(mem, opts).recover().unwrap();
        assert_eq!(rec.report.corrupt_checkpoints, 1);
        assert_eq!(rec.checkpoint.as_ref().unwrap().0, 12);
        assert_eq!(rec.tail.len(), 3, "records 12..15 replay from the log");
    }

    #[test]
    fn bit_flip_stops_replay_at_the_flip() {
        let mem = MemMedium::new();
        let mut s = DurableStorage::open(mem.clone(), DurableOptions::default());
        s.recover().unwrap();
        for i in 0..6 {
            commit_one(&mut s, i);
        }
        let name = log::segment_name(0);
        let mut buf = mem.read(&name).unwrap().unwrap();
        // Flip a bit inside the 4th record's frame.
        let frame_len = buf.len() / 6;
        buf[3 * frame_len + 10] ^= 0x04;
        let mut raw = mem.clone();
        raw.write_atomic(&name, &buf).unwrap();
        let mut s2 = DurableStorage::open(mem, DurableOptions::default());
        let rec = s2.recover().unwrap();
        assert_eq!(rec.tail.len(), 3, "replay stops before the corruption");
        assert!(rec.report.corrupt_stop.is_some());
        assert_eq!(s2.next_lsn(), 3);
    }

    #[test]
    fn segment_rotation_preserves_replay_order() {
        let mem = MemMedium::new();
        let opts = DurableOptions {
            segment_bytes: 100,
            retain_checkpoints: 2,
        };
        let mut s = DurableStorage::open(mem.clone(), opts);
        s.recover().unwrap();
        for i in 0..20 {
            commit_one(&mut s, i);
        }
        let segs = s.segment_lsns().unwrap();
        assert!(segs.len() > 1, "rotation happened: {segs:?}");
        let rec = DurableStorage::open(mem, opts).recover().unwrap();
        assert_eq!(rec.tail.len(), 20);
        for (i, (lsn, _)) in rec.tail.iter().enumerate() {
            assert_eq!(*lsn, i as u64);
        }
    }
}
