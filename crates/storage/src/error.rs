//! Storage-layer errors.

use std::fmt;

use tcvs_store::enc::DecodeError;

/// Errors from the storage engine or the medium beneath it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StorageError {
    /// The medium failed (I/O error, injected torn write, dead medium).
    Io(String),
    /// A persisted structure failed its integrity checks. `file` names the
    /// segment or checkpoint, `offset` the byte the problem was detected
    /// at, and `reason` what check failed.
    Corrupt {
        /// File the corruption was found in.
        file: String,
        /// Byte offset of the failed check.
        offset: u64,
        /// Which check failed.
        reason: &'static str,
    },
    /// A record or checkpoint body failed to decode.
    Decode(DecodeError),
    /// A payload offered for writing exceeds the maximum frame size
    /// ([`crate::log::MAX_PAYLOAD`]); writing it would produce a frame the
    /// next recovery classifies as corruption, so it is rejected up front.
    TooLarge {
        /// What was being written ("record" or "checkpoint").
        what: &'static str,
        /// Payload size in bytes.
        bytes: usize,
    },
    /// Recovery stopped at interior log corruption and the caller did not
    /// opt into salvaging the surviving prefix: acknowledged operations may
    /// be lost, so serving must not resume without an operator decision.
    Unrecoverable(String),
    /// A verified-chunk restore ([`crate::DurableServer::open_from_chunks`])
    /// was refused: a chunk or manifest failed verification against the
    /// anchor, the stream was incomplete, or the target storage already
    /// holds durable state that bootstrap must not clobber.
    Bootstrap(String),
}

impl StorageError {
    /// Shorthand for a medium-level failure.
    pub fn io(msg: impl Into<String>) -> StorageError {
        StorageError::Io(msg.into())
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(msg) => write!(f, "storage i/o: {msg}"),
            StorageError::Corrupt {
                file,
                offset,
                reason,
            } => {
                write!(f, "corrupt {file} at byte {offset}: {reason}")
            }
            StorageError::Decode(e) => write!(f, "storage decode: {e}"),
            StorageError::TooLarge { what, bytes } => {
                write!(
                    f,
                    "{what} payload of {bytes} bytes exceeds the maximum frame size"
                )
            }
            StorageError::Unrecoverable(msg) => write!(f, "unrecoverable: {msg}"),
            StorageError::Bootstrap(msg) => write!(f, "bootstrap: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<DecodeError> for StorageError {
    fn from(e: DecodeError) -> StorageError {
        StorageError::Decode(e)
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> StorageError {
        StorageError::Io(e.to_string())
    }
}
