//! Storage-layer errors.

use std::fmt;

use tcvs_store::enc::DecodeError;

/// Errors from the storage engine or the medium beneath it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StorageError {
    /// The medium failed (I/O error, injected torn write, dead medium).
    Io(String),
    /// A persisted structure failed its integrity checks. `file` names the
    /// segment or checkpoint, `offset` the byte the problem was detected
    /// at, and `reason` what check failed.
    Corrupt {
        /// File the corruption was found in.
        file: String,
        /// Byte offset of the failed check.
        offset: u64,
        /// Which check failed.
        reason: &'static str,
    },
    /// A record or checkpoint body failed to decode.
    Decode(DecodeError),
}

impl StorageError {
    /// Shorthand for a medium-level failure.
    pub fn io(msg: impl Into<String>) -> StorageError {
        StorageError::Io(msg.into())
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(msg) => write!(f, "storage i/o: {msg}"),
            StorageError::Corrupt {
                file,
                offset,
                reason,
            } => {
                write!(f, "corrupt {file} at byte {offset}: {reason}")
            }
            StorageError::Decode(e) => write!(f, "storage decode: {e}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<DecodeError> for StorageError {
    fn from(e: DecodeError) -> StorageError {
        StorageError::Decode(e)
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> StorageError {
        StorageError::Io(e.to_string())
    }
}
