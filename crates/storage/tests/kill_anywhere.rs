//! The kill-anywhere crash recovery property.
//!
//! A scripted, deterministic op stream runs against a [`DurableServer`]
//! over a [`MemMedium`] (an in-process model of file + page cache, whose
//! `crash()` is a power loss). The property, checked at *every* op index
//! and under every storage fault kind:
//!
//! after any crash, the recovered server's root digest, counter, and
//! reply journal are byte-identical to those of an oracle that replayed
//! exactly the acknowledged prefix — nothing acknowledged is lost, and
//! nothing unacknowledged is half-applied.

use proptest::prelude::*;
use tcvs_core::{
    FaultKind, FaultPlan, FaultRates, ProtocolConfig, ServerApi, ServerCore, StorageFault,
};
use tcvs_merkle::{u64_key, Op};
use tcvs_storage::{
    response_bytes, DurabilityOptions, DurableOptions, DurableServer, DurableStorage, FaultMedium,
    MemMedium, Storage, StorageObs,
};

const USERS: u64 = 3;

fn config() -> ProtocolConfig {
    ProtocolConfig {
        order: 4,
        k: 4,
        epoch_len: 10,
    }
}

/// The deterministic op stream: op index → (user, seq, op, round).
fn scripted(j: u64) -> (u32, u64, Op, u64) {
    let user = (j % USERS) as u32;
    let op = match j % 4 {
        0 => Op::Put(u64_key(j % 23), vec![(j % 251) as u8; 4]),
        1 => Op::Get(u64_key((j + 7) % 23)),
        2 => Op::Put(u64_key((j + 11) % 23), vec![(j % 13) as u8]),
        _ => Op::Delete(u64_key((j + 3) % 23)),
    };
    (user, j, op, j)
}

/// Replays ops `0..n` on a fresh in-memory core, returning it plus every
/// response's canonical bytes.
fn oracle(n: u64) -> (ServerCore, Vec<Vec<u8>>) {
    let mut core = ServerCore::new(&config());
    let mut replies = Vec::new();
    for j in 0..n {
        let (user, _seq, op, round) = scripted(j);
        replies.push(response_bytes(&core.process(user, &op, round)));
    }
    (core, replies)
}

fn open<M: tcvs_storage::Medium + Clone>(
    medium: M,
    checkpoint_every: u64,
) -> DurableServer<DurableStorage<M>> {
    let opts = DurableOptions {
        segment_bytes: 256, // tiny: crashes land across many segments
        retain_checkpoints: 2,
    };
    let store = DurableStorage::open(medium, opts);
    DurableServer::open(
        store,
        config(),
        DurabilityOptions {
            checkpoint_every,
            // These tests *inject* corruption and then assert on the exact
            // salvaged prefix, so they opt into serving past a corrupt
            // stop; the refusal default is covered by the engine tests.
            salvage_corruption: true,
        },
        StorageObs::disabled(),
    )
    .expect("open server")
}

/// Asserts the recovered world equals the oracle at `acked` ops: root
/// digest, counter, and a byte-identical reply journal.
fn assert_recovered_equals_oracle<M: tcvs_storage::Medium + Clone>(
    server: &DurableServer<DurableStorage<M>>,
    acked: u64,
    what: &str,
) {
    let (oracle_core, replies) = oracle(acked);
    assert_eq!(server.core().ctr(), acked, "{what}: counter");
    assert_eq!(
        server.core().root_digest(),
        oracle_core.root_digest(),
        "{what}: root digest"
    );
    let journal = server.recovered_journal().expect("durable journal");
    for u in 0..USERS.min(acked) {
        // The last scripted op of user u below `acked`.
        let last = (0..acked).rev().find(|j| j % USERS == u).unwrap();
        let (_, seq, resp) = journal
            .iter()
            .find(|(user, _, _)| *user == u as u32)
            .unwrap_or_else(|| panic!("{what}: user {u} missing from journal"));
        assert_eq!(*seq, last, "{what}: user {u} journal watermark");
        assert_eq!(
            response_bytes(resp),
            replies[last as usize],
            "{what}: user {u} journaled reply bytes"
        );
    }
}

/// Crash (power loss) after every acknowledged op index: the recovered
/// state must be exactly the acknowledged prefix.
#[test]
fn power_loss_at_every_op_index_recovers_the_acked_prefix() {
    const N: u64 = 40;
    for crash_at in 0..=N {
        let mem = MemMedium::new();
        let mut server = open(mem.clone(), 7);
        for j in 0..crash_at {
            let (user, seq, op, round) = scripted(j);
            server.handle_op_seq(user, seq, &op, round);
        }
        drop(server); // process death
        mem.crash(); // and the page cache with it
        let server = open(mem, 7);
        assert!(
            server.last_recovery().corrupt_stop.is_none(),
            "crash_at={crash_at}: {:?}",
            server.last_recovery()
        );
        assert_recovered_equals_oracle(&server, crash_at, &format!("crash_at={crash_at}"));
    }
}

/// A torn write at every op index: the faulted op is never acknowledged,
/// and recovery lands exactly on the prefix before it — whether the torn
/// bytes survived in the page cache (process restart) or not (power loss).
#[test]
fn torn_write_at_every_op_index_loses_only_the_unacked_op() {
    const N: u64 = 24;
    for torn_at in 0..N {
        for power_loss in [false, true] {
            let mem = MemMedium::new();
            let mut fm = FaultMedium::new(mem.clone());
            fm.schedule(torn_at, StorageFault::TornWrite);
            let opts = DurableOptions {
                segment_bytes: 256,
                retain_checkpoints: 2,
            };
            let store = DurableStorage::open(fm, opts);
            let mut server = DurableServer::open(
                store,
                config(),
                DurabilityOptions {
                    checkpoint_every: 7,
                    ..DurabilityOptions::default()
                },
                StorageObs::disabled(),
            )
            .expect("open");
            for j in 0..N {
                let (user, seq, op, round) = scripted(j);
                let result = server.apply(user, seq, &op, round);
                if j == torn_at {
                    result.expect_err("torn write must not acknowledge");
                    break;
                }
                result.expect("healthy op");
            }
            drop(server);
            if power_loss {
                mem.crash();
            }
            let server = open(mem, 7);
            assert_recovered_equals_oracle(
                &server,
                torn_at,
                &format!("torn_at={torn_at} power_loss={power_loss}"),
            );
        }
    }
}

/// A lying fsync at every op index, with the power failing right after:
/// the op whose sync was dropped is the modeled hazard — recovery must
/// still land on a *clean consistent prefix* (everything before it).
#[test]
fn lost_fsync_then_power_loss_recovers_a_clean_prefix() {
    const N: u64 = 24;
    for lost_at in 0..N {
        let mem = MemMedium::new();
        let mut fm = FaultMedium::new(mem.clone());
        fm.schedule(lost_at, StorageFault::FsyncLost);
        let opts = DurableOptions {
            segment_bytes: 256,
            retain_checkpoints: 2,
        };
        let store = DurableStorage::open(fm, opts);
        let mut server = DurableServer::open(
            store,
            config(),
            DurabilityOptions {
                checkpoint_every: 0,
                ..DurabilityOptions::default()
            }, // no checkpoints: pure log
            StorageObs::disabled(),
        )
        .expect("open");
        for j in 0..=lost_at {
            let (user, seq, op, round) = scripted(j);
            server.apply(user, seq, &op, round).expect("acked");
        }
        drop(server);
        mem.crash(); // power loss before any later sync could repair it
        let server = open(mem, 7);
        assert!(
            server.last_recovery().corrupt_stop.is_none(),
            "lost_at={lost_at}"
        );
        assert_recovered_equals_oracle(&server, lost_at, &format!("lost_at={lost_at}"));
    }
}

/// A flipped bit at every op index: recovery stops exactly at the flip,
/// reports it, and replays the intact prefix. A flip in a payload or
/// checksum is classified as corruption; a flip in the 4-byte length
/// header is indistinguishable from a truncated frame and is reported as
/// a torn tail — either way the stop point and the recovered prefix are
/// exact.
#[test]
fn bit_flip_at_every_op_index_stops_replay_at_the_flip() {
    const N: u64 = 24;
    for flip_at in 0..N {
        let mem = MemMedium::new();
        let mut fm = FaultMedium::new(mem.clone());
        fm.schedule(flip_at, StorageFault::BitFlip);
        let opts = DurableOptions {
            segment_bytes: 1 << 20, // one segment: the flip is interior
            retain_checkpoints: 2,
        };
        let store = DurableStorage::open(fm, opts);
        let mut server = DurableServer::open(
            store,
            config(),
            DurabilityOptions {
                checkpoint_every: 0,
                ..DurabilityOptions::default()
            },
            StorageObs::disabled(),
        )
        .expect("open");
        for j in 0..N {
            let (user, seq, op, round) = scripted(j);
            server.apply(user, seq, &op, round).expect("acked");
        }
        drop(server);
        let server = open(mem, 0);
        let report = server.last_recovery();
        assert!(
            report.corrupt_stop.is_some() || report.torn_tail.is_some(),
            "flip_at={flip_at}: the flip must be reported: {report:?}"
        );
        assert_recovered_equals_oracle(&server, flip_at, &format!("flip_at={flip_at}"));
    }
}

/// A transient short read during recovery heals on retry: nothing is
/// misclassified as torn.
#[test]
fn short_read_during_recovery_retries_and_recovers_everything() {
    const N: u64 = 12;
    let mem = MemMedium::new();
    let mut server = open(mem.clone(), 0);
    for j in 0..N {
        let (user, seq, op, round) = scripted(j);
        server.handle_op_seq(user, seq, &op, round);
    }
    drop(server);
    mem.crash();
    let mut fm = FaultMedium::new(mem);
    fm.arm_short_read();
    let opts = DurableOptions {
        segment_bytes: 256,
        retain_checkpoints: 2,
    };
    let recovered = DurableStorage::open(fm, opts).recover().expect("recover");
    assert!(
        recovered.report.corrupt_stop.is_none(),
        "{:?}",
        recovered.report
    );
    assert_eq!(recovered.tail.len() as u64, N);
}

/// Crash-restart through the [`ServerApi`] surface at every index: the
/// in-process equivalent of the kill loop, checkpoints enabled.
#[test]
fn crash_restart_at_every_op_index_is_transparent() {
    const N: u64 = 30;
    let mem = MemMedium::new();
    let mut server = open(mem, 5);
    let (_, replies) = oracle(N);
    for j in 0..N {
        let (user, seq, op, round) = scripted(j);
        let resp = server.handle_op_seq(user, seq, &op, round);
        assert_eq!(
            response_bytes(&resp),
            replies[j as usize],
            "op {j}: live reply matches oracle"
        );
        server.crash_restart(); // crash after *every* op
        assert_recovered_equals_oracle(&server, j + 1, &format!("after op {j}"));
    }
}

/// Ties the seeded fault plans into storage: every storage fault kind a
/// seeded plan schedules lands on the medium, and recovery still converges
/// to a consistent prefix afterwards.
#[test]
fn seeded_fault_plans_drive_storage_faults_end_to_end() {
    let rates = FaultRates {
        drop_pct: 0,
        dup_pct: 0,
        delay_pct: 0,
        reorder_pct: 0,
        crash_pct: 0,
        storage_pct: 30,
        max_delay_rounds: 0,
    };
    let plan = FaultPlan::seeded(42, 60, &rates);
    let mem = MemMedium::new();
    let mut fm = FaultMedium::new(mem.clone());
    let mut scheduled = 0u64;
    for (at, kind) in plan.iter() {
        if let FaultKind::Storage(f) = kind {
            // Torn writes kill the medium permanently mid-run; keep the
            // end-to-end pass to the recoverable kinds and cover torn
            // writes exhaustively above.
            if f != StorageFault::TornWrite {
                fm.schedule(at, f);
                scheduled += 1;
            }
        }
    }
    assert!(scheduled > 0, "seed 42 schedules storage faults");
    let opts = DurableOptions {
        segment_bytes: 512,
        retain_checkpoints: 2,
    };
    let store = DurableStorage::open(fm, opts);
    let mut server = DurableServer::open(
        store,
        config(),
        DurabilityOptions {
            checkpoint_every: 0,
            ..DurabilityOptions::default()
        },
        StorageObs::disabled(),
    )
    .expect("open");
    for j in 0..60 {
        let (user, seq, op, round) = scripted(j);
        server
            .apply(user, seq, &op, round)
            .expect("recoverable faults only");
    }
    drop(server);
    let server = open(mem, 0);
    // Bit flips may truncate the usable prefix; whatever prefix recovery
    // lands on must be internally consistent with the oracle.
    let acked = server.core().ctr();
    assert_recovered_equals_oracle(&server, acked, "seeded plan");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random workload lengths, checkpoint cadences, and crash points:
    /// recovery is always the acknowledged prefix.
    #[test]
    fn random_crash_points_recover_exactly(
        n in 1u64..80,
        every in 0u64..12,
        crash_at_rel in 0u64..1000,
    ) {
        let crash_at = crash_at_rel % (n + 1);
        let mem = MemMedium::new();
        let mut server = open(mem.clone(), every);
        for j in 0..crash_at {
            let (user, seq, op, round) = scripted(j);
            server.handle_op_seq(user, seq, &op, round);
        }
        drop(server);
        mem.crash();
        let server = open(mem, every);
        prop_assert!(server.last_recovery().corrupt_stop.is_none());
        let (oracle_core, _) = oracle(crash_at);
        prop_assert_eq!(server.core().ctr(), crash_at);
        prop_assert_eq!(server.core().root_digest(), oracle_core.root_digest());
    }
}
