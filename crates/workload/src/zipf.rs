//! Zipf-distributed key selection.
//!
//! CVS file accesses are heavily skewed — a few hot files (the `Common.h`
//! of the paper's running example) absorb most commits. The generator uses
//! an inverse-CDF Zipf sampler with precomputed cumulative weights.

use rand::Rng;

/// A Zipf(θ) sampler over `{0, 1, …, n−1}` (rank 0 is the hottest item).
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` items with exponent `theta ≥ 0`
    /// (`theta = 0` is uniform; `theta ≈ 1` is classic Zipf).
    pub fn new(n: usize, theta: f64) -> Zipf {
        assert!(n > 0, "Zipf over empty domain");
        assert!(theta >= 0.0, "negative Zipf exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of items.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Samples a rank in `[0, n)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 10];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(*max < min * 2, "uniform-ish: {counts:?}");
    }

    #[test]
    fn skewed_when_theta_one() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0u32; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 dominates rank 50 by roughly 50x; allow slack.
        assert!(
            counts[0] > counts[50] * 10,
            "{} vs {}",
            counts[0],
            counts[50]
        );
        // All samples in range.
        assert_eq!(counts.iter().map(|&c| c as u64).sum::<u64>(), 50_000);
    }

    #[test]
    fn single_item_domain() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic]
    fn empty_domain_panics() {
        Zipf::new(0, 1.0);
    }
}
