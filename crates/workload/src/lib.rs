//! # tcvs-workload
//!
//! Workload generation for the trusted-cvs experiments: CVS-flavoured
//! operation mixes over Zipf-skewed keyspaces, epoch-respecting schedules
//! for Protocol III, and the §3.1 **partitionable workloads** behind the
//! impossibility result.
//!
//! ```
//! use tcvs_workload::{generate, WorkloadSpec, OpMix};
//!
//! let trace = generate(&WorkloadSpec {
//!     n_users: 3,
//!     n_ops: 100,
//!     mix: OpMix::write_heavy(),
//!     ..WorkloadSpec::default()
//! });
//! assert_eq!(trace.len(), 100);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod mix;
mod partitionable;
mod trace;
mod zipf;

pub use mix::{generate, generate_epoch_workload, OpMix, WorkloadSpec};
pub use partitionable::{partitionable, PartitionSpec, PartitionableWorkload};
pub use trace::{ScheduledOp, Trace};
pub use zipf::Zipf;
