//! Operation traces: the workload vocabulary shared by the simulator, the
//! threaded deployment, and the benchmarks.
//!
//! A *workload* in the paper is "a sequence of operations on the data" —
//! here each operation is additionally tagged with the user issuing it and
//! the round it is issued at (§2.1: at most one query action per round).

use tcvs_core::{Op, UserId};

/// One scheduled operation of a workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduledOp {
    /// Round at which the user issues the query action.
    pub round: u64,
    /// Issuing user.
    pub user: UserId,
    /// The operation.
    pub op: Op,
}

/// A workload trace: scheduled operations in non-decreasing round order.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    ops: Vec<ScheduledOp>,
}

impl Trace {
    /// Builds a trace, sorting by round (stable, so same-round order is
    /// preserved as given).
    pub fn new(mut ops: Vec<ScheduledOp>) -> Trace {
        ops.sort_by_key(|s| s.round);
        Trace { ops }
    }

    /// The scheduled operations, round-ordered.
    pub fn ops(&self) -> &[ScheduledOp] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True iff the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of operations per user id.
    pub fn ops_per_user(&self) -> std::collections::BTreeMap<UserId, u64> {
        let mut m = std::collections::BTreeMap::new();
        for s in &self.ops {
            *m.entry(s.user).or_insert(0) += 1;
        }
        m
    }

    /// Highest scheduled round (0 for an empty trace).
    pub fn last_round(&self) -> u64 {
        self.ops.last().map_or(0, |s| s.round)
    }

    /// Fraction of operations that are updates.
    pub fn update_fraction(&self) -> f64 {
        if self.ops.is_empty() {
            return 0.0;
        }
        let updates = self.ops.iter().filter(|s| s.op.is_update()).count();
        updates as f64 / self.ops.len() as f64
    }

    /// Concatenates another trace after this one (rounds must already be
    /// disjoint or interleaved as intended; re-sorts).
    pub fn merge(self, other: Trace) -> Trace {
        let mut ops = self.ops;
        ops.extend(other.ops);
        Trace::new(ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcvs_merkle::u64_key;

    fn op(round: u64, user: UserId) -> ScheduledOp {
        ScheduledOp {
            round,
            user,
            op: Op::Get(u64_key(round)),
        }
    }

    #[test]
    fn trace_sorts_by_round() {
        let t = Trace::new(vec![op(5, 0), op(1, 1), op(3, 0)]);
        let rounds: Vec<u64> = t.ops().iter().map(|s| s.round).collect();
        assert_eq!(rounds, vec![1, 3, 5]);
        assert_eq!(t.last_round(), 5);
    }

    #[test]
    fn per_user_counts() {
        let t = Trace::new(vec![op(1, 0), op(2, 1), op(3, 0)]);
        let m = t.ops_per_user();
        assert_eq!(m[&0], 2);
        assert_eq!(m[&1], 1);
    }

    #[test]
    fn update_fraction_counts_puts_and_deletes() {
        let t = Trace::new(vec![
            ScheduledOp {
                round: 0,
                user: 0,
                op: Op::Put(u64_key(1), vec![1]),
            },
            ScheduledOp {
                round: 1,
                user: 0,
                op: Op::Get(u64_key(1)),
            },
        ]);
        assert!((t.update_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn merge_reorders() {
        let a = Trace::new(vec![op(0, 0), op(4, 0)]);
        let b = Trace::new(vec![op(2, 1)]);
        let m = a.merge(b);
        let rounds: Vec<u64> = m.ops().iter().map(|s| s.round).collect();
        assert_eq!(rounds, vec![0, 2, 4]);
    }

    #[test]
    fn empty_trace_behaviour() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.last_round(), 0);
        assert_eq!(t.update_fraction(), 0.0);
    }
}
