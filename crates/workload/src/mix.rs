//! Operation-mix generators: CVS-flavoured workloads over a keyspace.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tcvs_core::{Op, UserId};
use tcvs_merkle::u64_key;

use crate::trace::{ScheduledOp, Trace};
use crate::zipf::Zipf;

/// Relative operation weights. Typical CVS traffic is checkout-heavy with a
/// meaningful commit stream.
#[derive(Clone, Copy, Debug)]
pub struct OpMix {
    /// Weight of point reads (checkout of one file).
    pub get: u32,
    /// Weight of range reads (checkout of a directory).
    pub range: u32,
    /// Weight of inserts/updates (commit).
    pub put: u32,
    /// Weight of deletes (file removal).
    pub delete: u32,
}

impl OpMix {
    /// Checkout-heavy mix (80% reads).
    pub fn read_heavy() -> OpMix {
        OpMix {
            get: 70,
            range: 10,
            put: 18,
            delete: 2,
        }
    }

    /// Commit-heavy mix (75% updates): the regime where Protocol I's extra
    /// blocking message hurts most.
    pub fn write_heavy() -> OpMix {
        OpMix {
            get: 20,
            range: 5,
            put: 70,
            delete: 5,
        }
    }

    /// Updates only.
    pub fn update_only() -> OpMix {
        OpMix {
            get: 0,
            range: 0,
            put: 100,
            delete: 0,
        }
    }

    fn total(&self) -> u32 {
        self.get + self.range + self.put + self.delete
    }
}

/// Parameters for the general workload generator.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Number of users issuing operations.
    pub n_users: u32,
    /// Total number of operations.
    pub n_ops: usize,
    /// Keyspace size (number of distinct "files").
    pub key_space: u64,
    /// Zipf exponent for key popularity (0 = uniform).
    pub zipf_theta: f64,
    /// Operation mix.
    pub mix: OpMix,
    /// Value size in bytes for updates.
    pub value_len: usize,
    /// Rounds between consecutive operations (≥ 1; the paper issues at most
    /// one query action per round).
    pub round_gap: u64,
    /// RNG seed (runs are fully reproducible).
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            n_users: 4,
            n_ops: 1000,
            key_space: 256,
            zipf_theta: 0.9,
            mix: OpMix::read_heavy(),
            value_len: 64,
            round_gap: 1,
            seed: 42,
        }
    }
}

/// Generates a trace: users drawn uniformly, keys Zipf-distributed, ops per
/// the mix.
pub fn generate(spec: &WorkloadSpec) -> Trace {
    assert!(spec.n_users > 0 && spec.mix.total() > 0 && spec.round_gap > 0);
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let zipf = Zipf::new(spec.key_space as usize, spec.zipf_theta);
    let mut ops = Vec::with_capacity(spec.n_ops);
    for i in 0..spec.n_ops {
        let user: UserId = rng.gen_range(0..spec.n_users);
        let key = zipf.sample(&mut rng) as u64;
        let roll = rng.gen_range(0..spec.mix.total());
        let op = if roll < spec.mix.get {
            Op::Get(u64_key(key))
        } else if roll < spec.mix.get + spec.mix.range {
            let span = rng.gen_range(1u64..=8);
            Op::Range(Some(u64_key(key)), Some(u64_key(key + span)))
        } else if roll < spec.mix.get + spec.mix.range + spec.mix.put {
            let mut value = vec![0u8; spec.value_len];
            rng.fill(&mut value[..]);
            Op::Put(u64_key(key), value)
        } else {
            Op::Delete(u64_key(key))
        };
        ops.push(ScheduledOp {
            round: i as u64 * spec.round_gap,
            user,
            op,
        });
    }
    Trace::new(ops)
}

/// Generates an epoch-respecting trace for Protocol III: every user performs
/// at least `ops_per_epoch ≥ 2` operations in every epoch of length
/// `epoch_len`, for `epochs` epochs.
pub fn generate_epoch_workload(
    n_users: u32,
    epochs: u64,
    epoch_len: u64,
    ops_per_epoch: u64,
    spec: &WorkloadSpec,
) -> Trace {
    assert!(ops_per_epoch >= 2, "Protocol III needs ≥ 2 ops per epoch");
    let slots = n_users as u64 * ops_per_epoch;
    assert!(
        slots <= epoch_len,
        "epoch too short: {slots} ops into {epoch_len} rounds"
    );
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let zipf = Zipf::new(spec.key_space as usize, spec.zipf_theta);
    let mut ops = Vec::new();
    for e in 0..epochs {
        for j in 0..ops_per_epoch {
            for u in 0..n_users {
                // Deterministic slot spread inside the epoch.
                let slot = j * n_users as u64 + u as u64;
                let round = e * epoch_len + slot * (epoch_len / slots);
                let key = zipf.sample(&mut rng) as u64;
                // Respect the spec's mix, collapsed to get-vs-put (epoch
                // workloads exercise the protocol, not the range machinery).
                let updates = spec.mix.put + spec.mix.delete;
                let reads = spec.mix.get + spec.mix.range;
                let op = if rng.gen_range(0..(updates + reads).max(1)) < updates {
                    let mut value = vec![0u8; spec.value_len];
                    rng.fill(&mut value[..]);
                    Op::Put(u64_key(key), value)
                } else {
                    Op::Get(u64_key(key))
                };
                ops.push(ScheduledOp { round, user: u, op });
            }
        }
    }
    Trace::new(ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_respects_count_and_users() {
        let spec = WorkloadSpec {
            n_users: 3,
            n_ops: 300,
            ..WorkloadSpec::default()
        };
        let t = generate(&spec);
        assert_eq!(t.len(), 300);
        let m = t.ops_per_user();
        assert_eq!(m.len(), 3, "all users participate: {m:?}");
        assert!(t.ops().iter().all(|s| s.user < 3));
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = WorkloadSpec::default();
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.ops(), b.ops());
        let c = generate(&WorkloadSpec { seed: 43, ..spec });
        assert_ne!(a.ops(), c.ops());
    }

    #[test]
    fn mix_shapes_update_fraction() {
        let read = generate(&WorkloadSpec {
            mix: OpMix::read_heavy(),
            n_ops: 2000,
            ..WorkloadSpec::default()
        });
        let write = generate(&WorkloadSpec {
            mix: OpMix::write_heavy(),
            n_ops: 2000,
            ..WorkloadSpec::default()
        });
        assert!(read.update_fraction() < 0.3);
        assert!(write.update_fraction() > 0.6);
    }

    #[test]
    fn epoch_workload_meets_protocol3_requirement() {
        let spec = WorkloadSpec::default();
        let t = generate_epoch_workload(3, 4, 60, 2, &spec);
        // Every user has ≥ 2 ops in every epoch.
        for e in 0..4u64 {
            for u in 0..3u32 {
                let count = t
                    .ops()
                    .iter()
                    .filter(|s| s.user == u && s.round / 60 == e)
                    .count();
                assert!(count >= 2, "user {u} epoch {e}: {count}");
            }
        }
    }

    #[test]
    #[should_panic]
    fn epoch_workload_rejects_single_op() {
        generate_epoch_workload(2, 1, 100, 1, &WorkloadSpec::default());
    }
}
