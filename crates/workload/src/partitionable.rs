//! Partitionable workloads (§3.1): the workload class that makes bounded
//! deviation detection impossible without external communication.
//!
//! The paper's running example: a US programmer commits `Common.h` (t₁) and
//! goes offline; a programmer in China makes a causally dependent change
//! (t₂) and then k+1 further changes before the US programmer returns. A
//! malicious server can serve group B a history in which t₁ never happened
//! — the partition attack of Fig. 1 — and, absent external communication,
//! no one can tell within any bound.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tcvs_core::{Op, UserId};
use tcvs_merkle::u64_key;

use crate::trace::{ScheduledOp, Trace};

/// A generated partitionable workload plus the structural markers the
/// experiments need.
#[derive(Clone, Debug)]
pub struct PartitionableWorkload {
    /// The full trace.
    pub trace: Trace,
    /// Users in group A (the side that goes offline; the US programmer).
    pub group_a: Vec<UserId>,
    /// Users in group B (the side that keeps working).
    pub group_b: Vec<UserId>,
    /// Global op index of t₁ (group A's last causally relevant commit):
    /// the natural fork trigger for the adversary.
    pub t1_index: u64,
    /// Key that t₁ writes and t₂ depends on (the shared `Common.h`).
    pub shared_key: u64,
    /// Number of operations group B performs after t₂ (the "k + 1").
    pub tail_ops: u64,
}

/// Parameters for [`partitionable`].
#[derive(Clone, Debug)]
pub struct PartitionSpec {
    /// Total users; split half/half into groups A and B.
    pub n_users: u32,
    /// Warm-up operations before t₁ (both groups active, shared history).
    pub warmup_ops: u64,
    /// Operations group B performs after t₂ — choose `k + 1` to defeat a
    /// `k`-bounded detector that lacks external communication.
    pub tail_ops: u64,
    /// Keyspace for the warm-up and tail operations.
    pub key_space: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PartitionSpec {
    fn default() -> Self {
        PartitionSpec {
            n_users: 4,
            warmup_ops: 20,
            tail_ops: 17,
            key_space: 64,
            seed: 7,
        }
    }
}

/// Builds the §3.1 workload:
///
/// 1. `warmup_ops` mixed operations by everyone (common prefix, rounds
///    `0 .. warmup`),
/// 2. **t₁**: a group-A user commits the shared key, then all of group A
///    goes offline,
/// 3. **t₂**: a group-B user reads the shared key (causal dependence),
/// 4. group B performs `tail_ops` further operations.
pub fn partitionable(spec: &PartitionSpec) -> PartitionableWorkload {
    assert!(spec.n_users >= 2, "need at least one user per group");
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let group_a: Vec<UserId> = (0..spec.n_users / 2).collect();
    let group_b: Vec<UserId> = (spec.n_users / 2..spec.n_users).collect();
    let shared_key = spec.key_space; // outside the warm-up keyspace

    let mut ops = Vec::new();
    let mut round = 0u64;
    for _ in 0..spec.warmup_ops {
        let user = rng.gen_range(0..spec.n_users);
        let key = rng.gen_range(0..spec.key_space);
        let op = if rng.gen_bool(0.5) {
            Op::Put(u64_key(key), vec![rng.gen()])
        } else {
            Op::Get(u64_key(key))
        };
        ops.push(ScheduledOp { round, user, op });
        round += 1;
    }

    // t1: group A's commit to the shared header.
    let t1_index = ops.len() as u64;
    ops.push(ScheduledOp {
        round,
        user: group_a[0],
        op: Op::Put(u64_key(shared_key), b"#define COMMON 2".to_vec()),
    });
    round += 1;

    // t2: group B's causally dependent read of that header.
    ops.push(ScheduledOp {
        round,
        user: group_b[0],
        op: Op::Get(u64_key(shared_key)),
    });
    round += 1;

    // Group B works on alone.
    for i in 0..spec.tail_ops {
        let user = group_b[(i as usize) % group_b.len()];
        let key = rng.gen_range(0..spec.key_space);
        ops.push(ScheduledOp {
            round,
            user,
            op: Op::Put(u64_key(key), vec![i as u8]),
        });
        round += 1;
    }

    PartitionableWorkload {
        trace: Trace::new(ops),
        group_a,
        group_b,
        t1_index,
        shared_key,
        tail_ops: spec.tail_ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_matches_definition() {
        let w = partitionable(&PartitionSpec::default());
        let ops = w.trace.ops();
        assert_eq!(ops.len(), 20 + 2 + 17);
        // t1 is a group-A put of the shared key.
        let t1 = &ops[w.t1_index as usize];
        assert!(w.group_a.contains(&t1.user));
        assert_eq!(
            t1.op,
            Op::Put(u64_key(w.shared_key), b"#define COMMON 2".to_vec())
        );
        // t2 immediately follows and reads the same key from group B.
        let t2 = &ops[w.t1_index as usize + 1];
        assert!(w.group_b.contains(&t2.user));
        assert_eq!(t2.op, Op::Get(u64_key(w.shared_key)));
        // Group A issues nothing after t1.
        assert!(ops[w.t1_index as usize + 1..]
            .iter()
            .all(|s| w.group_b.contains(&s.user)));
    }

    #[test]
    fn groups_partition_users() {
        let w = partitionable(&PartitionSpec {
            n_users: 6,
            ..PartitionSpec::default()
        });
        let mut all: Vec<UserId> = w.group_a.iter().chain(w.group_b.iter()).copied().collect();
        all.sort();
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn tail_has_k_plus_one_ops() {
        let w = partitionable(&PartitionSpec {
            tail_ops: 9,
            ..PartitionSpec::default()
        });
        let tail = &w.trace.ops()[w.t1_index as usize + 2..];
        assert_eq!(tail.len(), 9);
    }
}
