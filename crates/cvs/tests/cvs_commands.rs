//! End-to-end tests of the CVS command set over the authenticated database.

use tcvs_core::adversary::{TamperServer, Trigger};
use tcvs_core::{HonestServer, ProtocolConfig};
use tcvs_cvs::{Cvs, CvsError, DirectSession};

fn session() -> DirectSession<HonestServer> {
    let config = ProtocolConfig {
        order: 8,
        ..ProtocolConfig::default()
    };
    DirectSession::new(0, HonestServer::new(&config), config)
}

#[test]
fn add_checkout_commit_cycle() {
    let mut s = session();
    let mut cvs = Cvs::new(&mut s, "alice");
    assert_eq!(
        cvs.add("Common.h", "#pragma once\n", "import", 1).unwrap(),
        1
    );

    let mut wf = cvs.checkout("Common.h").unwrap();
    assert_eq!(wf.base_rev, 1);
    assert_eq!(wf.lines, vec!["#pragma once"]);

    wf.lines.push("#define N 4".to_string());
    assert_eq!(cvs.commit(&wf, "add N", 2).unwrap(), 2);

    let wf2 = cvs.checkout("Common.h").unwrap();
    assert_eq!(wf2.base_rev, 2);
    assert_eq!(wf2.lines, vec!["#pragma once", "#define N 4"]);
}

#[test]
fn duplicate_add_rejected() {
    let mut s = session();
    let mut cvs = Cvs::new(&mut s, "alice");
    cvs.add("a.c", "int x;\n", "one", 1).unwrap();
    assert_eq!(
        cvs.add("a.c", "int y;\n", "two", 2),
        Err(CvsError::AlreadyExists("a.c".into()))
    );
}

#[test]
fn missing_file_reported() {
    let mut s = session();
    let mut cvs = Cvs::new(&mut s, "alice");
    assert_eq!(
        cvs.checkout("ghost.c"),
        Err(CvsError::NoSuchFile("ghost.c".into()))
    );
    assert!(matches!(
        cvs.remove("ghost.c"),
        Err(CvsError::NoSuchFile(_))
    ));
}

#[test]
fn stale_commit_conflicts() {
    let mut s = session();
    let mut cvs = Cvs::new(&mut s, "alice");
    cvs.add("f.c", "v1\n", "r1", 1).unwrap();
    let stale = cvs.checkout("f.c").unwrap();

    // Bob commits first (same session for simplicity; the conflict logic is
    // revision-based, not identity-based).
    let mut bobs = cvs.checkout("f.c").unwrap();
    bobs.lines = vec!["v2".to_string()];
    cvs.commit(&bobs, "bob wins", 2).unwrap();

    // Alice's stale working copy now conflicts.
    let err = cvs.commit(&stale, "alice loses", 3).unwrap_err();
    assert_eq!(
        err,
        CvsError::Conflict {
            path: "f.c".into(),
            head: 2,
            base: 1
        }
    );

    // After update, the commit goes through.
    let mut wf = stale;
    assert!(cvs.update(&mut wf).unwrap());
    wf.lines.push("alice's line".to_string());
    assert_eq!(cvs.commit(&wf, "alice retries", 4).unwrap(), 3);
}

#[test]
fn log_records_authors_and_messages() {
    let mut s = session();
    {
        let mut alice = Cvs::new(&mut s, "alice");
        alice.add("doc.md", "hello\n", "import", 10).unwrap();
    }
    {
        let mut bob = Cvs::new(&mut s, "bob");
        let mut wf = bob.checkout("doc.md").unwrap();
        wf.lines.push("world".to_string());
        bob.commit(&wf, "expand", 20).unwrap();
    }
    let mut cvs = Cvs::new(&mut s, "carol");
    let log = cvs.log("doc.md").unwrap();
    assert_eq!(log.len(), 2);
    assert_eq!(log[0].1.author, "alice");
    assert_eq!(log[0].1.message, "import");
    assert_eq!(log[1].1.author, "bob");
    assert_eq!(log[1].1.stamp, 20);
}

#[test]
fn checkout_rev_reaches_history() {
    let mut s = session();
    let mut cvs = Cvs::new(&mut s, "alice");
    cvs.add("f", "one\n", "r1", 1).unwrap();
    for i in 2..=5u32 {
        let mut wf = cvs.checkout("f").unwrap();
        wf.lines.push(format!("line {i}"));
        cvs.commit(&wf, "grow", i as u64).unwrap();
    }
    let r1 = cvs.checkout_rev("f", 1).unwrap();
    assert_eq!(r1.lines, vec!["one"]);
    let r3 = cvs.checkout_rev("f", 3).unwrap();
    assert_eq!(r3.lines, vec!["one", "line 2", "line 3"]);
    assert_eq!(cvs.checkout_rev("f", 9), Err(CvsError::NoSuchRevision(9)));
}

#[test]
fn diff_between_revisions() {
    let mut s = session();
    let mut cvs = Cvs::new(&mut s, "alice");
    cvs.add("f", "keep\nold\n", "r1", 1).unwrap();
    let mut wf = cvs.checkout("f").unwrap();
    wf.lines[1] = "new".to_string();
    cvs.commit(&wf, "r2", 2).unwrap();
    let d = cvs.diff("f", 1, 2).unwrap();
    assert!(d.contains("- old"));
    assert!(d.contains("+ new"));
    assert!(d.contains("  keep"));
}

#[test]
fn annotate_attributes_lines_to_revisions() {
    let mut s = session();
    let mut cvs = Cvs::new(&mut s, "alice");
    cvs.add("f", "original\n", "r1", 1).unwrap();
    let mut wf = cvs.checkout("f").unwrap();
    wf.lines.push("added in r2".to_string());
    cvs.commit(&wf, "r2", 2).unwrap();
    let mut wf = cvs.checkout("f").unwrap();
    wf.lines.insert(0, "added in r3".to_string());
    cvs.commit(&wf, "r3", 3).unwrap();

    let blame = cvs.annotate("f").unwrap();
    assert_eq!(
        blame,
        vec![
            (3, "added in r3".to_string()),
            (1, "original".to_string()),
            (2, "added in r2".to_string()),
        ]
    );
}

#[test]
fn list_and_remove() {
    let mut s = session();
    let mut cvs = Cvs::new(&mut s, "alice");
    for p in ["b.c", "a.c", "dir/z.h"] {
        cvs.add(p, "x\n", "import", 1).unwrap();
    }
    assert_eq!(cvs.list().unwrap(), vec!["a.c", "b.c", "dir/z.h"]);
    cvs.remove("b.c").unwrap();
    assert_eq!(cvs.list().unwrap(), vec!["a.c", "dir/z.h"]);
}

#[test]
fn multi_user_shared_server() {
    // Two protocol clients (different users) on one server, interleaved
    // commits, both verified.
    let config = ProtocolConfig {
        order: 8,
        ..ProtocolConfig::default()
    };
    let server = HonestServer::new(&config);
    let mut alice_s = DirectSession::new(0, server, config);
    {
        let mut alice = Cvs::new(&mut alice_s, "alice");
        alice.add("shared.c", "alice v1\n", "import", 1).unwrap();
    }
    // Hand the server to Bob's session (simulating a second client against
    // the same server; rounds continue via a fresh client).
    let server = alice_s.into_server();
    let mut bob_s = DirectSession::new(1, server, config);
    let mut bob = Cvs::new(&mut bob_s, "bob");
    let mut wf = bob.checkout("shared.c").unwrap();
    wf.lines.push("bob was here".to_string());
    bob.commit(&wf, "bob's change", 2).unwrap();
    let log = bob.log("shared.c").unwrap();
    assert_eq!(log[0].1.author, "alice");
    assert_eq!(log[1].1.author, "bob");
}

#[test]
fn tampering_server_detected_through_cvs_layer() {
    let config = ProtocolConfig {
        order: 8,
        ..ProtocolConfig::default()
    };
    // Tamper after a few ops.
    let server = TamperServer::new(&config, Trigger::AtCtr(3));
    let mut s = DirectSession::new(0, server, config);
    let mut cvs = Cvs::new(&mut s, "alice");
    cvs.add("f", "v1\n", "r1", 1).unwrap();
    let mut detected = false;
    for i in 0..10u64 {
        match cvs.checkout("f") {
            Ok(mut wf) => {
                wf.lines.push(format!("edit {i}"));
                match cvs.commit(&wf, "edit", i) {
                    Ok(_) => {}
                    Err(CvsError::Deviation(_)) => {
                        detected = true;
                        break;
                    }
                    Err(other) => panic!("unexpected {other}"),
                }
            }
            Err(CvsError::Deviation(_)) => {
                detected = true;
                break;
            }
            Err(other) => panic!("unexpected {other}"),
        }
    }
    // NOTE: Protocol II alone detects tampering at sync-up, not per-op;
    // but the tampered VO root no longer chains, which *this* client
    // notices only via accumulator mismatch at sync. However, the replay
    // check still passes per-op (the server is internally consistent after
    // the tamper), so detection may legitimately not fire here per-op.
    // What MUST hold: the final sync-up fails.
    if !detected {
        let shares = vec![s.sync_share()];
        assert!(
            !s.sync_succeeds(&shares),
            "tamper must at least break the sync-up"
        );
    }
}
