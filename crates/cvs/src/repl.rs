//! A scriptable command interpreter for trusted-cvs: the engine behind the
//! `tcvs` binary. Commands run against an in-process server (honest or
//! adversarial) through per-user verified sessions, so the whole protocol
//! stack is exercised interactively.
//!
//! ```text
//! tcvs> user alice
//! tcvs> add Common.h "#pragma once"
//! tcvs> commit Common.h "#pragma once\n#define V 2" -m "bump"
//! tcvs> log Common.h
//! tcvs> sync
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

use tcvs_obs::{
    render_chrome_trace_with_loss, render_openmetrics, FlightRecorder, MetricsRegistry, TraceLoss,
    Tracer, FLIGHT_RECORDER_DEFAULT_CAP,
};

use tcvs_core::adversary::{
    CounterSkipServer, DropServer, ForkServer, LieServer, RollbackServer, TamperServer, Trigger,
};
use tcvs_core::{
    Client2, HonestServer, Op, OpResult, ProtocolConfig, ServerApi, SyncShare, UserId,
};
use tcvs_merkle::MerkleTree;
use tcvs_store::from_lines;

use crate::client::{Cvs, WorkingFile};
use crate::error::CvsError;
use crate::session::VerifiedDb;

/// The interpreter: one shared server, one verified session per user.
pub struct Repl {
    server: Box<dyn ServerApi>,
    config: ProtocolConfig,
    root0: tcvs_core::Digest,
    clients: BTreeMap<String, (UserId, Client2)>,
    current: Option<String>,
    next_user_id: UserId,
    round: u64,
    stamp: u64,
    /// Set once any session detects deviation; all further ops refuse.
    poisoned: bool,
    /// Observability, present after [`Repl::enable_metrics`]: the registry
    /// behind the `metrics` command, the tracer handed to every client, and
    /// the flight-recorder ring the clients' protocol events land in —
    /// bounded memory no matter how long the session runs.
    obs: Option<ReplObs>,
}

struct ReplObs {
    registry: Arc<MetricsRegistry>,
    tracer: Tracer,
    recorder: Arc<FlightRecorder>,
}

impl ReplObs {
    /// Mirrors the flight-recorder counters into gauges so snapshots (text,
    /// OpenMetrics) show how much of the timeline the ring still holds.
    fn sync_ring_gauges(&self) {
        self.registry
            .gauge("obs.flight.recorded")
            .set(self.recorder.recorded() as i64);
        self.registry
            .gauge("obs.flight.overwritten")
            .set(self.recorder.overwritten() as i64);
    }
}

/// A borrowed session for one command: routes through the REPL's server.
struct ReplSession<'a> {
    server: &'a mut dyn ServerApi,
    client: &'a mut Client2,
    round: &'a mut u64,
}

impl VerifiedDb for ReplSession<'_> {
    fn execute(&mut self, op: &Op) -> Result<OpResult, crate::CvsError> {
        let resp = self.server.handle_op(self.client.user(), op, *self.round);
        *self.round += 1;
        Ok(self.client.handle_response(op, &resp)?)
    }
}

impl Repl {
    /// A REPL over an honest server.
    pub fn new() -> Repl {
        let config = ProtocolConfig::default();
        Repl::with_server(Box::new(HonestServer::new(&config)), config)
    }

    /// A REPL over any server implementation.
    pub fn with_server(server: Box<dyn ServerApi>, config: ProtocolConfig) -> Repl {
        Repl {
            server,
            config,
            root0: MerkleTree::with_order(config.order).root_digest(),
            clients: BTreeMap::new(),
            current: None,
            next_user_id: 0,
            round: 0,
            stamp: 0,
            poisoned: false,
            obs: None,
        }
    }

    /// Turns on observability (the `tcvs --metrics` flag): every session's
    /// protocol events are traced into memory, commands and detections are
    /// counted, and the `metrics` command reports both. Survives `attack`
    /// world resets.
    pub fn enable_metrics(&mut self) {
        let (tracer, recorder) = Tracer::flight(FLIGHT_RECORDER_DEFAULT_CAP);
        for (_, client) in self.clients.values_mut() {
            client.set_tracer(tracer.clone());
        }
        self.obs = Some(ReplObs {
            registry: Arc::new(MetricsRegistry::new()),
            tracer,
            recorder,
        });
    }

    /// The current metrics in diffable text form (empty when metrics are
    /// not enabled).
    pub fn metrics_text(&self) -> String {
        self.obs
            .as_ref()
            .map(|o| {
                o.sync_ring_gauges();
                o.registry.snapshot().render_text()
            })
            .unwrap_or_default()
    }

    /// The current metrics in OpenMetrics text exposition (empty when
    /// metrics are not enabled) — what `tcvs --metrics-out` writes at exit.
    pub fn openmetrics_text(&self) -> String {
        self.obs
            .as_ref()
            .map(|o| {
                o.sync_ring_gauges();
                render_openmetrics(&o.registry.snapshot())
            })
            .unwrap_or_default()
    }

    /// Executes one command line, returning the text to print.
    pub fn exec(&mut self, line: &str) -> String {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return String::new();
        }
        // `help`, `metrics` and `trace` stay available after detection —
        // the event timeline is exactly what a poisoned session wants to
        // inspect.
        if self.poisoned && line != "help" && line != "metrics" && !line.starts_with("trace") {
            return "session poisoned: server deviation was detected; restart required".into();
        }
        let tokens = tokenize(line);
        let (cmd, args) = tokens.split_first().map(|(c, a)| (c.as_str(), a)).unwrap();
        if let Some(obs) = &self.obs {
            obs.registry.counter("cvs.commands").inc();
            obs.registry.counter(&format!("cvs.cmd.{cmd}")).inc();
        }
        let result = match cmd {
            "help" => Ok(HELP.to_string()),
            "metrics" => Ok(self.cmd_metrics()),
            "trace" => Ok(self.cmd_trace(args)),
            "user" => self.cmd_user(args),
            "add" => self.cmd_add(args),
            "cat" => self.cmd_cat(args),
            "commit" => self.cmd_commit(args),
            "log" => self.cmd_log(args),
            "diff" => self.cmd_diff(args),
            "annotate" => self.cmd_annotate(args),
            "ls" => self.cmd_ls(),
            "rm" => self.cmd_rm(args),
            "sync" => Ok(self.cmd_sync()),
            "attack" => self.cmd_attack(args),
            other => Err(format!("unknown command: {other} (try `help`)")),
        };
        match result {
            Ok(s) => s,
            Err(e) => {
                if e.contains("deviation") {
                    self.poisoned = true;
                    if let Some(obs) = &self.obs {
                        obs.registry.counter("cvs.detections").inc();
                    }
                }
                format!("error: {e}")
            }
        }
    }

    /// The `metrics` command: counter values plus the tail of the protocol
    /// event timeline.
    fn cmd_metrics(&mut self) -> String {
        let Some(obs) = &self.obs else {
            return "metrics are off (run `tcvs --metrics`, or call Repl::enable_metrics)".into();
        };
        obs.sync_ring_gauges();
        let mut out = obs.registry.snapshot().render_text();
        let events = obs.recorder.snapshot();
        if !events.is_empty() {
            let tail = &events[events.len().saturating_sub(10)..];
            let _ = write!(
                out,
                "\nlast {} of {} events:\n{}",
                tail.len(),
                obs.recorder.recorded(),
                tcvs_obs::render_log(tail)
            );
        }
        out
    }

    /// The `trace` command: the flight-recorder timeline as a text log, or
    /// — with `trace json` — as Chrome-trace JSON for Perfetto.
    fn cmd_trace(&mut self, args: &[String]) -> String {
        let Some(obs) = &self.obs else {
            return "tracing is off (run `tcvs --metrics`, or call Repl::enable_metrics)".into();
        };
        let events = obs.recorder.snapshot();
        match args.first().map(String::as_str) {
            Some("json") => render_chrome_trace_with_loss(
                &events,
                TraceLoss {
                    overwritten: obs.recorder.overwritten(),
                    dropped: 0,
                },
            ),
            _ if events.is_empty() => "no events recorded yet".into(),
            _ => format!(
                "flight recorder: {} retained of {} recorded ({} overwritten)\n{}",
                events.len(),
                obs.recorder.recorded(),
                obs.recorder.overwritten(),
                obs.recorder.render_log()
            ),
        }
    }

    fn with_cvs<T>(
        &mut self,
        f: impl FnOnce(&mut Cvs<'_, ReplSession<'_>>) -> Result<T, CvsError>,
    ) -> Result<T, String> {
        let name = self
            .current
            .clone()
            .ok_or("no user selected (use `user <name>`)")?;
        let (_, client) = self.clients.get_mut(&name).expect("selected user exists");
        let mut session = ReplSession {
            server: self.server.as_mut(),
            client,
            round: &mut self.round,
        };
        let mut cvs = Cvs::new(&mut session, &name);
        f(&mut cvs).map_err(|e| e.to_string())
    }

    fn cmd_user(&mut self, args: &[String]) -> Result<String, String> {
        let name = args.first().ok_or("usage: user <name>")?;
        if !self.clients.contains_key(name) {
            let id = self.next_user_id;
            self.next_user_id += 1;
            let mut client = Client2::new(id, &self.root0, self.config);
            if let Some(obs) = &self.obs {
                client.set_tracer(obs.tracer.clone());
            }
            self.clients.insert(name.clone(), (id, client));
        }
        self.current = Some(name.clone());
        Ok(format!("now acting as {name}"))
    }

    fn cmd_add(&mut self, args: &[String]) -> Result<String, String> {
        let [path, content] = two(args, "add <path> <content>")?;
        self.stamp += 1;
        let stamp = self.stamp;
        let rev = self.with_cvs(|cvs| cvs.add(&path, &unescape(&content), "add", stamp))?;
        Ok(format!("{path} r{rev}"))
    }

    fn cmd_cat(&mut self, args: &[String]) -> Result<String, String> {
        let path = args.first().ok_or("usage: cat <path> [rev]")?.clone();
        let rev = args
            .get(1)
            .map(|r| r.parse::<u32>().map_err(|e| e.to_string()))
            .transpose()?;
        let wf = self.with_cvs(|cvs| match rev {
            Some(r) => cvs.checkout_rev(&path, r),
            None => cvs.checkout(&path),
        })?;
        Ok(format!(
            "== {} r{} ==\n{}",
            wf.path,
            wf.base_rev,
            from_lines(&wf.lines)
        ))
    }

    fn cmd_commit(&mut self, args: &[String]) -> Result<String, String> {
        // commit <path> <content> [-m <message>]
        let [path, content] = two(
            &args[..2.min(args.len())],
            "commit <path> <content> [-m msg]",
        )?;
        let message = args
            .iter()
            .position(|a| a == "-m")
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| "(no message)".into());
        self.stamp += 1;
        let stamp = self.stamp;
        let rev = self.with_cvs(|cvs| {
            let base = cvs.checkout(&path)?;
            let wf = WorkingFile {
                path: path.clone(),
                lines: tcvs_store::to_lines(&unescape(&content)),
                base_rev: base.base_rev,
            };
            cvs.commit(&wf, &message, stamp)
        })?;
        Ok(format!("{path} -> r{rev}"))
    }

    fn cmd_log(&mut self, args: &[String]) -> Result<String, String> {
        let path = args.first().ok_or("usage: log <path>")?.clone();
        let entries = self.with_cvs(|cvs| cvs.log(&path))?;
        let mut out = String::new();
        for (rev, meta) in entries {
            let _ = writeln!(out, "r{rev}  {}  \"{}\"", meta.author, meta.message);
        }
        Ok(out)
    }

    fn cmd_diff(&mut self, args: &[String]) -> Result<String, String> {
        if args.len() < 3 {
            return Err("usage: diff <path> <rev-a> <rev-b>".into());
        }
        let path = args[0].clone();
        let a: u32 = args[1].parse().map_err(|_| "rev-a must be a number")?;
        let b: u32 = args[2].parse().map_err(|_| "rev-b must be a number")?;
        self.with_cvs(|cvs| cvs.diff(&path, a, b))
    }

    fn cmd_annotate(&mut self, args: &[String]) -> Result<String, String> {
        let path = args.first().ok_or("usage: annotate <path>")?.clone();
        let blame = self.with_cvs(|cvs| cvs.annotate(&path))?;
        let mut out = String::new();
        for (rev, line) in blame {
            let _ = writeln!(out, "r{rev:<4} {line}");
        }
        Ok(out)
    }

    fn cmd_ls(&mut self) -> Result<String, String> {
        let paths = self.with_cvs(|cvs| cvs.list())?;
        Ok(paths.join("\n"))
    }

    fn cmd_rm(&mut self, args: &[String]) -> Result<String, String> {
        let path = args.first().ok_or("usage: rm <path>")?.clone();
        self.with_cvs(|cvs| cvs.remove(&path))?;
        Ok(format!("removed {path}"))
    }

    /// Broadcast sync-up across every user this REPL has created.
    fn cmd_sync(&mut self) -> String {
        let shares: Vec<SyncShare> = self.clients.values().map(|(_, c)| c.sync_share()).collect();
        let ok = self.clients.values().any(|(_, c)| c.sync_succeeds(&shares));
        if ok {
            let total: u64 = shares.iter().map(|s| s.lctr).sum();
            format!("sync-up OK over {total} operations: single consistent history")
        } else {
            self.poisoned = true;
            if let Some(obs) = &self.obs {
                obs.registry.counter("cvs.detections").inc();
            }
            "SYNC-UP FAILED: the server deviated (fork/drop/replay); leave the system".into()
        }
    }

    /// Swaps in an adversarial server *preserving no state* — a fresh demo
    /// world where the named attack will fire after `trigger` ops.
    fn cmd_attack(&mut self, args: &[String]) -> Result<String, String> {
        let name = args
            .first()
            .ok_or("usage: attack <fork|drop|rollback|tamper|counter-skip|lie> [trigger]")?;
        let trigger: u64 = args
            .get(1)
            .map_or(Ok(3), |t| t.parse().map_err(|_| "bad trigger"))?;
        let t = Trigger::AtCtr(trigger);
        let server: Box<dyn ServerApi> = match name.as_str() {
            "fork" => Box::new(ForkServer::new(&self.config, t, &[0])),
            "drop" => Box::new(DropServer::new(&self.config, t)),
            "rollback" => Box::new(RollbackServer::new(&self.config, t)),
            "tamper" => Box::new(TamperServer::new(&self.config, t)),
            "counter-skip" => Box::new(CounterSkipServer::new(&self.config, t)),
            "lie" => Box::new(LieServer::new(&self.config, t)),
            other => return Err(format!("unknown attack: {other}")),
        };
        let observed = self.obs.is_some();
        *self = Repl::with_server(server, self.config);
        if observed {
            self.enable_metrics();
        }
        Ok(format!(
            "fresh world over a malicious `{name}` server (attack at op #{trigger}); recreate users and watch the protocol catch it"
        ))
    }
}

impl Default for Repl {
    fn default() -> Self {
        Repl::new()
    }
}

/// Splits a command line into tokens, honouring double quotes.
fn tokenize(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    for c in line.chars() {
        match c {
            '"' => in_quotes = !in_quotes,
            c if c.is_whitespace() && !in_quotes => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Interprets `\n` escapes in quoted content.
fn unescape(s: &str) -> String {
    s.replace("\\n", "\n")
}

fn two(args: &[String], usage: &str) -> Result<[String; 2], String> {
    if args.len() < 2 {
        return Err(format!("usage: {usage}"));
    }
    Ok([args[0].clone(), args[1].clone()])
}

const HELP: &str = "\
commands:
  user <name>                    select (or create) a user
  add <path> <content>           create a file (content may use \\n)
  cat <path> [rev]               verified checkout
  commit <path> <content> -m <msg>   verified read-modify-write commit
  log <path> | diff <path> a b | annotate <path> | ls | rm <path>
  sync                           broadcast sync-up across all users
  attack <name> [trigger]        restart against a malicious server
  metrics                        counters + recent protocol events (needs --metrics)
  trace [json]                   flight-recorder timeline; `json` emits Chrome-trace
  help";

#[cfg(test)]
mod tests {
    use super::*;

    fn run(repl: &mut Repl, script: &[&str]) -> Vec<String> {
        script.iter().map(|l| repl.exec(l)).collect()
    }

    #[test]
    fn basic_session() {
        let mut r = Repl::new();
        let out = run(
            &mut r,
            &[
                "user alice",
                r##"add Common.h "#pragma once""##,
                r##"commit Common.h "#pragma once\n#define V 2" -m "bump""##,
                "cat Common.h",
                "log Common.h",
                "ls",
                "sync",
            ],
        );
        assert!(out[1].contains("r1"));
        assert!(out[2].contains("r2"));
        assert!(out[3].contains("#define V 2"));
        assert!(out[4].contains("alice") && out[4].contains("bump"));
        assert_eq!(out[5], "Common.h");
        assert!(out[6].contains("sync-up OK"));
    }

    #[test]
    fn multi_user_history() {
        let mut r = Repl::new();
        run(&mut r, &["user alice", r#"add f "one""#]);
        let out = run(
            &mut r,
            &[
                "user bob",
                r#"commit f "one\ntwo" -m "bob adds""#,
                "annotate f",
            ],
        );
        assert!(out[1].contains("r2"));
        assert!(out[2].contains("r1") && out[2].contains("r2"));
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut r = Repl::new();
        assert!(r.exec("cat nothing").contains("error"));
        assert!(r.exec("bogus").contains("unknown command"));
        assert!(r.exec("user alice").contains("alice"));
        assert!(r.exec("cat missing").contains("no such file"));
        // Still usable afterwards.
        assert!(r.exec(r#"add f "x""#).contains("r1"));
    }

    #[test]
    fn lie_attack_detected_and_poisons_session() {
        let mut r = Repl::new();
        r.exec("attack lie 2");
        r.exec("user alice");
        r.exec(r#"add f "v1""#);
        // Keep reading until the lie fires.
        let mut detected = false;
        for _ in 0..6 {
            let out = r.exec("cat f");
            if out.contains("deviation") {
                detected = true;
                break;
            }
        }
        assert!(detected, "lie must surface");
        assert!(r.exec("cat f").contains("poisoned"));
    }

    #[test]
    fn fork_attack_caught_by_sync() {
        let mut r = Repl::new();
        r.exec("attack fork 4");
        r.exec("user alice"); // user id 0 => branch A
        r.exec(r#"add shared "v1""#);
        r.exec("user bob"); // user id 1 => branch B after fork
        for i in 0..4 {
            r.exec(&format!(r#"commit shared "v{i}" -m edit"#));
        }
        r.exec("user alice");
        r.exec("cat shared");
        let out = r.exec("sync");
        assert!(out.contains("FAILED"), "{out}");
    }

    #[test]
    fn metrics_command_reports_counts_and_events() {
        let mut r = Repl::new();
        assert!(r.exec("metrics").contains("metrics are off"));
        r.enable_metrics();
        r.exec("user alice");
        r.exec(r#"add f "v1""#);
        r.exec("sync");
        let out = r.exec("metrics");
        assert!(out.contains("cvs.commands"), "{out}");
        assert!(out.contains("cvs.cmd.sync"), "{out}");
        assert!(out.contains("sync-up"), "traced events shown: {out}");
        assert!(r.metrics_text().contains("cvs.cmd.add"));
    }

    #[test]
    fn metrics_survive_attack_reset_and_poisoning() {
        let mut r = Repl::new();
        r.enable_metrics();
        r.exec("attack lie 2");
        r.exec("user alice");
        r.exec(r#"add f "v1""#);
        for _ in 0..6 {
            if r.exec("cat f").contains("deviation") {
                break;
            }
        }
        // Poisoned sessions still answer `metrics`, and the detection was
        // counted and traced.
        let out = r.exec("metrics");
        assert!(out.contains("cvs.detections"), "{out}");
        assert!(out.contains("detection"), "{out}");
    }

    #[test]
    fn failed_sync_counts_as_detection() {
        let mut r = Repl::new();
        r.enable_metrics();
        r.exec("attack fork 3");
        r.exec("user alice");
        r.exec("user bob");
        r.exec("user alice");
        r.exec(r#"add f "v1""#);
        r.exec("user bob");
        for i in 0..4 {
            r.exec(&format!(r#"commit f "v{i}" -m edit"#));
        }
        r.exec("user alice");
        r.exec("cat f");
        assert!(r.exec("sync").contains("FAILED"));
        assert!(r.metrics_text().contains("cvs.detections"));
    }

    #[test]
    fn trace_command_renders_timeline_and_chrome_json() {
        let mut r = Repl::new();
        assert!(r.exec("trace").contains("tracing is off"));
        r.enable_metrics();
        assert!(r.exec("trace").contains("no events"));
        r.exec("user alice");
        r.exec(r#"add f "v1""#);
        r.exec("sync");
        let text = r.exec("trace");
        assert!(text.contains("flight recorder:"), "{text}");
        assert!(text.contains("sync-up"), "{text}");
        let json = r.exec("trace json");
        assert!(json.contains("\"traceEvents\""), "{json}");
        assert!(json.contains("sync-up"), "{json}");
        // The ring counters surface in both text and OpenMetrics form.
        assert!(r.metrics_text().contains("obs.flight.recorded"));
        let om = r.openmetrics_text();
        assert!(om.contains("obs_flight_recorded"), "{om}");
        assert!(om.ends_with("# EOF\n"), "{om}");
    }

    #[test]
    fn trace_survives_poisoning() {
        let mut r = Repl::new();
        r.enable_metrics();
        r.exec("attack lie 2");
        r.exec("user alice");
        r.exec(r#"add f "v1""#);
        for _ in 0..6 {
            if r.exec("cat f").contains("deviation") {
                break;
            }
        }
        assert!(r.exec("cat f").contains("poisoned"));
        assert!(r.exec("trace").contains("detection"));
        assert!(r.exec("trace json").contains("verdict"));
    }

    #[test]
    fn tokenizer_handles_quotes() {
        assert_eq!(
            tokenize(r#"commit f "two words" -m "a message""#),
            vec!["commit", "f", "two words", "-m", "a message"]
        );
        assert_eq!(tokenize("  "), Vec::<String>::new());
    }
}
