//! Verified database sessions: the transport seam between CVS commands and
//! the protocol clients.
//!
//! CVS commands only need "execute this operation with verification". Any
//! protocol client over any transport can provide that; [`VerifiedDb`] is
//! the trait, and [`DirectSession`] is the batteries-included in-process
//! implementation (Protocol II client + any [`ServerApi`]).

use tcvs_core::{Client2, Op, OpResult, ProtocolConfig, ServerApi, SyncShare, UserId};
use tcvs_merkle::MerkleTree;

use crate::error::CvsError;

/// A database session whose operations are verified by a trusted-CVS
/// protocol client (or, for baselines, not verified at all).
pub trait VerifiedDb {
    /// Executes one operation. [`CvsError::Deviation`] means the server
    /// deviated and the session must stop; [`CvsError::Network`] means a
    /// benign transport failure that may be retried.
    fn execute(&mut self, op: &Op) -> Result<OpResult, CvsError>;
}

/// Blanket impl so any closure can act as a session — this is how the
/// threaded clients in `tcvs-net` (or custom transports) plug in.
impl<F> VerifiedDb for F
where
    F: FnMut(&Op) -> Result<OpResult, CvsError>,
{
    fn execute(&mut self, op: &Op) -> Result<OpResult, CvsError> {
        self(op)
    }
}

/// An in-process session: a Protocol II client talking straight to a
/// boxed server (honest or adversarial). Rounds advance one per operation.
pub struct DirectSession<S: ServerApi> {
    server: S,
    client: Client2,
    round: u64,
}

impl<S: ServerApi> DirectSession<S> {
    /// Creates a session for `user` over `server` (which must be freshly
    /// initialized — the client assumes the empty-database initial root).
    pub fn new(user: UserId, server: S, config: ProtocolConfig) -> DirectSession<S> {
        let root0 = MerkleTree::with_order(config.order).root_digest();
        DirectSession {
            server,
            client: Client2::new(user, &root0, config),
            round: 0,
        }
    }

    /// This session's sync-up share (for out-of-band sync with other
    /// sessions of the same server).
    pub fn sync_share(&self) -> SyncShare {
        self.client.sync_share()
    }

    /// Evaluates the Protocol II sync-up predicate.
    pub fn sync_succeeds(&self, shares: &[SyncShare]) -> bool {
        self.client.sync_succeeds(shares)
    }

    /// Access to the underlying server (to share it across sessions in
    /// tests, hand it to another user, or inspect it).
    pub fn server_mut(&mut self) -> &mut S {
        &mut self.server
    }

    /// Consumes the session, returning the server.
    pub fn into_server(self) -> S {
        self.server
    }
}

impl<S: ServerApi> VerifiedDb for DirectSession<S> {
    fn execute(&mut self, op: &Op) -> Result<OpResult, CvsError> {
        let resp = self.server.handle_op(self.client.user(), op, self.round);
        self.round += 1;
        Ok(self.client.handle_response(op, &resp)?)
    }
}

/// An unverified session over a server: the trusted baseline for the
/// macro-benchmarks.
pub struct UnverifiedSession<S: ServerApi> {
    server: S,
    user: UserId,
    round: u64,
}

impl<S: ServerApi> UnverifiedSession<S> {
    /// Creates a baseline session.
    pub fn new(user: UserId, server: S) -> UnverifiedSession<S> {
        UnverifiedSession {
            server,
            user,
            round: 0,
        }
    }
}

impl<S: ServerApi> VerifiedDb for UnverifiedSession<S> {
    fn execute(&mut self, op: &Op) -> Result<OpResult, CvsError> {
        let resp = self.server.handle_op(self.user, op, self.round);
        self.round += 1;
        Ok(resp.result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcvs_core::HonestServer;
    use tcvs_merkle::u64_key;

    #[test]
    fn direct_session_verifies_ops() {
        let config = ProtocolConfig {
            order: 8,
            ..ProtocolConfig::default()
        };
        let server = HonestServer::new(&config);
        let mut s = DirectSession::new(0, server, config);
        let r = s.execute(&Op::Put(u64_key(1), b"hello".to_vec())).unwrap();
        assert_eq!(r, OpResult::Replaced(None));
        let r = s.execute(&Op::Get(u64_key(1))).unwrap();
        assert_eq!(r, OpResult::Value(Some(b"hello".to_vec())));
    }

    #[test]
    fn closure_session_works() {
        let config = ProtocolConfig::default();
        let mut server = HonestServer::new(&config);
        let mut round = 0u64;
        let mut session = move |op: &Op| -> Result<OpResult, CvsError> {
            let resp = server.handle_op(0, op, round);
            round += 1;
            Ok(resp.result)
        };
        let r = session.execute(&Op::Get(u64_key(9))).unwrap();
        assert_eq!(r, OpResult::Value(None));
    }
}
