//! `tcvs-audit` — the independent cold verifier for evidence bundles.
//!
//! ```text
//! $ tcvs-audit incident.evb
//! $ tcvs-audit --json incident.evb > report.json
//! ```
//!
//! Loads a captured [`tcvs_core::EvidenceBundle`] from disk with **no live
//! server** and re-derives the verdict from the artifact alone: every
//! signature, VO hash chain, grove spine, and sync-up predicate is
//! re-verified, and the embedded transition logs are re-diagnosed to name
//! which shard/user/counter first deviated. A tampered artifact — any
//! single flipped byte — is rejected at the exact offending field and
//! proves nothing.
//!
//! Exit status: `0` when the artifact is authentic (whatever the verdict),
//! `1` when any artifact is rejected as forged/tampered, `2` on usage or
//! I/O errors.

use std::process::ExitCode;

use tcvs_core::audit_bytes;

const USAGE: &str = "usage: tcvs-audit [--json] <bundle-file>...";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let files: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    if files.is_empty() || args.iter().any(|a| a.starts_with("--") && a != "--json") {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    let mut any_rejected = false;
    for path in files {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("tcvs-audit: {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let report = audit_bytes(&bytes);
        if json {
            println!("{}", report.render_json());
        } else {
            print!("== {path} ==\n{}", report.render_text());
        }
        any_rejected |= !report.accepted;
    }
    if any_rejected {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
