//! `tcvs` — an interactive trusted-cvs shell over an in-process server.
//!
//! ```text
//! $ cargo run -p tcvs-cvs --bin tcvs -- --metrics
//! tcvs> user alice
//! tcvs> add Common.h "#pragma once"
//! tcvs> sync
//! tcvs> metrics
//! ```
//!
//! Try `attack fork` and watch the sync-up catch the partition attack.
//! `--metrics` turns on the observability layer: protocol events are traced
//! and the `metrics` command (and a final dump at exit) reports counters.

use std::io::{BufRead, Write};

use tcvs_cvs::Repl;

fn main() {
    let metrics = std::env::args().skip(1).any(|a| a == "--metrics");
    let mut repl = Repl::new();
    if metrics {
        repl.enable_metrics();
    }
    println!("trusted-cvs interactive shell — `help` for commands, ctrl-d to exit");
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("tcvs> ");
        let _ = out.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {
                let reply = repl.exec(&line);
                if !reply.is_empty() {
                    println!("{reply}");
                }
            }
        }
    }
    if metrics {
        let text = repl.metrics_text();
        if !text.is_empty() {
            println!("\nsession metrics:\n{text}");
        }
    }
}
