//! `tcvs` — an interactive trusted-cvs shell over an in-process server.
//!
//! ```text
//! $ cargo run -p tcvs-cvs --bin tcvs -- --metrics
//! tcvs> user alice
//! tcvs> add Common.h "#pragma once"
//! tcvs> sync
//! tcvs> metrics
//! tcvs> trace
//! ```
//!
//! Try `attack fork` and watch the sync-up catch the partition attack.
//! `--metrics` turns on the observability layer: protocol events land in a
//! bounded flight recorder, and the `metrics` / `trace` commands (and a
//! final dump at exit) report counters and the span timeline.
//! `--metrics-out <path>` (implies `--metrics`) additionally writes the
//! final counters as OpenMetrics text exposition to `path` at exit.

use std::io::{BufRead, Write};

use tcvs_cvs::Repl;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let metrics_out = args
        .iter()
        .position(|a| a == "--metrics-out")
        .and_then(|i| args.get(i + 1).cloned());
    let metrics = metrics_out.is_some() || args.iter().any(|a| a == "--metrics");
    let mut repl = Repl::new();
    if metrics {
        repl.enable_metrics();
    }
    println!("trusted-cvs interactive shell — `help` for commands, ctrl-d to exit");
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("tcvs> ");
        let _ = out.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {
                let reply = repl.exec(&line);
                if !reply.is_empty() {
                    println!("{reply}");
                }
            }
        }
    }
    if metrics {
        let text = repl.metrics_text();
        if !text.is_empty() {
            println!("\nsession metrics:\n{text}");
        }
    }
    if let Some(path) = metrics_out {
        match std::fs::write(&path, repl.openmetrics_text()) {
            Ok(()) => eprintln!("wrote OpenMetrics exposition to {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}
