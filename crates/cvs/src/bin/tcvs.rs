//! `tcvs` — an interactive trusted-cvs shell over an in-process server.
//!
//! ```text
//! $ cargo run -p tcvs-cvs --bin tcvs
//! tcvs> user alice
//! tcvs> add Common.h "#pragma once"
//! tcvs> sync
//! ```
//!
//! Try `attack fork` and watch the sync-up catch the partition attack.

use std::io::{BufRead, Write};

use tcvs_cvs::Repl;

fn main() {
    let mut repl = Repl::new();
    println!("trusted-cvs interactive shell — `help` for commands, ctrl-d to exit");
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("tcvs> ");
        let _ = out.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {
                let reply = repl.exec(&line);
                if !reply.is_empty() {
                    println!("{reply}");
                }
            }
        }
    }
}
