//! Multi-file working copies: the client-side sandbox a developer edits in.
//!
//! A [`WorkingCopy`] tracks, per file, the checked-out base revision and the
//! (possibly modified) content, mirroring a CVS sandbox directory. It
//! supports local edits, status reporting, atomic-ish multi-file commits
//! (per-file conflict checks, like real CVS), and updates.

use std::collections::BTreeMap;

use tcvs_store::RevNo;

use crate::client::{Cvs, WorkingFile};
use crate::error::CvsError;
use crate::session::VerifiedDb;

/// Local modification state of one file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileStatus {
    /// Unmodified since checkout.
    Clean,
    /// Locally modified, not yet committed.
    Modified,
}

#[derive(Clone, Debug)]
struct Entry {
    base_rev: RevNo,
    base_lines: Vec<String>,
    lines: Vec<String>,
}

/// A developer's working copy: a set of checked-out files plus local edits.
#[derive(Clone, Debug, Default)]
pub struct WorkingCopy {
    files: BTreeMap<String, Entry>,
}

impl WorkingCopy {
    /// An empty working copy.
    pub fn new() -> WorkingCopy {
        WorkingCopy::default()
    }

    /// Checks out every repository file into this working copy.
    pub fn checkout_all<D: VerifiedDb + ?Sized>(
        &mut self,
        cvs: &mut Cvs<'_, D>,
    ) -> Result<usize, CvsError> {
        let paths = cvs.list()?;
        for path in &paths {
            self.checkout_one(cvs, path)?;
        }
        Ok(paths.len())
    }

    /// Checks out (or refreshes) a single file.
    pub fn checkout_one<D: VerifiedDb + ?Sized>(
        &mut self,
        cvs: &mut Cvs<'_, D>,
        path: &str,
    ) -> Result<RevNo, CvsError> {
        let wf = cvs.checkout(path)?;
        let rev = wf.base_rev;
        self.files.insert(
            path.to_string(),
            Entry {
                base_rev: wf.base_rev,
                base_lines: wf.lines.clone(),
                lines: wf.lines,
            },
        );
        Ok(rev)
    }

    /// Local content of a file.
    pub fn read(&self, path: &str) -> Option<&[String]> {
        self.files.get(path).map(|e| e.lines.as_slice())
    }

    /// Replaces a file's local content (the "editor").
    pub fn edit(&mut self, path: &str, lines: Vec<String>) -> Result<(), CvsError> {
        let e = self
            .files
            .get_mut(path)
            .ok_or_else(|| CvsError::NoSuchFile(path.to_string()))?;
        e.lines = lines;
        Ok(())
    }

    /// Status of every file, sorted by path.
    pub fn status(&self) -> Vec<(String, FileStatus, RevNo)> {
        self.files
            .iter()
            .map(|(p, e)| {
                let st = if e.lines == e.base_lines {
                    FileStatus::Clean
                } else {
                    FileStatus::Modified
                };
                (p.clone(), st, e.base_rev)
            })
            .collect()
    }

    /// Paths with local modifications.
    pub fn modified(&self) -> Vec<String> {
        self.status()
            .into_iter()
            .filter(|(_, st, _)| *st == FileStatus::Modified)
            .map(|(p, _, _)| p)
            .collect()
    }

    /// Commits every modified file. Returns the committed `(path, new_rev)`
    /// pairs. Stops at the first conflict (the already-committed files stay
    /// committed — CVS's per-file commit semantics).
    pub fn commit_all<D: VerifiedDb + ?Sized>(
        &mut self,
        cvs: &mut Cvs<'_, D>,
        message: &str,
        stamp: u64,
    ) -> Result<Vec<(String, RevNo)>, CvsError> {
        let mut done = Vec::new();
        for path in self.modified() {
            let e = self.files.get(&path).expect("listed");
            let wf = WorkingFile {
                path: path.clone(),
                lines: e.lines.clone(),
                base_rev: e.base_rev,
            };
            let rev = cvs.commit(&wf, message, stamp)?;
            let e = self.files.get_mut(&path).expect("listed");
            e.base_rev = rev;
            e.base_lines = e.lines.clone();
            done.push((path, rev));
        }
        Ok(done)
    }

    /// Updates every *clean* file to the repository head; modified files are
    /// left alone (reported back for the caller to resolve). Returns the
    /// refreshed paths.
    pub fn update_all<D: VerifiedDb + ?Sized>(
        &mut self,
        cvs: &mut Cvs<'_, D>,
    ) -> Result<Vec<String>, CvsError> {
        let mut refreshed = Vec::new();
        let clean: Vec<String> = self
            .status()
            .into_iter()
            .filter(|(_, st, _)| *st == FileStatus::Clean)
            .map(|(p, _, _)| p)
            .collect();
        for path in clean {
            let wf = cvs.checkout(&path)?;
            let e = self.files.get_mut(&path).expect("listed");
            if wf.base_rev != e.base_rev {
                e.base_rev = wf.base_rev;
                e.base_lines = wf.lines.clone();
                e.lines = wf.lines;
                refreshed.push(path);
            }
        }
        Ok(refreshed)
    }

    /// Number of files in the working copy.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True iff the working copy is empty.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::DirectSession;
    use tcvs_core::{HonestServer, ProtocolConfig};

    fn session() -> DirectSession<HonestServer> {
        let config = ProtocolConfig {
            order: 8,
            ..ProtocolConfig::default()
        };
        DirectSession::new(0, HonestServer::new(&config), config)
    }

    #[test]
    fn checkout_edit_commit_cycle() {
        let mut s = session();
        let mut cvs = Cvs::new(&mut s, "alice");
        cvs.add("a.c", "one\n", "import", 0).unwrap();
        cvs.add("b.c", "two\n", "import", 0).unwrap();

        let mut wc = WorkingCopy::new();
        assert_eq!(wc.checkout_all(&mut cvs).unwrap(), 2);
        assert_eq!(wc.len(), 2);
        assert!(wc.modified().is_empty());

        wc.edit("a.c", vec!["one".into(), "edited".into()]).unwrap();
        assert_eq!(wc.modified(), vec!["a.c".to_string()]);

        let done = wc.commit_all(&mut cvs, "edit a", 1).unwrap();
        assert_eq!(done, vec![("a.c".to_string(), 2)]);
        assert!(wc.modified().is_empty(), "commit re-baselines");
    }

    #[test]
    fn status_tracks_modifications() {
        let mut s = session();
        let mut cvs = Cvs::new(&mut s, "alice");
        cvs.add("f", "x\n", "import", 0).unwrap();
        let mut wc = WorkingCopy::new();
        wc.checkout_one(&mut cvs, "f").unwrap();
        assert_eq!(wc.status()[0].1, FileStatus::Clean);
        wc.edit("f", vec!["y".into()]).unwrap();
        assert_eq!(wc.status()[0].1, FileStatus::Modified);
        // Reverting the edit by hand returns to Clean.
        wc.edit("f", vec!["x".into()]).unwrap();
        assert_eq!(wc.status()[0].1, FileStatus::Clean);
    }

    #[test]
    fn update_all_refreshes_only_clean_files() {
        let mut s = session();
        // Alice's working copy.
        let mut wc = WorkingCopy::new();
        {
            let mut cvs = Cvs::new(&mut s, "alice");
            cvs.add("f", "v1\n", "import", 0).unwrap();
            cvs.add("g", "v1\n", "import", 0).unwrap();
            wc.checkout_all(&mut cvs).unwrap();
        }
        // Bob moves both files forward.
        {
            let mut cvs = Cvs::new(&mut s, "bob");
            for p in ["f", "g"] {
                let mut wf = cvs.checkout(p).unwrap();
                wf.lines.push("bob's line".into());
                cvs.commit(&wf, "bob", 1).unwrap();
            }
        }
        // Alice has local edits in g only.
        wc.edit("g", vec!["alice's divergent edit".into()]).unwrap();
        let mut cvs = Cvs::new(&mut s, "alice");
        let refreshed = wc.update_all(&mut cvs).unwrap();
        assert_eq!(refreshed, vec!["f".to_string()]);
        assert_eq!(wc.read("f").unwrap().len(), 2, "f picked up bob's line");
        assert_eq!(wc.read("g").unwrap()[0], "alice's divergent edit");
    }

    #[test]
    fn missing_paths_error() {
        let mut wc = WorkingCopy::new();
        assert!(wc.edit("ghost", vec![]).is_err());
        assert!(wc.read("ghost").is_none());
    }

    #[test]
    fn commit_all_stops_at_conflicts() {
        let mut s = session();
        let mut wc = WorkingCopy::new();
        {
            let mut cvs = Cvs::new(&mut s, "alice");
            cvs.add("f", "v1\n", "import", 0).unwrap();
            wc.checkout_all(&mut cvs).unwrap();
        }
        // Bob commits first.
        {
            let mut cvs = Cvs::new(&mut s, "bob");
            let mut wf = cvs.checkout("f").unwrap();
            wf.lines.push("bob".into());
            cvs.commit(&wf, "bob", 1).unwrap();
        }
        wc.edit("f", vec!["alice".into()]).unwrap();
        let mut cvs = Cvs::new(&mut s, "alice");
        let err = wc.commit_all(&mut cvs, "alice", 2).unwrap_err();
        assert!(matches!(err, CvsError::Conflict { .. }));
    }
}
