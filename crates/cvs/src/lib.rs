//! # tcvs-cvs
//!
//! The CVS front end of trusted-cvs: checkout / commit / update / log /
//! diff / annotate over the **authenticated** database, so every command's
//! result is verified against the server's Merkle commitments and every
//! server deviation surfaces as an error.
//!
//! Files map to database entries `f:<path>` whose values are RCS-style
//! reverse-delta histories (`tcvs-store`); commands are verified database
//! operations executed through any [`VerifiedDb`] session — in-process
//! ([`DirectSession`]), threaded (`tcvs-net` clients via the closure
//! adapter), or a test double.
//!
//! ```
//! use tcvs_core::{HonestServer, ProtocolConfig};
//! use tcvs_cvs::{Cvs, DirectSession};
//!
//! let config = ProtocolConfig::default();
//! let mut session = DirectSession::new(0, HonestServer::new(&config), config);
//! let mut cvs = Cvs::new(&mut session, "alice");
//!
//! cvs.add("Common.h", "#pragma once\n", "initial import", 1).unwrap();
//! let mut wf = cvs.checkout("Common.h").unwrap();
//! wf.lines.push("#define VERSION 2".to_string());
//! let rev = cvs.commit(&wf, "bump version", 2).unwrap();
//! assert_eq!(rev, 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod client;
mod error;
pub mod repl;
mod session;
mod wc;

pub use client::{file_key, key_path, Cvs, WorkingFile};
pub use error::CvsError;
pub use repl::Repl;
pub use session::{DirectSession, UnverifiedSession, VerifiedDb};
pub use wc::{FileStatus, WorkingCopy};
