//! The CVS command set over the authenticated database.
//!
//! Files live in the database as `f:<path>` → serialized
//! [`FileHistory`] values; every command is one or two verified database
//! operations. Semantics follow CVS: `commit` requires the working copy's
//! base revision to equal the head (otherwise a conflict is reported and
//! the user must `update` first).

use tcvs_core::{Op, OpResult};
use tcvs_store::{to_lines, FileHistory, RevMeta, RevNo};

use crate::error::CvsError;
use crate::session::VerifiedDb;

/// Database key for a file path.
pub fn file_key(path: &str) -> Vec<u8> {
    let mut k = Vec::with_capacity(2 + path.len());
    k.extend_from_slice(b"f:");
    k.extend_from_slice(path.as_bytes());
    k
}

/// Inverse of [`file_key`].
pub fn key_path(key: &[u8]) -> Option<String> {
    key.strip_prefix(b"f:")
        .and_then(|p| String::from_utf8(p.to_vec()).ok())
}

/// A checked-out file: content plus the base revision for a later commit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkingFile {
    /// Repository path.
    pub path: String,
    /// Line content at `base_rev`.
    pub lines: Vec<String>,
    /// The revision this content corresponds to.
    pub base_rev: RevNo,
}

/// The trusted-CVS command set, generic over any verified session.
pub struct Cvs<'a, D: VerifiedDb + ?Sized> {
    db: &'a mut D,
    user: String,
}

impl<'a, D: VerifiedDb + ?Sized> Cvs<'a, D> {
    /// Wraps a session; `user` is recorded as the author of commits.
    pub fn new(db: &'a mut D, user: &str) -> Cvs<'a, D> {
        Cvs {
            db,
            user: user.to_string(),
        }
    }

    fn fetch_history(&mut self, path: &str) -> Result<Option<FileHistory>, CvsError> {
        match self.db.execute(&Op::Get(file_key(path)))? {
            OpResult::Value(Some(bytes)) => Ok(Some(FileHistory::from_bytes(&bytes)?)),
            OpResult::Value(None) => Ok(None),
            other => Err(CvsError::Corrupt(format!("unexpected result {other:?}"))),
        }
    }

    fn store_history(&mut self, path: &str, h: &FileHistory) -> Result<(), CvsError> {
        self.db.execute(&Op::Put(file_key(path), h.to_bytes()))?;
        Ok(())
    }

    /// `cvs add` + first commit: creates `path` at revision 1.
    pub fn add(
        &mut self,
        path: &str,
        content: &str,
        message: &str,
        stamp: u64,
    ) -> Result<RevNo, CvsError> {
        if self.fetch_history(path)?.is_some() {
            return Err(CvsError::AlreadyExists(path.to_string()));
        }
        let h = FileHistory::create(
            to_lines(content),
            RevMeta {
                author: self.user.clone(),
                message: message.to_string(),
                stamp,
            },
        );
        self.store_history(path, &h)?;
        Ok(1)
    }

    /// `cvs checkout <file>`: head content + base revision.
    pub fn checkout(&mut self, path: &str) -> Result<WorkingFile, CvsError> {
        let h = self
            .fetch_history(path)?
            .ok_or_else(|| CvsError::NoSuchFile(path.to_string()))?;
        Ok(WorkingFile {
            path: path.to_string(),
            lines: h.head_content().to_vec(),
            base_rev: h.head_rev(),
        })
    }

    /// `cvs checkout -r <rev> <file>`.
    pub fn checkout_rev(&mut self, path: &str, rev: RevNo) -> Result<WorkingFile, CvsError> {
        let h = self
            .fetch_history(path)?
            .ok_or_else(|| CvsError::NoSuchFile(path.to_string()))?;
        Ok(WorkingFile {
            path: path.to_string(),
            lines: h.content_at(rev)?,
            base_rev: rev,
        })
    }

    /// `cvs commit`: appends a revision if the base is still the head.
    pub fn commit(
        &mut self,
        wf: &WorkingFile,
        message: &str,
        stamp: u64,
    ) -> Result<RevNo, CvsError> {
        let mut h = self
            .fetch_history(&wf.path)?
            .ok_or_else(|| CvsError::NoSuchFile(wf.path.clone()))?;
        if h.head_rev() != wf.base_rev {
            return Err(CvsError::Conflict {
                path: wf.path.clone(),
                head: h.head_rev(),
                base: wf.base_rev,
            });
        }
        let rev = h.commit(
            wf.lines.clone(),
            RevMeta {
                author: self.user.clone(),
                message: message.to_string(),
                stamp,
            },
        );
        self.store_history(&wf.path, &h)?;
        Ok(rev)
    }

    /// `cvs update`: refreshes a working file to the head, reporting whether
    /// it changed.
    pub fn update(&mut self, wf: &mut WorkingFile) -> Result<bool, CvsError> {
        let fresh = self.checkout(&wf.path)?;
        let changed = fresh.base_rev != wf.base_rev;
        *wf = fresh;
        Ok(changed)
    }

    /// `cvs log <file>`: all revisions with metadata, oldest first.
    pub fn log(&mut self, path: &str) -> Result<Vec<(RevNo, RevMeta)>, CvsError> {
        let h = self
            .fetch_history(path)?
            .ok_or_else(|| CvsError::NoSuchFile(path.to_string()))?;
        Ok(h.log().map(|(r, m)| (r, m.clone())).collect())
    }

    /// `cvs diff -r a -r b <file>`: human-readable line diff.
    pub fn diff(&mut self, path: &str, rev_a: RevNo, rev_b: RevNo) -> Result<String, CvsError> {
        let h = self
            .fetch_history(path)?
            .ok_or_else(|| CvsError::NoSuchFile(path.to_string()))?;
        let a = h.content_at(rev_a)?;
        let b = h.content_at(rev_b)?;
        Ok(tcvs_store::render_unified(&a, &b))
    }

    /// `cvs annotate <file>`: per-line blame — which revision introduced
    /// each head line.
    pub fn annotate(&mut self, path: &str) -> Result<Vec<(RevNo, String)>, CvsError> {
        let h = self
            .fetch_history(path)?
            .ok_or_else(|| CvsError::NoSuchFile(path.to_string()))?;
        let head = h.head_rev();
        // Walk forward from revision 1, tracking each line's origin.
        let mut content = h.content_at(1)?;
        let mut tags: Vec<RevNo> = vec![1; content.len()];
        for rev in 2..=head {
            let next = h.content_at(rev)?;
            let script = tcvs_store::diff(&content, &next);
            let mut new_tags = Vec::with_capacity(next.len());
            for op in &script {
                match op {
                    tcvs_store::DiffOp::Copy { base_start, len } => {
                        new_tags.extend_from_slice(&tags[*base_start..*base_start + *len]);
                    }
                    tcvs_store::DiffOp::Insert(lines) => {
                        new_tags.extend(std::iter::repeat_n(rev, lines.len()));
                    }
                }
            }
            content = next;
            tags = new_tags;
        }
        Ok(tags.into_iter().zip(content).collect())
    }

    /// `cvs ls`: all tracked paths (verified range scan).
    pub fn list(&mut self) -> Result<Vec<String>, CvsError> {
        let lo = b"f:".to_vec();
        let hi = b"f;".to_vec(); // ';' is ':' + 1: everything under the prefix
        match self.db.execute(&Op::Range(Some(lo), Some(hi)))? {
            OpResult::Entries(es) => Ok(es.iter().filter_map(|(k, _)| key_path(k)).collect()),
            other => Err(CvsError::Corrupt(format!("unexpected result {other:?}"))),
        }
    }

    /// Removes a file entirely (history and all) — `cvs remove` + commit in
    /// real CVS moves to the Attic; here the authenticated delete is the
    /// interesting part.
    pub fn remove(&mut self, path: &str) -> Result<(), CvsError> {
        match self.db.execute(&Op::Delete(file_key(path)))? {
            OpResult::Deleted(Some(_)) => Ok(()),
            OpResult::Deleted(None) => Err(CvsError::NoSuchFile(path.to_string())),
            other => Err(CvsError::Corrupt(format!("unexpected result {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_round_trip() {
        let k = file_key("src/main.rs");
        assert_eq!(key_path(&k), Some("src/main.rs".to_string()));
        assert_eq!(key_path(b"x:other"), None);
    }
}
