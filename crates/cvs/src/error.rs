//! Errors surfaced by the CVS front end.

use tcvs_core::Deviation;
use tcvs_store::{DecodeError, HistoryError};

/// Errors from trusted-CVS commands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CvsError {
    /// The underlying protocol client detected server deviation — the
    /// session must stop and the user alert the others.
    Deviation(Deviation),
    /// Path is not in the repository.
    NoSuchFile(String),
    /// The file was committed by someone else since this working copy's
    /// base revision; update first (classic CVS conflict).
    Conflict {
        /// Conflicting path.
        path: String,
        /// Head revision on the server.
        head: u32,
        /// The working copy's base revision.
        base: u32,
    },
    /// A stored history value failed to decode — the authenticated value
    /// itself is malformed (a client bug or a pre-image attack, not a
    /// silent server edit, which the proofs catch).
    Corrupt(String),
    /// Requested revision does not exist.
    NoSuchRevision(u32),
    /// The file already exists (on `add`).
    AlreadyExists(String),
    /// The transport to the server failed benignly (timeout, server gone).
    /// Unlike [`CvsError::Deviation`] this is *not* evidence of misbehavior:
    /// the command may be retried once the server is reachable again.
    Network(String),
}

impl std::fmt::Display for CvsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CvsError::Deviation(d) => write!(f, "server deviation detected: {d}"),
            CvsError::NoSuchFile(p) => write!(f, "no such file: {p}"),
            CvsError::Conflict { path, head, base } => write!(
                f,
                "conflict on {path}: head is r{head}, working copy is r{base}; update first"
            ),
            CvsError::Corrupt(m) => write!(f, "corrupt history value: {m}"),
            CvsError::NoSuchRevision(r) => write!(f, "no such revision r{r}"),
            CvsError::AlreadyExists(p) => write!(f, "file already exists: {p}"),
            CvsError::Network(m) => write!(f, "network failure (retryable): {m}"),
        }
    }
}

impl std::error::Error for CvsError {}

impl From<Deviation> for CvsError {
    fn from(d: Deviation) -> CvsError {
        CvsError::Deviation(d)
    }
}

impl From<DecodeError> for CvsError {
    fn from(e: DecodeError) -> CvsError {
        CvsError::Corrupt(e.to_string())
    }
}

impl From<HistoryError> for CvsError {
    fn from(e: HistoryError) -> CvsError {
        match e {
            HistoryError::NoSuchRevision(r) => CvsError::NoSuchRevision(r),
            other => CvsError::Corrupt(other.to_string()),
        }
    }
}
