//! Tracers and sinks: how events get from emitting components to whoever
//! wants them — and how they cost (almost) nothing when nobody does.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::event::{render_log, Event};

/// Where events go. Implementations must tolerate concurrent `record`
/// calls (the threaded deployment emits from several threads).
pub trait EventSink: Send + Sync {
    /// Accepts one event.
    fn record(&self, ev: Event);
}

/// Default [`MemorySink`] capacity: large enough that every test and
/// interactive session keeps its full timeline, small enough that a
/// long-running simulation cannot grow the sink without bound.
pub const MEMORY_SINK_DEFAULT_CAP: usize = 1 << 20;

/// An in-memory sink: events accumulate in arrival order, up to a fixed
/// capacity. Once full, **new** events are dropped (the head of a timeline
/// is where a diagnosis starts; keep it) and counted in
/// [`MemorySink::dropped`] — callers with a registry should surface that
/// count as a metric so silent truncation is visible. Components that want
/// the opposite policy — keep the newest, overwrite the oldest — use the
/// [`crate::FlightRecorder`] instead.
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
    cap: usize,
    dropped: AtomicU64,
}

impl Default for MemorySink {
    fn default() -> MemorySink {
        MemorySink::with_capacity(MEMORY_SINK_DEFAULT_CAP)
    }
}

impl MemorySink {
    /// A fresh, empty sink with the default capacity.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// A fresh, empty sink holding at most `cap` events (clamped to ≥ 1).
    pub fn with_capacity(cap: usize) -> MemorySink {
        MemorySink {
            events: Mutex::new(Vec::new()),
            cap: cap.max(1),
            dropped: AtomicU64::new(0),
        }
    }

    /// Maximum number of events this sink retains.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of events dropped because the sink was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// A copy of everything recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("sink poisoned").clone()
    }

    /// Removes and returns everything recorded so far.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().expect("sink poisoned"))
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("sink poisoned").len()
    }

    /// True iff nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the recorded events as a diffable text log.
    pub fn render_log(&self) -> String {
        render_log(&self.events.lock().expect("sink poisoned"))
    }
}

impl EventSink for MemorySink {
    fn record(&self, ev: Event) {
        let mut events = self.events.lock().expect("sink poisoned");
        if events.len() < self.cap {
            events.push(ev);
        } else {
            drop(events);
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A cloneable handle components emit through.
///
/// The disabled tracer (the default) is an `Option::None` check per emit:
/// the closure that builds the event — including any `format!` — never
/// runs, so dark instrumentation allocates nothing.
#[derive(Clone, Default)]
pub struct Tracer {
    sink: Option<Arc<dyn EventSink>>,
}

impl Tracer {
    /// The disabled tracer: every emit is a no-op.
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// A tracer writing into `sink`.
    pub fn to_sink(sink: Arc<dyn EventSink>) -> Tracer {
        Tracer { sink: Some(sink) }
    }

    /// A tracer plus the in-memory sink it writes to.
    pub fn memory() -> (Tracer, Arc<MemorySink>) {
        let sink = Arc::new(MemorySink::new());
        (
            Tracer {
                sink: Some(Arc::clone(&sink) as Arc<dyn EventSink>),
            },
            sink,
        )
    }

    /// A tracer plus a bounded in-memory sink holding at most `cap` events
    /// (further events are dropped and counted, not stored).
    pub fn memory_bounded(cap: usize) -> (Tracer, Arc<MemorySink>) {
        let sink = Arc::new(MemorySink::with_capacity(cap));
        (
            Tracer {
                sink: Some(Arc::clone(&sink) as Arc<dyn EventSink>),
            },
            sink,
        )
    }

    /// A tracer plus the [`crate::FlightRecorder`] ring it writes to: the
    /// always-on, overwrite-oldest sink for long-running deployments.
    pub fn flight(cap: usize) -> (Tracer, Arc<crate::FlightRecorder>) {
        let recorder = Arc::new(crate::FlightRecorder::with_capacity(cap));
        (
            Tracer {
                sink: Some(Arc::clone(&recorder) as Arc<dyn EventSink>),
            },
            recorder,
        )
    }

    /// True iff a sink is attached.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits the event built by `f` — which runs only when a sink is
    /// attached.
    #[inline]
    pub fn emit(&self, f: impl FnOnce() -> Event) {
        if let Some(sink) = &self.sink {
            sink.record(f());
        }
    }
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tracer({})",
            if self.is_enabled() {
                "attached"
            } else {
                "disabled"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn disabled_tracer_never_builds_events() {
        let t = Tracer::disabled();
        let mut built = false;
        t.emit(|| {
            built = true;
            Event::new(0, EventKind::OpServed, 0)
        });
        assert!(!built, "closure must not run without a sink");
        assert!(!t.is_enabled());
    }

    #[test]
    fn memory_sink_accumulates_in_order() {
        let (t, sink) = Tracer::memory();
        for i in 0..5 {
            t.emit(|| Event::new(i, EventKind::OpServed, 0));
        }
        assert_eq!(sink.len(), 5);
        let evs = sink.events();
        assert_eq!(evs[4].t, 4);
        assert_eq!(sink.take().len(), 5);
        assert!(sink.is_empty());
    }

    #[test]
    fn full_sink_drops_newest_and_counts() {
        let (t, sink) = Tracer::memory_bounded(3);
        assert_eq!(sink.capacity(), 3);
        for i in 0..10 {
            t.emit(|| Event::new(i, EventKind::OpServed, 0));
        }
        assert_eq!(sink.len(), 3, "capacity is a hard bound");
        assert_eq!(sink.dropped(), 7);
        // The oldest events survive: the head of a timeline is kept.
        assert_eq!(sink.events()[0].t, 0);
        assert_eq!(sink.events()[2].t, 2);
        // Draining makes room again.
        sink.take();
        t.emit(|| Event::new(99, EventKind::OpServed, 0));
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.dropped(), 7, "drop count is cumulative");
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let sink = MemorySink::with_capacity(0);
        assert_eq!(sink.capacity(), 1);
    }

    #[test]
    fn clones_share_the_sink() {
        let (t, sink) = Tracer::memory();
        let t2 = t.clone();
        t.emit(|| Event::new(0, EventKind::Deposit, 1));
        t2.emit(|| Event::new(1, EventKind::Deposit, 2));
        assert_eq!(sink.len(), 2);
    }
}
