//! The metrics registry: counters, gauges, and histograms over plain
//! atomics, snapshotted into a deterministic, name-sorted form.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`-shared: a
//! component obtains its handles once (at construction) and increments
//! lock-free afterwards — the registry's lock is touched only at
//! registration and snapshot time, never on the hot path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: bucket 0 holds zero, bucket `i ≥ 1` holds
/// values in `[2^(i-1), 2^i)`, and the last bucket absorbs everything from
/// `2^(HISTOGRAM_BUCKETS-2)` up (including `u64::MAX`).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The bucket a value lands in: 0 for 0, else `1 + floor(log2(v))`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// Inclusive upper bound of a bucket (`u64::MAX` for the last).
pub fn bucket_upper_bound(idx: usize) -> u64 {
    if idx == 0 {
        0
    } else if idx >= 64 {
        u64::MAX
    } else {
        (1u64 << idx) - 1
    }
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh, unregistered counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A lock-free histogram with power-of-two buckets.
///
/// `observe` is two relaxed atomic adds plus one bucket increment; quantile
/// queries return the inclusive upper bound of the bucket the quantile
/// falls in (an upper estimate, exact for the bucketed resolution).
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64; HISTOGRAM_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one value.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values (wraps on overflow; callers record durations
    /// in nanoseconds, which would take centuries to wrap).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.sum() as f64 / c as f64
        }
    }

    /// Upper bound of the bucket the `q`-quantile falls in (`q` clamped to
    /// `[0, 1]`; 0 when empty).
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        u64::MAX
    }

    /// Per-bucket counts (index = [`bucket_index`]).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// What kind of metric a snapshot entry describes, and its value(s).
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// A counter's value.
    Counter(u64),
    /// A gauge's value.
    Gauge(i64),
    /// A histogram summary.
    Histogram {
        /// Number of observations.
        count: u64,
        /// Sum of observations.
        sum: u64,
        /// Upper estimate of the median.
        p50: u64,
        /// Upper estimate of the 99th percentile.
        p99: u64,
    },
}

impl MetricValue {
    /// Stable lowercase kind label.
    pub fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram { .. } => "histogram",
        }
    }
}

/// One named metric in a snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricEntry {
    /// Registered name (dot-namespaced, e.g. `net.ops_served`).
    pub name: String,
    /// Value at snapshot time.
    pub value: MetricValue,
}

/// A point-in-time, name-sorted capture of a registry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Entries sorted by name.
    pub entries: Vec<MetricEntry>,
}

impl MetricsSnapshot {
    /// Looks up an entry by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| &e.value)
    }

    /// The value of a counter entry, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Renders the snapshot as aligned, diffable text.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let width = self.entries.iter().map(|e| e.name.len()).max().unwrap_or(0);
        for e in &self.entries {
            let line = match &e.value {
                MetricValue::Counter(v) => {
                    format!("{:width$}  counter    {v}\n", e.name, width = width)
                }
                MetricValue::Gauge(v) => {
                    format!("{:width$}  gauge      {v}\n", e.name, width = width)
                }
                MetricValue::Histogram {
                    count,
                    sum,
                    p50,
                    p99,
                } => format!(
                    "{:width$}  histogram  count={count} sum={sum} p50<={p50} p99<={p99}\n",
                    e.name,
                    width = width
                ),
            };
            out.push_str(&line);
        }
        out
    }
}

enum Slot {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A registry of named metrics.
///
/// `counter`/`gauge`/`histogram` are get-or-create: calling twice with the
/// same name returns the same handle, so independently constructed
/// components can share an aggregate.
#[derive(Default)]
pub struct MetricsRegistry {
    slots: Mutex<BTreeMap<String, Slot>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Get-or-create the counter `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut slots = self.slots.lock().expect("metrics registry poisoned");
        match slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Counter(Arc::new(Counter::new())))
        {
            Slot::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Get-or-create the gauge `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut slots = self.slots.lock().expect("metrics registry poisoned");
        match slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Gauge(Arc::new(Gauge::new())))
        {
            Slot::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Get-or-create the histogram `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut slots = self.slots.lock().expect("metrics registry poisoned");
        match slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Histogram(Arc::new(Histogram::new())))
        {
            Slot::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Captures every registered metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let slots = self.slots.lock().expect("metrics registry poisoned");
        let entries = slots
            .iter()
            .map(|(name, slot)| MetricEntry {
                name: name.clone(),
                value: match slot {
                    Slot::Counter(c) => MetricValue::Counter(c.get()),
                    Slot::Gauge(g) => MetricValue::Gauge(g.get()),
                    Slot::Histogram(h) => MetricValue::Histogram {
                        count: h.count(),
                        sum: h.sum(),
                        p50: h.quantile(0.5),
                        p99: h.quantile(0.99),
                    },
                },
            })
            .collect();
        MetricsSnapshot { entries }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.slots.lock().map(|s| s.len()).unwrap_or(0);
        write!(f, "MetricsRegistry({n} metrics)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Every bucket index is in range.
        for shift in 0..64 {
            assert!(bucket_index(1u64 << shift) < HISTOGRAM_BUCKETS);
        }
    }

    #[test]
    fn bucket_bounds_bracket_their_values() {
        for v in [0u64, 1, 2, 3, 7, 8, 1000, 1 << 40, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i), "v={v} bucket={i}");
            if i > 0 {
                assert!(v > bucket_upper_bound(i - 1), "v={v} bucket={i}");
            }
        }
    }

    #[test]
    fn histogram_quantiles_are_upper_bounds() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        // True p50 is 500 → bucket [512, 1023] upper bound 1023 covers it.
        let p50 = h.quantile(0.5);
        assert!((500..=1023).contains(&p50), "p50={p50}");
        let p99 = h.quantile(0.99);
        assert!((990..=1023).contains(&p99), "p99={p99}");
        // q=0 returns the first non-empty bucket's bound; q=1 the last.
        assert!(h.quantile(0.0) >= 1);
        assert!(h.quantile(1.0) >= 1000);
    }

    #[test]
    fn histogram_empty_and_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        h.observe(0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.bucket_counts()[0], 1);
    }

    #[test]
    fn registry_get_or_create_shares_handles() {
        let r = MetricsRegistry::new();
        let a = r.counter("x.ops");
        let b = r.counter("x.ops");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let g = r.gauge("x.depth");
        g.set(5);
        g.add(-2);
        let h = r.histogram("x.lat");
        h.observe(100);

        let snap = r.snapshot();
        assert_eq!(snap.counter("x.ops"), Some(3));
        assert_eq!(snap.get("x.depth"), Some(&MetricValue::Gauge(3)));
        let names: Vec<_> = snap.entries.iter().map(|e| e.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "snapshot is name-sorted");
        let text = snap.render_text();
        assert!(text.contains("x.ops") && text.contains("counter"));
        assert!(text.contains("histogram"));
    }

    #[test]
    fn histogram_overflow_and_underflow_buckets() {
        let h = Histogram::new();
        // Underflow edge: zero lands in its dedicated bucket 0, not in the
        // `[1, 2)` bucket, and never inflates quantiles.
        h.observe(0);
        assert_eq!(h.bucket_counts()[0], 1);
        assert_eq!(h.quantile(1.0), 0);
        // Overflow edge: the last bucket absorbs the top of the u64 range.
        h.observe(u64::MAX);
        h.observe(1u64 << 63);
        assert_eq!(h.bucket_counts()[HISTOGRAM_BUCKETS - 1], 2);
        assert_eq!(h.quantile(1.0), u64::MAX);
        // Sum wraps (documented); count stays exact.
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), u64::MAX.wrapping_add(1u64 << 63));
        // Bucket population is conserved across the full range.
        let total: u64 = h.bucket_counts().iter().sum();
        assert_eq!(total, h.count());
    }

    #[test]
    fn counter_saturates_by_wrapping_not_panicking() {
        let c = Counter::new();
        c.add(u64::MAX - 1);
        c.inc();
        assert_eq!(c.get(), u64::MAX);
        // One past the top wraps to zero (fetch_add semantics) — relied on
        // nowhere, but it must not panic in release or debug builds.
        c.inc();
        assert_eq!(c.get(), 0);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn registry_rejects_kind_clashes() {
        let r = MetricsRegistry::new();
        let _ = r.counter("same");
        let _ = r.gauge("same");
    }
}
