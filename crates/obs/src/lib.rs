//! # tcvs-obs
//!
//! Structured observability for the trusted-cvs stack: event tracing and a
//! metrics registry, with no dependencies beyond `std`.
//!
//! The paper's whole contribution is *how quickly* a deviating server is
//! detected (`k`-bounded detection, two-epoch bounds); this crate is what
//! lets the rest of the repository *observe* that claim instead of merely
//! asserting it: the simulator and the threaded deployment emit
//! [`Event`]s through a [`Tracer`] and account costs in a
//! [`MetricsRegistry`], and `tcvs-sim`/`tcvs-bench` turn the result into
//! detection-latency reports.
//!
//! Two properties are load-bearing:
//!
//! * **Cheap when dark.** A disabled [`Tracer`] is a `None` check; event
//!   payloads are built inside closures that never run without a sink, so
//!   the hot path allocates nothing. Metrics are plain atomics.
//! * **Deterministic under the simulator.** Events carry *logical* time
//!   (rounds, operation indices, counters) — never wall-clock — and span
//!   identifiers are pure functions of `(user, seq)` plus stage salts, so
//!   two seeded simulator runs render byte-identical logs *and* export
//!   byte-identical artifacts that CI can diff.
//!
//! On top of events and metrics sit three newer pieces:
//!
//! * [`SpanContext`] — wire-propagated trace/span identifiers that stitch
//!   one logical operation into a causally-linked tree across client,
//!   fault link, server, reply, and protocol verdict.
//! * [`FlightRecorder`] — a fixed-size, overwrite-oldest ring sink cheap
//!   enough to leave always-on; its retained tail is what gets dumped
//!   when a deviation verdict or crash fires after hours of traffic.
//! * Exporters — [`render_openmetrics`] (Prometheus/OpenMetrics text) and
//!   [`render_chrome_trace`] (Perfetto-loadable JSON).
//!
//! ```
//! use tcvs_obs::{Event, EventKind, Tracer};
//!
//! let (tracer, sink) = Tracer::memory();
//! tracer.emit(|| Event::new(3, EventKind::OpServed, 0).detail("ctr=3 op=put"));
//! assert_eq!(sink.len(), 1);
//! assert!(sink.render_log().contains("op-served"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod event;
mod export;
mod metrics;
mod recorder;
mod span;
mod trace;

pub use event::{render_log, Event, EventKind, NO_ACTOR};
pub use export::{
    render_chrome_trace, render_chrome_trace_with_loss, render_openmetrics, TraceLoss,
};
pub use metrics::{
    bucket_index, bucket_upper_bound, Counter, Gauge, Histogram, MetricEntry, MetricValue,
    MetricsRegistry, MetricsSnapshot, HISTOGRAM_BUCKETS,
};
pub use recorder::{FlightRecorder, FLIGHT_RECORDER_DEFAULT_CAP};
pub use span::{stage, SpanContext, SpanId, TraceId};
pub use trace::{EventSink, MemorySink, Tracer, MEMORY_SINK_DEFAULT_CAP};
