//! The flight recorder: a fixed-size ring-buffer sink that is cheap enough
//! to leave on for the lifetime of a deployment.
//!
//! Where [`crate::MemorySink`] keeps the *oldest* events and drops new ones
//! once full (the right policy for a bounded diagnostic capture with a
//! known start), the recorder keeps the *newest*: it overwrites the oldest
//! slot, so at any moment it holds the last `capacity` events — exactly
//! what you want dumped when a deviation verdict, crash-restart, or failed
//! sync-up fires after hours of healthy traffic.
//!
//! Writer coordination is lock-free: each `record` reserves a slot with one
//! `fetch_add` on the write cursor, then stores the event under that slot's
//! own mutex (slots are never contended except when the ring wraps onto an
//! in-flight writer, `capacity` writes later). The crate forbids `unsafe`,
//! so per-slot mutexes stand in for the atomics-over-`MaybeUninit` idiom a
//! `no_std` ring would use — the reservation, which is what serializes
//! writers, stays a single atomic instruction either way.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::event::{render_log, Event};
use crate::trace::EventSink;

/// Default ring capacity: 4096 events ≈ a few hundred KB — bounded memory
/// however long the run.
pub const FLIGHT_RECORDER_DEFAULT_CAP: usize = 4096;

/// A fixed-size, overwrite-oldest event ring (see module docs).
pub struct FlightRecorder {
    slots: Box<[Mutex<Option<Event>>]>,
    /// Total events ever recorded; `cursor % capacity` is the next slot.
    cursor: AtomicU64,
    /// Events overwritten because the ring wrapped.
    overwritten: AtomicU64,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::with_capacity(FLIGHT_RECORDER_DEFAULT_CAP)
    }
}

impl FlightRecorder {
    /// A recorder with the default capacity.
    pub fn new() -> FlightRecorder {
        FlightRecorder::default()
    }

    /// A recorder holding the last `cap` events (clamped to ≥ 1).
    pub fn with_capacity(cap: usize) -> FlightRecorder {
        let cap = cap.max(1);
        FlightRecorder {
            slots: (0..cap).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
            overwritten: AtomicU64::new(0),
        }
    }

    /// Number of slots in the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Events lost to overwriting (total recorded minus capacity, once the
    /// ring has wrapped).
    pub fn overwritten(&self) -> u64 {
        self.overwritten.load(Ordering::Relaxed)
    }

    /// The retained timeline, oldest first.
    ///
    /// The snapshot is consistent per slot (each slot is read under its
    /// lock); a writer racing the snapshot contributes either its old or
    /// its new event, never a torn one. Under the deterministic simulator
    /// — a single emitting thread — the snapshot is exact.
    pub fn snapshot(&self) -> Vec<Event> {
        let cap = self.slots.len() as u64;
        let cursor = self.cursor.load(Ordering::Acquire);
        let (start, len) = if cursor <= cap {
            (0, cursor)
        } else {
            (cursor % cap, cap)
        };
        let mut out = Vec::with_capacity(len as usize);
        for i in 0..len {
            let idx = ((start + i) % cap) as usize;
            if let Some(ev) = self.slots[idx].lock().expect("slot poisoned").clone() {
                out.push(ev);
            }
        }
        out
    }

    /// Renders the retained timeline as a diffable text log.
    pub fn render_log(&self) -> String {
        render_log(&self.snapshot())
    }
}

impl EventSink for FlightRecorder {
    fn record(&self, ev: Event) {
        let ticket = self.cursor.fetch_add(1, Ordering::AcqRel);
        let idx = (ticket % self.slots.len() as u64) as usize;
        let evicted = self.slots[idx]
            .lock()
            .expect("slot poisoned")
            .replace(ev)
            .is_some();
        if evicted {
            self.overwritten.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FlightRecorder(cap={}, recorded={}, overwritten={})",
            self.capacity(),
            self.recorded(),
            self.overwritten()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::trace::Tracer;
    use std::sync::Arc;

    fn ev(t: u64) -> Event {
        Event::new(t, EventKind::OpServed, 0)
    }

    #[test]
    fn partial_ring_snapshots_in_order() {
        let r = FlightRecorder::with_capacity(8);
        for t in 0..5 {
            r.record(ev(t));
        }
        let snap: Vec<u64> = r.snapshot().iter().map(|e| e.t).collect();
        assert_eq!(snap, vec![0, 1, 2, 3, 4]);
        assert_eq!(r.overwritten(), 0);
        assert_eq!(r.recorded(), 5);
    }

    #[test]
    fn wrapped_ring_keeps_the_newest_events() {
        let r = FlightRecorder::with_capacity(4);
        for t in 0..10 {
            r.record(ev(t));
        }
        let snap: Vec<u64> = r.snapshot().iter().map(|e| e.t).collect();
        assert_eq!(snap, vec![6, 7, 8, 9], "last `capacity` events, in order");
        assert_eq!(r.overwritten(), 6);
        assert_eq!(r.recorded(), 10);
    }

    #[test]
    fn works_as_a_tracer_sink() {
        let r = Arc::new(FlightRecorder::with_capacity(2));
        let t = Tracer::to_sink(Arc::clone(&r) as Arc<dyn crate::EventSink>);
        for i in 0..3 {
            t.emit(|| ev(i));
        }
        assert_eq!(r.snapshot().len(), 2);
        assert!(r.render_log().contains("op-served"));
    }

    #[test]
    fn concurrent_writers_lose_nothing_within_capacity() {
        let r = Arc::new(FlightRecorder::with_capacity(1024));
        let threads: Vec<_> = (0..4)
            .map(|tid| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..256u64 {
                        r.record(ev(tid * 1000 + i));
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(r.recorded(), 1024);
        assert_eq!(r.overwritten(), 0);
        assert_eq!(r.snapshot().len(), 1024);
    }
}
