//! Exporters: OpenMetrics text exposition for [`MetricsSnapshot`]s and
//! Chrome-trace / Perfetto JSON for event timelines.
//!
//! Both renderers are deterministic functions of their input: metric
//! snapshots are name-sorted by construction, and events carry logical
//! timestamps — so two seeded runs export byte-identical artifacts (CI
//! asserts this for E12). Everything is hand-rolled `std` string building;
//! this crate stays dependency-free.

use std::fmt::Write as _;

use crate::event::{Event, EventKind, NO_ACTOR};
use crate::metrics::{MetricValue, MetricsSnapshot};

/// Sanitizes a dot-namespaced metric name into the OpenMetrics grammar
/// (`[a-zA-Z_][a-zA-Z0-9_]*`): every other character becomes `_`.
fn openmetrics_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Splits a per-shard routed counter name (`net.shard.{i}.routed`) into its
/// shard index. These flat names stay the in-process registry keys; only
/// the exposition folds them into one labeled series.
fn shard_routed_index(name: &str) -> Option<&str> {
    let idx = name.strip_prefix("net.shard.")?.strip_suffix(".routed")?;
    (!idx.is_empty() && idx.bytes().all(|b| b.is_ascii_digit())).then_some(idx)
}

/// Renders a snapshot in OpenMetrics / Prometheus text exposition format.
///
/// Counters expose a `_total` sample, gauges a bare sample, histograms a
/// summary (`_count`, `_sum`, and the p50/p99 quantile upper bounds the
/// snapshot carries). The per-shard `net.shard.{i}.routed` counters are
/// folded into one `net_shard_routed` series labeled `{shard="i"}` —
/// queryable across any shard count instead of N metric names. The output
/// ends with the mandatory `# EOF` line.
pub fn render_openmetrics(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut routed_header = false;
    for e in &snapshot.entries {
        if let (Some(shard), MetricValue::Counter(v)) = (shard_routed_index(&e.name), &e.value) {
            if !routed_header {
                let _ = writeln!(out, "# TYPE net_shard_routed counter");
                routed_header = true;
            }
            let _ = writeln!(out, "net_shard_routed_total{{shard=\"{shard}\"}} {v}");
            continue;
        }
        let name = openmetrics_name(&e.name);
        match &e.value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "# TYPE {name} counter");
                let _ = writeln!(out, "{name}_total {v}");
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(out, "{name} {v}");
            }
            MetricValue::Histogram {
                count,
                sum,
                p50,
                p99,
            } => {
                let _ = writeln!(out, "# TYPE {name} summary");
                let _ = writeln!(out, "{name}_count {count}");
                let _ = writeln!(out, "{name}_sum {sum}");
                let _ = writeln!(out, "{name}{{quantile=\"0.5\"}} {p50}");
                let _ = writeln!(out, "{name}{{quantile=\"0.99\"}} {p99}");
            }
        }
    }
    out.push_str("# EOF\n");
    out
}

/// JSON string escaping (the subset the exporters need).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders one event as a Chrome-trace "complete" event object.
///
/// `ts` is the event's *logical* timestamp (Perfetto renders it as
/// microseconds; the unit is rounds / op indices here — relative order and
/// spacing are what matter). Each process row is a user (`pid` = user + 1,
/// the server and harness render as pid 0's row via [`NO_ACTOR`]), and the
/// span identifiers ride in `args` so a fork's cross-client causality can
/// be read straight off the trace.
fn chrome_event(ev: &Event) -> String {
    let pid = if ev.user == NO_ACTOR {
        0
    } else {
        u64::from(ev.user) + 1
    };
    let mut args = format!("\"detail\": \"{}\"", esc(&ev.detail));
    if let Some(ctx) = &ev.span {
        let _ = write!(
            args,
            ", \"trace\": \"{:016x}\", \"span\": \"{:016x}\"",
            ctx.trace.0, ctx.span.0
        );
        if let Some(p) = ctx.parent {
            let _ = write!(args, ", \"parent\": \"{:016x}\"", p.0);
        }
    }
    format!(
        "    {{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"ts\": {}, \"dur\": 1, \"pid\": {}, \"tid\": {}, \"args\": {{{}}}}}",
        ev.kind.label(),
        category(ev.kind),
        ev.t,
        pid,
        pid,
        args,
    )
}

/// Coarse event grouping shown as Perfetto categories.
fn category(kind: EventKind) -> &'static str {
    match kind {
        EventKind::OpServed | EventKind::ReadServed | EventKind::ProofBuilt => "serve",
        EventKind::Retry | EventKind::JournalHit | EventKind::FaultInjected => "transport",
        EventKind::Deposit | EventKind::MissedDeposit | EventKind::Checkpoint => "deposit",
        EventKind::Crash | EventKind::Restart | EventKind::Recovery => "crash",
        EventKind::SyncTriggered | EventKind::SyncUp | EventKind::Audit => "sync",
        EventKind::DeviationInjected | EventKind::Detection => "verdict",
    }
}

/// How much of a timeline the bounded collectors lost before export: ring
/// overwrites ([`crate::FlightRecorder::overwritten`]) and full-sink drops
/// ([`crate::MemorySink::dropped`]). A rendered trace that silently starts
/// mid-history reads as a complete record; this rides in the document
/// metadata so it cannot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceLoss {
    /// Events overwritten by a flight recorder's ring wrapping.
    pub overwritten: u64,
    /// Events dropped by a bounded sink that filled up.
    pub dropped: u64,
}

/// Renders an event timeline as a Chrome-trace / Perfetto JSON document
/// (the "JSON object format": a `traceEvents` array plus metadata). Open
/// the file in <https://ui.perfetto.dev> or `chrome://tracing`.
pub fn render_chrome_trace(events: &[Event]) -> String {
    render_chrome_trace_with_loss(events, TraceLoss::default())
}

/// [`render_chrome_trace`] with loss accounting: the document's
/// `otherData` block reports how many events the timeline retains and how
/// many the bounded collectors lost (ring overwrites, sink drops), so a
/// truncated trace declares itself.
pub fn render_chrome_trace_with_loss(events: &[Event], loss: TraceLoss) -> String {
    let mut out = String::with_capacity(events.len() * 160 + 256);
    out.push_str("{\n  \"displayTimeUnit\": \"ms\",\n");
    let _ = writeln!(
        out,
        "  \"otherData\": {{\"events_retained\": \"{}\", \"events_overwritten\": \"{}\", \"events_dropped\": \"{}\"}},",
        events.len(),
        loss.overwritten,
        loss.dropped,
    );
    out.push_str("  \"traceEvents\": [\n");
    let rows: Vec<String> = events.iter().map(chrome_event).collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use crate::span::{stage, SpanContext};

    #[test]
    fn openmetrics_names_are_sanitized_and_document_terminated() {
        let r = MetricsRegistry::new();
        r.counter("net.server.ops_served").add(3);
        r.gauge("obs.sink.dropped-events").set(2);
        r.histogram("net.server.op_micros").observe(100);
        let text = render_openmetrics(&r.snapshot());
        assert!(
            text.contains("# TYPE net_server_ops_served counter"),
            "{text}"
        );
        assert!(text.contains("net_server_ops_served_total 3"), "{text}");
        assert!(text.contains("obs_sink_dropped_events 2"), "{text}");
        assert!(text.contains("net_server_op_micros_count 1"), "{text}");
        assert!(text.contains("{quantile=\"0.99\"}"), "{text}");
        assert!(text.ends_with("# EOF\n"), "{text}");
    }

    #[test]
    fn openmetrics_rejects_leading_digits() {
        assert_eq!(openmetrics_name("9lives"), "_lives");
        assert_eq!(openmetrics_name("a.b-c"), "a_b_c");
        assert_eq!(openmetrics_name(""), "_");
    }

    #[test]
    fn chrome_trace_is_deterministic_and_carries_spans() {
        let root = SpanContext::root(1, 1);
        let events = vec![
            Event::new(0, EventKind::OpServed, 1)
                .detail("ctr=0")
                .span(root.child(stage::SERVER)),
            Event::new(1, EventKind::Detection, 1).detail("say \"no\""),
        ];
        let a = render_chrome_trace(&events);
        let b = render_chrome_trace(&events);
        assert_eq!(a, b, "pure function of its input");
        assert!(a.contains("\"traceEvents\""));
        assert!(a.contains("\"name\": \"op-served\""));
        assert!(a.contains("\"trace\": "), "{a}");
        assert!(a.contains("\"parent\": "), "{a}");
        assert!(a.contains("say \\\"no\\\""), "strings escaped: {a}");
        // Balanced braces/brackets outside strings.
        let (mut obj, mut arr, mut in_str, mut escd) = (0i64, 0i64, false, false);
        for c in a.chars() {
            if in_str {
                if escd {
                    escd = false;
                } else if c == '\\' {
                    escd = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' => obj += 1,
                '}' => obj -= 1,
                '[' => arr += 1,
                ']' => arr -= 1,
                _ => {}
            }
        }
        assert_eq!((obj, arr, in_str), (0, 0, false));
    }

    #[test]
    fn empty_timeline_still_renders_a_valid_document() {
        let doc = render_chrome_trace(&[]);
        assert!(doc.contains("\"traceEvents\""));
    }

    #[test]
    fn shard_routed_counters_fold_into_one_labeled_series() {
        let r = MetricsRegistry::new();
        r.counter("net.shard.0.routed").add(7);
        r.counter("net.shard.1.routed").add(3);
        r.counter("net.shard.11.routed").add(1);
        r.gauge("net.shard.count").set(3);
        r.counter("net.shard.grove_epochs").add(2);
        let text = render_openmetrics(&r.snapshot());
        assert!(text.contains("# TYPE net_shard_routed counter"), "{text}");
        assert!(
            text.contains("net_shard_routed_total{shard=\"0\"} 7"),
            "{text}"
        );
        assert!(
            text.contains("net_shard_routed_total{shard=\"1\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("net_shard_routed_total{shard=\"11\"} 1"),
            "{text}"
        );
        assert_eq!(
            text.matches("# TYPE net_shard_routed counter").count(),
            1,
            "one family header for the whole series: {text}"
        );
        // Unlabeled shard metrics keep their flat exposition names.
        assert!(text.contains("net_shard_count 3"), "{text}");
        assert!(text.contains("net_shard_grove_epochs_total 2"), "{text}");
        // Non-index middles never fold.
        assert_eq!(shard_routed_index("net.shard.x.routed"), None);
        assert_eq!(shard_routed_index("net.shard..routed"), None);
        assert_eq!(shard_routed_index("net.shard.3.routed"), Some("3"));
    }

    #[test]
    fn chrome_trace_metadata_declares_collector_loss() {
        let events = vec![Event::new(0, EventKind::OpServed, 1)];
        let doc = render_chrome_trace_with_loss(
            &events,
            TraceLoss {
                overwritten: 12,
                dropped: 5,
            },
        );
        assert!(doc.contains("\"events_retained\": \"1\""), "{doc}");
        assert!(doc.contains("\"events_overwritten\": \"12\""), "{doc}");
        assert!(doc.contains("\"events_dropped\": \"5\""), "{doc}");
        // The lossless wrapper declares zero loss rather than staying
        // silent.
        let plain = render_chrome_trace(&events);
        assert!(plain.contains("\"events_overwritten\": \"0\""), "{plain}");
    }
}
