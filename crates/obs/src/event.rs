//! Structured events: the span-like records every instrumented component
//! emits. An [`Event`] is deliberately flat — logical timestamp, kind,
//! actor, free-form detail — so logs render as stable, diffable text.

use std::fmt;

use crate::span::SpanContext;

/// Actor value meaning "no specific user" (the server itself, or the
/// harness).
pub const NO_ACTOR: u32 = u32::MAX;

/// The event taxonomy. One variant per observable moment in the stack;
/// components attach specifics (counter values, deviation evidence) in
/// [`Event::detail`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum EventKind {
    /// An operation was executed by the server (serialized write path).
    OpServed,
    /// A read was served from a published snapshot (concurrent read path).
    ReadServed,
    /// A verification object was constructed for a response.
    ProofBuilt,
    /// A client retried a request after a timeout or lost reply.
    Retry,
    /// A retried request was answered from the server's reply journal
    /// instead of re-executing.
    JournalHit,
    /// A signature / epoch-state deposit was produced or stored.
    Deposit,
    /// The blocking server gave up waiting for a signature deposit.
    MissedDeposit,
    /// A Protocol III checkpoint was deposited.
    Checkpoint,
    /// The server crashed (scheduled fault or adversarial).
    Crash,
    /// The server restarted from persisted state.
    Restart,
    /// Durable storage finished crash recovery; detail records the
    /// checkpoint used, records replayed, and any torn tail discarded.
    Recovery,
    /// A broadcast sync-up was triggered (some user reached `k` ops).
    SyncTriggered,
    /// A broadcast sync-up completed; detail records the outcome.
    SyncUp,
    /// A Protocol III epoch audit ran; detail records the epoch + outcome.
    Audit,
    /// A benign fault was injected by the harness or fault link.
    FaultInjected,
    /// Ground truth: the harness knows the server first deviated here.
    DeviationInjected,
    /// A client concluded the server deviated (the protocol verdict).
    Detection,
}

impl EventKind {
    /// Stable lowercase label used in rendered logs.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::OpServed => "op-served",
            EventKind::ReadServed => "read-served",
            EventKind::ProofBuilt => "proof-built",
            EventKind::Retry => "retry",
            EventKind::JournalHit => "journal-hit",
            EventKind::Deposit => "deposit",
            EventKind::MissedDeposit => "missed-deposit",
            EventKind::Checkpoint => "checkpoint",
            EventKind::Crash => "crash",
            EventKind::Restart => "restart",
            EventKind::Recovery => "recovery",
            EventKind::SyncTriggered => "sync-triggered",
            EventKind::SyncUp => "sync-up",
            EventKind::Audit => "audit",
            EventKind::FaultInjected => "fault-injected",
            EventKind::DeviationInjected => "deviation-injected",
            EventKind::Detection => "detection",
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One structured event.
///
/// `t` is a *logical* timestamp — a round, an operation index, or a counter
/// value, whichever the emitting component documents — never wall-clock, so
/// seeded runs produce identical logs. Wall-clock durations belong in
/// [`crate::Histogram`]s, not events.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Logical timestamp (source-defined: round / op index / ctr).
    pub t: u64,
    /// What happened.
    pub kind: EventKind,
    /// Acting user, or [`NO_ACTOR`].
    pub user: u32,
    /// Free-form detail: counter values, outcomes, evidence.
    pub detail: String,
    /// The wire-propagated span this event belongs to, when the emitting
    /// component took part in a traced operation. `None` renders exactly
    /// as before spans existed, so span-less logs stay byte-stable.
    pub span: Option<SpanContext>,
}

impl Event {
    /// A detail-less event.
    pub fn new(t: u64, kind: EventKind, user: u32) -> Event {
        Event {
            t,
            kind,
            user,
            detail: String::new(),
            span: None,
        }
    }

    /// Attaches detail text (builder style).
    pub fn detail(mut self, detail: impl Into<String>) -> Event {
        self.detail = detail.into();
        self
    }

    /// Attaches a span context (builder style).
    pub fn span(mut self, ctx: SpanContext) -> Event {
        self.span = Some(ctx);
        self
    }

    /// Attaches a span context when one is present (builder style; the
    /// common shape at call sites that thread an `Option` through).
    pub fn span_opt(mut self, ctx: Option<SpanContext>) -> Event {
        self.span = ctx;
        self
    }

    /// Renders the event as one stable log line.
    pub fn render_line(&self) -> String {
        let user = if self.user == NO_ACTOR {
            "-".to_string()
        } else {
            format!("u{}", self.user)
        };
        let mut line = if self.detail.is_empty() {
            format!("{:>8}  {:<18} {:<6}", self.t, self.kind.label(), user)
        } else {
            format!(
                "{:>8}  {:<18} {:<6} {}",
                self.t,
                self.kind.label(),
                user,
                self.detail
            )
        };
        if let Some(ctx) = &self.span {
            line.push_str("  ");
            line.push_str(&ctx.render());
        }
        line
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_line())
    }
}

/// Renders a sequence of events as a diffable multi-line log (one
/// [`Event::render_line`] per event, `\n`-terminated).
pub fn render_log(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 48);
    for ev in events {
        out.push_str(&ev.render_line());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique() {
        let all = [
            EventKind::OpServed,
            EventKind::ReadServed,
            EventKind::ProofBuilt,
            EventKind::Retry,
            EventKind::JournalHit,
            EventKind::Deposit,
            EventKind::MissedDeposit,
            EventKind::Checkpoint,
            EventKind::Crash,
            EventKind::Restart,
            EventKind::Recovery,
            EventKind::SyncTriggered,
            EventKind::SyncUp,
            EventKind::Audit,
            EventKind::FaultInjected,
            EventKind::DeviationInjected,
            EventKind::Detection,
        ];
        let mut labels: Vec<_> = all.iter().map(|k| k.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), all.len());
    }

    #[test]
    fn render_is_stable_and_aligned() {
        let ev = Event::new(42, EventKind::SyncUp, 1).detail("ok lctr=8");
        assert_eq!(
            ev.render_line(),
            "      42  sync-up            u1     ok lctr=8"
        );
        let anon = Event::new(0, EventKind::Crash, NO_ACTOR);
        assert!(anon.render_line().contains(" - "));
    }

    #[test]
    fn span_suffix_only_renders_when_present() {
        use crate::span::{stage, SpanContext};
        let bare = Event::new(42, EventKind::SyncUp, 1).detail("ok lctr=8");
        let spanned = bare
            .clone()
            .span(SpanContext::root(1, 3).child(stage::SYNC));
        assert!(!bare.render_line().contains("trace="));
        let line = spanned.render_line();
        assert!(line.starts_with(&bare.render_line()), "{line}");
        assert!(
            line.contains("trace=") && line.contains("parent="),
            "{line}"
        );
        // `span_opt(None)` is the identity.
        assert_eq!(bare.clone().span_opt(None), bare);
    }

    #[test]
    fn log_renders_one_line_per_event() {
        let evs = vec![
            Event::new(0, EventKind::OpServed, 0),
            Event::new(1, EventKind::Detection, 2).detail("sync failed"),
        ];
        let log = render_log(&evs);
        assert_eq!(log.lines().count(), 2);
        assert!(log.ends_with('\n'));
    }
}
