//! Trace-context propagation: the identifiers that stitch one logical
//! operation into a single causally-linked span tree as it crosses the
//! wire — client request, fault link, server handling, reply, protocol
//! deposit, sync-up verdict.
//!
//! Identifiers are **derived, not drawn**: a root context is a pure
//! function of `(user, seq)` and every child span is a pure function of
//! its parent plus a stage salt. No randomness, no wall clock — two seeded
//! runs of the same workload produce identical span trees, so exported
//! traces stay byte-for-byte diffable (the same property event timestamps
//! already have).

use std::fmt;

/// Stage salts: the well-known values components mix into
/// [`SpanContext::child`] so each hop of an operation gets a distinct,
/// stable span id.
pub mod stage {
    /// The server's serialized execution of the operation.
    pub const SERVER: u64 = 1;
    /// A read served from a published snapshot.
    pub const READ: u64 = 2;
    /// A signature / epoch-state deposit produced by the client.
    pub const DEPOSIT: u64 = 3;
    /// The client-side verification verdict (accept or deviation).
    pub const VERDICT: u64 = 4;
    /// A broadcast sync-up evaluation.
    pub const SYNC: u64 = 5;
    /// A fault injected on this operation's delivery.
    pub const FAULT: u64 = 6;
    /// A transport retry of the same operation.
    pub const RETRY: u64 = 7;
    /// A journaled reply served instead of re-execution.
    pub const JOURNAL: u64 = 8;
}

/// `splitmix64` — the classic finalizer; good avalanche, zero state, and
/// exactly reproducible everywhere.
#[inline]
const fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Identifies one logical operation end to end (client → server → reply →
/// deposit). Derived from `(user, seq)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

/// Identifies one hop (span) within a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

/// The context carried inside wire messages: which trace this message
/// belongs to, which span it is, and which span caused it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SpanContext {
    /// The logical operation this span belongs to.
    pub trace: TraceId,
    /// This hop's span id.
    pub span: SpanId,
    /// The causing span, if any (`None` for the root).
    pub parent: Option<SpanId>,
}

impl SpanContext {
    /// The root context for operation `seq` of `user` — the span the client
    /// opens before the request goes on the wire. Pure function of its
    /// arguments.
    pub fn root(user: u32, seq: u64) -> SpanContext {
        let trace = splitmix64(splitmix64(user as u64 + 1) ^ seq);
        SpanContext {
            trace: TraceId(trace),
            span: SpanId(splitmix64(trace)),
            parent: None,
        }
    }

    /// A child span of this one, salted by the processing stage (see
    /// [`stage`]). Same trace, new span, parent = this span.
    pub fn child(&self, salt: u64) -> SpanContext {
        SpanContext {
            trace: self.trace,
            span: SpanId(splitmix64(self.span.0 ^ splitmix64(salt))),
            parent: Some(self.span),
        }
    }

    /// Renders the context as the stable suffix appended to log lines.
    pub fn render(&self) -> String {
        match self.parent {
            Some(p) => format!(
                "trace={:016x} span={:016x} parent={:016x}",
                self.trace.0, self.span.0, p.0
            ),
            None => format!("trace={:016x} span={:016x}", self.trace.0, self.span.0),
        }
    }
}

impl fmt::Display for SpanContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roots_are_deterministic_and_distinct() {
        let a = SpanContext::root(1, 7);
        let b = SpanContext::root(1, 7);
        assert_eq!(a, b, "same (user, seq) derives the same context");
        assert!(a.parent.is_none());
        for (u, s) in [(1u32, 8u64), (2, 7), (0, 0), (0, 1)] {
            let other = SpanContext::root(u, s);
            assert_ne!(a.trace, other.trace, "({u},{s}) collides with (1,7)");
        }
    }

    #[test]
    fn children_stay_in_trace_and_link_to_parent() {
        let root = SpanContext::root(3, 42);
        let server = root.child(stage::SERVER);
        let verdict = root.child(stage::VERDICT);
        assert_eq!(server.trace, root.trace);
        assert_eq!(server.parent, Some(root.span));
        assert_ne!(server.span, root.span);
        assert_ne!(server.span, verdict.span, "stage salts separate spans");
        let grandchild = server.child(stage::DEPOSIT);
        assert_eq!(grandchild.parent, Some(server.span));
        assert_eq!(grandchild.trace, root.trace);
    }

    #[test]
    fn render_is_stable() {
        let root = SpanContext::root(0, 1);
        let r = root.render();
        assert!(r.starts_with("trace="), "{r}");
        assert!(!r.contains("parent="), "roots have no parent: {r}");
        let c = root.child(stage::SERVER).render();
        assert!(c.contains("parent="), "{c}");
        assert_eq!(root.render(), SpanContext::root(0, 1).render());
    }
}
