//! Definition 2.1 ground truth over the pipelined Protocol I path: the
//! deviation oracle replays a generated trace against a server whose
//! deposits arrive *late*, with every response verified by the issuing
//! user's own `Client1` state machine. An honest server must produce zero
//! false alarms and `NoObservableDeviation` even while it serves ahead of
//! the deposit stream (and across crash-restarts); a lying server must be
//! flagged at exactly the same index as on the blocking path.

use std::collections::VecDeque;

use tcvs_core::adversary::{LieServer, Trigger};
use tcvs_core::{Client1, HonestServer, ProtocolConfig, ServerApi, SignedState, UserId};
use tcvs_crypto::setup_users;
use tcvs_merkle::{apply_op, MerkleTree};
use tcvs_sim::OracleVerdict;
use tcvs_workload::{generate, OpMix, Trace, WorkloadSpec};

fn config() -> ProtocolConfig {
    ProtocolConfig {
        order: 8,
        k: 8,
        epoch_len: 16,
    }
}

/// What one pipelined oracle replay observed.
struct PipelinedReport {
    verdict: OracleVerdict,
    /// Operations served ahead of the deposit stream (the fast path).
    pipelined: u64,
    /// Operations that fell back to the blocking shape (decline/catch-up).
    fallbacks: u64,
}

/// Replays `trace` through `handle_op_pipelined` with signature deposits
/// delivered `lag` operations late — the sim-level analog of the
/// transport's pipelining. Mirrors the transport discipline exactly:
/// a declined operation first drains the deposit queue (catch-up) so the
/// blocking-path signature is current, and `crash_every` > 0 injects a
/// crash-restart every that many operations (deposits drained first, as
/// the transport's crash path completes in-flight deposits).
///
/// Every verified response feeds the issuing user's `Client1`; a client
/// deviation on an oracle-clean response is a false alarm and panics.
fn replay_pipelined(
    server: &mut dyn ServerApi,
    cfg: &ProtocolConfig,
    trace: &Trace,
    depth: usize,
    lag: usize,
    crash_every: u64,
    seed: [u8; 32],
) -> PipelinedReport {
    let n_users = trace.ops().iter().map(|s| s.user + 1).max().unwrap_or(1);
    let height = 64 - (trace.ops().len() as u64 + 2).leading_zeros();
    let (rings, registry) = setup_users(seed, n_users, height.max(4));
    let mut clients: Vec<Client1> = rings
        .into_iter()
        .map(|r| Client1::new(r, registry.clone(), *cfg))
        .collect();

    let root0 = MerkleTree::with_order(cfg.order).root_digest();
    let initial = clients[0].sign_initial(&root0).expect("fresh keyring");
    server.deposit_signature(0, initial);

    let mut reference = MerkleTree::with_order(cfg.order);
    let mut pending: VecDeque<(UserId, SignedState)> = VecDeque::new();
    let deliver =
        |server: &mut dyn ServerApi, pending: &mut VecDeque<(UserId, SignedState)>, keep: usize| {
            while pending.len() > keep {
                let (u, s) = pending.pop_front().expect("non-empty");
                server.deposit_signature(u, s);
            }
        };

    let (mut pipelined, mut fallbacks) = (0u64, 0u64);
    for (idx, sop) in trace.ops().iter().enumerate() {
        if crash_every > 0 && idx > 0 && idx as u64 % crash_every == 0 {
            deliver(server, &mut pending, 0);
            server.crash_restart();
        }
        let expected = apply_op(&mut reference, &sop.op).expect("full tree");
        let client = &mut clients[sop.user as usize];
        let deposit =
            match server.handle_op_pipelined(sop.user, idx as u64, &sop.op, sop.round, depth) {
                Some(presp) => {
                    if presp.resp.result != expected {
                        return PipelinedReport {
                            verdict: OracleVerdict::Deviated {
                                op_index: idx as u64,
                                user: sop.user,
                                got: presp.resp.result,
                                expected,
                            },
                            pipelined,
                            fallbacks,
                        };
                    }
                    pipelined += 1;
                    let (_, deposit) = client
                        .handle_pipelined_response(&sop.op, &presp)
                        .unwrap_or_else(|e| panic!("false alarm on pipelined op {idx}: {e}"));
                    deposit
                }
                None => {
                    // The transport's catch-up: the blocking-path signature
                    // must be exactly current before the server answers.
                    deliver(server, &mut pending, 0);
                    let resp = server.handle_op(sop.user, &sop.op, sop.round);
                    if resp.result != expected {
                        return PipelinedReport {
                            verdict: OracleVerdict::Deviated {
                                op_index: idx as u64,
                                user: sop.user,
                                got: resp.result,
                                expected,
                            },
                            pipelined,
                            fallbacks,
                        };
                    }
                    fallbacks += 1;
                    let (_, deposit) = client
                        .handle_response(&sop.op, &resp)
                        .unwrap_or_else(|e| panic!("false alarm on blocking op {idx}: {e}"));
                    deposit
                }
            };
        pending.push_back((sop.user, deposit));
        deliver(server, &mut pending, lag);
    }
    deliver(server, &mut pending, 0);
    PipelinedReport {
        verdict: OracleVerdict::NoObservableDeviation,
        pipelined,
        fallbacks,
    }
}

/// Honest server, deposits two operations late: the oracle sees no
/// observable deviation, no client raises an alarm, and the fast path is
/// genuinely exercised (served-ahead count dominates the fallbacks).
#[test]
fn pipelined_honest_replay_is_oracle_clean() {
    let cfg = config();
    for seed in 0..4u64 {
        let t = generate(&WorkloadSpec {
            n_users: 3,
            n_ops: 120,
            key_space: 24,
            mix: OpMix::write_heavy(),
            seed,
            ..WorkloadSpec::default()
        });
        let mut server = HonestServer::new(&cfg);
        let report = replay_pipelined(&mut server, &cfg, &t, 8, 2, 0, [0x21; 32]);
        assert_eq!(
            report.verdict,
            OracleVerdict::NoObservableDeviation,
            "seed {seed}"
        );
        assert!(
            report.pipelined > report.fallbacks,
            "fast path dominated (seed {seed}: {} pipelined vs {} fallbacks)",
            report.pipelined,
            report.fallbacks
        );
    }
}

/// The same replay with a crash-restart every 16 operations: the server's
/// pipelining state is volatile and re-arms from the deposit stream, the
/// clients keep verifying across the crashes, and the oracle stays clean.
#[test]
fn pipelined_replay_survives_crash_restarts() {
    let cfg = config();
    let t = generate(&WorkloadSpec {
        n_users: 3,
        n_ops: 96,
        key_space: 24,
        mix: OpMix::write_heavy(),
        seed: 9,
        ..WorkloadSpec::default()
    });
    let mut server = HonestServer::new(&cfg);
    let report = replay_pipelined(&mut server, &cfg, &t, 8, 2, 16, [0x22; 32]);
    assert_eq!(report.verdict, OracleVerdict::NoObservableDeviation);
    assert!(report.pipelined > 0, "pipeline re-armed after each crash");
    assert!(
        report.fallbacks > 0,
        "each crash forced a blocking re-arm op"
    );
}

/// Pipelining must not move the oracle's needle on detection: a lying
/// server flags at exactly the counter of the lie, as on the blocking path
/// (`lie_is_observable_at_the_lie` in the oracle's own tests).
#[test]
fn pipelined_replay_flags_a_lie_at_the_lie() {
    let cfg = config();
    let t = generate(&WorkloadSpec {
        n_users: 2,
        n_ops: 30,
        seed: 1,
        ..WorkloadSpec::default()
    });
    let mut server = LieServer::new(&cfg, Trigger::AtCtr(7));
    let report = replay_pipelined(&mut server, &cfg, &t, 8, 2, 0, [0x23; 32]);
    assert_eq!(report.verdict.first_divergence(), Some(7));
}
