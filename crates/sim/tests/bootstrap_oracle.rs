//! Definition 2.1 ground truth for chunked verified state sync: replacing
//! a live server mid-trace with one rebuilt from its own verified chunks
//! must be **invisible to the deviation oracle** — every response after
//! the handoff is one a trusted run with the same op order produces. And a
//! lying chunk stream must never yield a serving replacement at all: the
//! forgery is rejected at the exact offending chunk, before any response
//! exists for the oracle to judge.

use tcvs_core::{HonestServer, ProtocolConfig, ServerApi, ServerCore};
use tcvs_merkle::{apply_op, ChunkAssembler, ChunkError, ChunkSource, MerkleTree};
use tcvs_workload::{generate, OpMix, WorkloadSpec};

fn config() -> ProtocolConfig {
    ProtocolConfig {
        order: 8,
        k: 8,
        epoch_len: 16,
    }
}

/// Transfers `server`'s published snapshot through the chunk protocol —
/// slice, (optionally reordered/duplicated) delivery, verify, assemble —
/// and returns the replacement server plus how many chunks moved.
fn bootstrap_replacement(
    server: &HonestServer,
    cfg: &ProtocolConfig,
    budget: usize,
    scramble: bool,
) -> (HonestServer, u32) {
    let snap = server.read_snapshot().expect("honest server publishes");
    let source = ChunkSource::new(snap.db(), budget).expect("full tree chunks");
    let mut assembler = ChunkAssembler::new(source.manifest().clone()).expect("valid manifest");
    let mut order: Vec<u32> = (0..source.num_chunks()).collect();
    if scramble {
        // Deterministic out-of-order, duplicated delivery: reversed, with
        // every third chunk delivered twice.
        order.reverse();
        let dups: Vec<u32> = order.iter().copied().step_by(3).collect();
        order.extend(dups);
    }
    for i in order {
        let bytes = source.chunk(i).expect("in-range chunk");
        assembler.admit(i, &bytes).expect("honest chunk admits");
    }
    let tree = assembler.finish().expect("anchor gate passes");
    let core = ServerCore::from_verified_state(tree, snap.ctr(), cfg)
        .expect("verified state makes a core");
    (HonestServer::from_core(core), source.num_chunks())
}

/// An honest server handed off to a bootstrapped replacement at several
/// cut points, under several seeds and chunk budgets: the oracle (a
/// trusted replay of the same operation order) sees zero deviations across
/// the handoff, and the replacement's roots track the trusted tree
/// exactly.
#[test]
fn bootstrap_handoff_is_invisible_to_the_oracle() {
    let cfg = config();
    for seed in [3u64, 11, 42] {
        let trace = generate(&WorkloadSpec {
            n_users: 3,
            n_ops: 90,
            key_space: 40,
            mix: OpMix::write_heavy(),
            seed,
            ..WorkloadSpec::default()
        });
        for cut in [1usize, 30, 60, 89] {
            for budget in [256usize, 4096] {
                let mut server = HonestServer::new(&cfg);
                let mut reference = MerkleTree::with_order(cfg.order);
                let mut chunked = false;
                for (idx, sop) in trace.ops().iter().enumerate() {
                    if idx == cut {
                        let (replacement, n_chunks) =
                            bootstrap_replacement(&server, &cfg, budget, idx % 2 == 0);
                        assert!(n_chunks >= 1);
                        chunked |= n_chunks > 1;
                        server = replacement;
                    }
                    let resp = server.handle_op(sop.user, &sop.op, sop.round);
                    let expected = apply_op(&mut reference, &sop.op).expect("full tree");
                    assert_eq!(
                        resp.result, expected,
                        "seed {seed} cut {cut} budget {budget}: response {idx} \
                         diverged from the trusted execution across the handoff"
                    );
                }
                assert_eq!(
                    server.core().root_digest(),
                    reference.root_digest(),
                    "seed {seed} cut {cut}: final roots agree"
                );
                if budget == 256 && cut >= 30 {
                    assert!(chunked, "small budget must actually chunk the transfer");
                }
            }
        }
    }
}

/// A lying chunk server never produces a serving replacement: for every
/// chunk index, forging that chunk (a value flipped inside the node
/// region) is rejected at exactly that index — there is no server, and so
/// no response, for the oracle to even examine.
#[test]
fn forged_chunk_stream_never_yields_a_server() {
    let cfg = config();
    let trace = generate(&WorkloadSpec {
        n_users: 2,
        n_ops: 80,
        key_space: 48,
        mix: OpMix::write_heavy(),
        seed: 7,
        ..WorkloadSpec::default()
    });
    let mut server = HonestServer::new(&cfg);
    for sop in trace.ops() {
        server.handle_op(sop.user, &sop.op, sop.round);
    }
    let snap = server.read_snapshot().expect("publishes");
    let source = ChunkSource::new(snap.db(), 256).expect("chunks");
    let n = source.num_chunks();
    assert!(n >= 3, "need a multi-chunk transfer, got {n}");
    for bad in 0..n {
        let mut assembler = ChunkAssembler::new(source.manifest().clone()).expect("valid manifest");
        let mut caught = None;
        for i in 0..n {
            let mut bytes = source.chunk(i).expect("in range");
            if i == bad {
                let at = bytes.len() - 1 - bytes.len() / 4;
                bytes[at] ^= 0x01;
            }
            if let Err(e) = assembler.admit(i, &bytes) {
                caught = Some((i, e));
                break;
            }
        }
        match caught {
            Some((at, ChunkError::AnchorMismatch { index })) => {
                assert_eq!(at, bad, "rejected at the offending chunk");
                assert_eq!(index, bad);
            }
            Some((at, _)) => assert_eq!(at, bad, "rejected at the offending chunk"),
            None => panic!("forged chunk {bad} was admitted"),
        }
    }
}
