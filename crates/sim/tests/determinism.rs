//! Determinism and accounting tests for the simulator: identical inputs
//! must produce bit-identical reports — the property that makes every
//! experiment in this repository reproducible.

use tcvs_core::adversary::{ForkServer, Trigger};
use tcvs_core::{HonestServer, Op, ProtocolConfig, ProtocolKind};
use tcvs_sim::{initial_root, op_request_size, simulate, SimSpec};
use tcvs_workload::{generate, OpMix, WorkloadSpec};

fn spec(protocol: ProtocolKind) -> SimSpec {
    SimSpec {
        protocol,
        config: ProtocolConfig {
            order: 8,
            k: 8,
            epoch_len: 16,
        },
        n_users: 3,
        mss_height: 7,
        setup_seed: [5; 32],
        final_sync: true,
        faults: tcvs_core::FaultPlan::none(),
    }
}

fn trace(seed: u64) -> tcvs_workload::Trace {
    generate(&WorkloadSpec {
        n_users: 3,
        n_ops: 80,
        key_space: 32,
        mix: OpMix::write_heavy(),
        seed,
        ..WorkloadSpec::default()
    })
}

#[test]
fn honest_runs_are_deterministic() {
    for protocol in [ProtocolKind::One, ProtocolKind::Two] {
        let s = spec(protocol);
        let t = trace(3);
        let mut sv1 = HonestServer::new(&s.config);
        let r1 = simulate(&s, &mut sv1, &t, None);
        let mut sv2 = HonestServer::new(&s.config);
        let r2 = simulate(&s, &mut sv2, &t, None);
        assert_eq!(r1.ops_executed, r2.ops_executed);
        assert_eq!(r1.msgs, r2.msgs);
        assert_eq!(r1.bytes, r2.bytes);
        assert_eq!(r1.makespan_rounds, r2.makespan_rounds);
        assert_eq!(r1.sync_rounds, r2.sync_rounds);
        assert_eq!(r1.detected(), r2.detected());
    }
}

#[test]
fn adversarial_runs_are_deterministic() {
    let s = spec(ProtocolKind::Two);
    let t = trace(9);
    let run = || {
        let mut server = ForkServer::new(&s.config, Trigger::AtCtr(20), &[0]);
        simulate(&s, &mut server, &t, Some(20))
    };
    let (r1, r2) = (run(), run());
    let e1 = r1.detection.expect("detected");
    let e2 = r2.detection.expect("detected");
    assert_eq!(e1, e2, "identical detection events");
}

#[test]
fn initial_root_is_order_dependent_constant() {
    let c8 = ProtocolConfig {
        order: 8,
        ..ProtocolConfig::default()
    };
    let c16 = ProtocolConfig {
        order: 16,
        ..ProtocolConfig::default()
    };
    assert_eq!(initial_root(&c8), initial_root(&c8));
    // Empty-leaf digests do not depend on order (both are empty leaves).
    assert_eq!(initial_root(&c8), initial_root(&c16));
}

#[test]
fn request_size_accounts_for_payloads() {
    let small = op_request_size(&Op::Get(vec![1, 2, 3]));
    let big = op_request_size(&Op::Put(vec![1, 2, 3], vec![0; 500]));
    assert!(big > small + 400);
    let range = op_request_size(&Op::Range(Some(vec![1]), None));
    assert!(range >= 10);
}

#[test]
fn byte_accounting_scales_with_value_size() {
    let s = spec(ProtocolKind::Two);
    let small = generate(&WorkloadSpec {
        n_users: 3,
        n_ops: 50,
        value_len: 16,
        mix: OpMix::update_only(),
        seed: 4,
        ..WorkloadSpec::default()
    });
    let large = generate(&WorkloadSpec {
        n_users: 3,
        n_ops: 50,
        value_len: 1024,
        mix: OpMix::update_only(),
        seed: 4,
        ..WorkloadSpec::default()
    });
    let mut sv = HonestServer::new(&s.config);
    let r_small = simulate(&s, &mut sv, &small, None);
    let mut sv = HonestServer::new(&s.config);
    let r_large = simulate(&s, &mut sv, &large, None);
    assert!(
        r_large.bytes > r_small.bytes + 50 * 900,
        "value bytes must appear in the traffic accounting"
    );
}
