//! Observability integration tests: traced runs must be byte-for-byte
//! deterministic under a fixed seed, and the measured detection latency
//! must respect the paper's theoretical bounds — `k` user operations for
//! Protocol I (Theorem 4.1) and two epochs for Protocol III (Theorem 4.3).

use tcvs_core::adversary::{ForkServer, TamperServer, Trigger};
use tcvs_core::{HonestServer, ProtocolConfig, ProtocolKind};
use tcvs_obs::{EventKind, Tracer};
use tcvs_sim::{
    simulate_observed, simulate_with_flight_recorder, DetectionLatency, LatencyBound, SimSpec,
};
use tcvs_workload::{generate, generate_epoch_workload, OpMix, WorkloadSpec};

fn spec(protocol: ProtocolKind, k: u64, epoch_len: u64) -> SimSpec {
    SimSpec {
        protocol,
        config: ProtocolConfig {
            order: 8,
            k,
            epoch_len,
        },
        n_users: 3,
        mss_height: 7,
        setup_seed: [5; 32],
        final_sync: true,
        faults: tcvs_core::FaultPlan::none(),
    }
}

fn trace(seed: u64) -> tcvs_workload::Trace {
    generate(&WorkloadSpec {
        n_users: 3,
        n_ops: 80,
        key_space: 32,
        mix: OpMix::write_heavy(),
        seed,
        ..WorkloadSpec::default()
    })
}

#[test]
fn seeded_runs_produce_byte_identical_event_logs() {
    for protocol in [ProtocolKind::One, ProtocolKind::Two, ProtocolKind::Three] {
        let s = spec(protocol, 8, 16);
        let t = if protocol == ProtocolKind::Three {
            generate_epoch_workload(
                3,
                4,
                16,
                2,
                &WorkloadSpec {
                    key_space: 16,
                    ..WorkloadSpec::default()
                },
            )
        } else {
            trace(7)
        };
        let run = || {
            let (tracer, sink) = Tracer::memory();
            let mut server = HonestServer::new(&s.config);
            let report = simulate_observed(&s, &mut server, &t, None, &tracer);
            (report, sink.render_log())
        };
        let (r1, log1) = run();
        let (r2, log2) = run();
        assert!(!log1.is_empty(), "{protocol:?}: events were emitted");
        assert_eq!(log1, log2, "{protocol:?}: logs must be byte-identical");
        assert_eq!(r1.ops_executed, r2.ops_executed);
        assert!(
            log1.contains("op-served"),
            "{protocol:?}: per-op events present"
        );
    }
}

#[test]
fn adversarial_log_orders_injection_before_detection() {
    let s = spec(ProtocolKind::Two, 8, 16);
    let t = trace(9);
    let (tracer, sink) = Tracer::memory();
    let mut server = ForkServer::new(&s.config, Trigger::AtCtr(20), &[0]);
    let report = simulate_observed(&s, &mut server, &t, Some(20), &tracer);
    assert!(report.detected());
    let events = sink.events();
    let injected = events
        .iter()
        .position(|e| e.kind == EventKind::DeviationInjected)
        .expect("injection event recorded");
    let detected = events
        .iter()
        .position(|e| e.kind == EventKind::Detection)
        .expect("detection event recorded");
    assert!(
        injected < detected,
        "ground-truth injection precedes the alarm"
    );
}

#[test]
fn protocol1_latency_is_k_bounded() {
    // Hand-computed bound: Protocol I with k = 6 and three users. After the
    // fork at delivery index 20, no user may complete more than k ops
    // before a sync-up fires and fails — plus the sync round itself.
    let s = spec(ProtocolKind::One, 6, 1_000);
    let t = trace(11);
    let (tracer, _sink) = Tracer::memory();
    let mut server = ForkServer::new(&s.config, Trigger::AtCtr(20), &[0]);
    let report = simulate_observed(&s, &mut server, &t, Some(20), &tracer);
    assert!(report.detected(), "fork must be detected");
    let lat: &DetectionLatency = report
        .detection_latency
        .as_ref()
        .expect("latency measured: violation point was known");
    assert_eq!(lat.deviation_op, 20);
    assert!(lat.detection_op >= 20);
    assert_eq!(lat.bound, LatencyBound::UserOps(6));
    let max_user = lat.max_user_ops.expect("per-user metric measured");
    assert!(
        max_user <= 6 + 1,
        "Theorem 4.1: at most k (+ sync round) user ops after the fork, got {max_user}"
    );
    assert_eq!(lat.within_bound(), Some(true));
    // With 3 users the system-wide exposure is at most n * (k + 1).
    assert!(lat.ops <= 3 * 7, "system-wide ops bound, got {}", lat.ops);
}

#[test]
fn protocol3_latency_is_two_epoch_bounded() {
    // Hand-computed bound: the epoch-e audit runs in epoch e + 2
    // (Theorem 4.3), so a tamper in epoch 1 is caught by epoch 3.
    let epoch_len = 12;
    let s = spec(ProtocolKind::Three, 1_000, epoch_len);
    let t = generate_epoch_workload(
        3,
        7,
        epoch_len,
        2,
        &WorkloadSpec {
            key_space: 16,
            ..WorkloadSpec::default()
        },
    );
    // Tamper right after epoch 1 begins. Ops are served sequentially, so
    // the server's ctr equals the delivery index: trigger at the first
    // delivery whose round falls in epoch 1.
    let violation_idx = t
        .ops()
        .iter()
        .position(|sop| sop.round >= epoch_len)
        .expect("trace spans epoch 1") as u64;
    let (tracer, _sink) = Tracer::memory();
    let mut server = TamperServer::new(&s.config, Trigger::AtCtr(violation_idx));
    let report = simulate_observed(&s, &mut server, &t, Some(violation_idx), &tracer);
    assert!(report.detected(), "tamper must be detected");
    let lat = report.detection_latency.as_ref().expect("latency measured");
    assert_eq!(lat.bound, LatencyBound::Epochs(2));
    let epochs = lat.epochs.expect("epoch latency measured");
    assert!(
        epochs <= 2,
        "Theorem 4.3: detection within two epochs, got {epochs}"
    );
    assert_eq!(lat.within_bound(), Some(true));
}

#[test]
fn fork_attack_flight_dump_causally_links_the_forked_operations() {
    let s = spec(ProtocolKind::Two, 8, 16);
    let t = trace(9);
    let mut server = ForkServer::new(&s.config, Trigger::AtCtr(20), &[0]);
    let (report, dump, recorder) = simulate_with_flight_recorder(&s, &mut server, &t, Some(20), 64);
    assert!(report.detected());
    let dump = dump.expect("a detected run dumps the flight recorder");
    assert!(
        dump.contains("detection"),
        "the verdict is in the dump:\n{dump}"
    );
    // Causality: the detection span and the server's op-served span for the
    // same delivery belong to the same trace (the forked client's op), and
    // each is parented on that operation's root span.
    let events = recorder.snapshot();
    let detection = events
        .iter()
        .find(|e| e.kind == EventKind::Detection)
        .expect("detection event retained");
    let det_span = detection.span.expect("detection carries a span");
    let served_same_trace = events.iter().any(|e| {
        e.kind == EventKind::OpServed && e.span.is_some_and(|sp| sp.trace == det_span.trace)
    });
    assert!(
        served_same_trace,
        "an op-served span shares the detection's trace"
    );
    assert!(
        det_span.parent.is_some(),
        "the verdict links back to the operation's root span"
    );
    // Ring bound: the recorder never retains more than its capacity, and a
    // long run records more than it keeps.
    assert!(events.len() <= 64);
    assert!(recorder.recorded() >= events.len() as u64);
}

#[test]
fn honest_flight_runs_dump_nothing() {
    let s = spec(ProtocolKind::Two, 8, 16);
    let mut server = HonestServer::new(&s.config);
    let (report, dump, recorder) =
        simulate_with_flight_recorder(&s, &mut server, &trace(3), None, 32);
    assert!(!report.detected());
    assert!(dump.is_none(), "nothing fired, nothing to dump");
    assert!(recorder.recorded() > 0, "the ring was recording all along");
}

#[test]
fn honest_runs_measure_no_latency() {
    let s = spec(ProtocolKind::Two, 8, 16);
    let (tracer, sink) = Tracer::memory();
    let mut server = HonestServer::new(&s.config);
    let report = simulate_observed(&s, &mut server, &trace(3), None, &tracer);
    assert!(!report.detected());
    assert!(report.detection_latency.is_none());
    assert!(
        !sink.events().iter().any(|e| e.kind == EventKind::Detection),
        "honest run emits no detection events"
    );
}
