//! Sharded-grove detection semantics at the simulator level: a workload is
//! partitioned across N shard servers by the restart-stable
//! `tcvs_core::ShardRouter`, each shard runs the round-based model
//! independently, and a lie confined to one shard is flagged at its exact
//! counter while the other N−1 honest shards raise zero false alarms —
//! including under scheduled crash-restarts on every shard.

use tcvs_core::adversary::{LieServer, Trigger};
use tcvs_core::{FaultPlan, FaultRates, HonestServer, ProtocolKind, ServerApi, ShardRouter};
use tcvs_sim::{simulate, SimSpec};
use tcvs_workload::{generate, OpMix, ScheduledOp, Trace, WorkloadSpec};

const N_SHARDS: usize = 4;
const N_USERS: u32 = 3;

fn workload() -> Trace {
    generate(&WorkloadSpec {
        n_users: N_USERS,
        n_ops: 240,
        key_space: 128,
        mix: OpMix::write_heavy(),
        seed: 0x5a5a,
        ..Default::default()
    })
}

/// Splits a trace into per-shard traces by the grove router, preserving
/// rounds and relative order. Cross-shard ranges scatter to every shard —
/// each shard serves (and each shard's clients verify) its own slice.
fn shard_traces(trace: &Trace, n_shards: usize) -> Vec<Trace> {
    let router = ShardRouter::new(n_shards);
    let mut per: Vec<Vec<ScheduledOp>> = vec![Vec::new(); n_shards];
    for s in trace.ops() {
        match router.route_op(&s.op) {
            Some(i) => per[i].push(s.clone()),
            None => per.iter_mut().for_each(|p| p.push(s.clone())),
        }
    }
    per.into_iter().map(Trace::new).collect()
}

fn spec() -> SimSpec {
    SimSpec::new(ProtocolKind::Two, N_USERS)
}

/// Partitioning is itself restart-stable: two independent partitionings of
/// the same trace agree, and every keyed op lands on exactly one shard.
#[test]
fn partitioning_is_deterministic_and_total() {
    let trace = workload();
    let a = shard_traces(&trace, N_SHARDS);
    let b = shard_traces(&trace, N_SHARDS);
    for (ta, tb) in a.iter().zip(&b) {
        assert_eq!(ta.ops(), tb.ops(), "partitioning is deterministic");
        assert!(!ta.is_empty(), "every shard drew traffic from this trace");
    }
    let ranges = trace
        .ops()
        .iter()
        .filter(|s| ShardRouter::new(N_SHARDS).route_op(&s.op).is_none())
        .count();
    let keyed = trace.len() - ranges;
    let total: usize = a.iter().map(Trace::len).sum();
    assert_eq!(
        total,
        keyed + ranges * N_SHARDS,
        "keyed ops land once, ranges scatter to all shards"
    );
}

/// An all-honest grove: every shard's run completes with no detection.
#[test]
fn honest_grove_has_zero_false_alarms() {
    let spec = spec();
    for (i, trace) in shard_traces(&workload(), N_SHARDS).iter().enumerate() {
        let mut server = HonestServer::new(&spec.config);
        let report = simulate(&spec, &mut server, trace, None);
        assert!(
            !report.detected(),
            "honest shard {i} alarmed: {:?}",
            report.detection
        );
        assert_eq!(report.ops_executed, trace.len() as u64);
    }
}

/// A lie confined to one shard: that shard's clients flag it at the exact
/// deviating operation (zero detection delay for Protocol II's replay
/// check, well within the k-bound), and the honest shards complete their
/// full slices with zero false alarms.
#[test]
fn single_shard_lie_is_flagged_at_the_exact_counter() {
    const LIE_AT: u64 = 20;
    let bad_shard = 2;
    let spec = spec();
    for (i, trace) in shard_traces(&workload(), N_SHARDS).iter().enumerate() {
        let mut server: Box<dyn ServerApi> = if i == bad_shard {
            Box::new(LieServer::new(&spec.config, Trigger::AtCtr(LIE_AT)))
        } else {
            Box::new(HonestServer::new(&spec.config))
        };
        // Ground truth: the lie lands on the op whose pre-op counter first
        // reaches LIE_AT — shard-local op index LIE_AT.
        let violation = (i == bad_shard).then_some(LIE_AT);
        let report = simulate(&spec, server.as_mut(), trace, violation);
        if i == bad_shard {
            let det = report.detection.expect("the lying shard escaped");
            assert_eq!(det.op_index, LIE_AT, "flagged at the deviating op");
            // ops_after_violation counts inclusively, so 1 == caught on the
            // violating operation itself: zero detection delay.
            assert_eq!(det.ops_after_violation, Some(1));
            assert!(
                spec.config.k >= det.ops_after_violation.unwrap(),
                "within the k-bound"
            );
        } else {
            assert!(
                !report.detected(),
                "honest shard {i} alarmed: {:?}",
                report.detection
            );
            assert_eq!(report.ops_executed, trace.len() as u64);
        }
    }
}

/// The same confinement under benign crash-restarts on *every* shard, each
/// replaying an independently seeded per-shard fault stream: honest shards
/// absorb their crashes with zero false alarms; the deviating shard is
/// still caught at its exact counter (an adversary's crash_restart keeps
/// its malicious state — crashing is not an alibi).
#[test]
fn single_shard_lie_survives_crash_restarts_on_every_shard() {
    const LIE_AT: u64 = 12;
    let bad_shard = 1;
    let rates = FaultRates {
        drop_pct: 0,
        delay_pct: 0,
        dup_pct: 0,
        reorder_pct: 0,
        crash_pct: 12,
        storage_pct: 0,
        max_delay_rounds: 2,
    };
    let base = spec();
    for (i, trace) in shard_traces(&workload(), N_SHARDS).iter().enumerate() {
        let plan = FaultPlan::seeded_for_link(0xc4a5, i as u64, trace.len() as u64, &rates);
        let spec = base.clone().with_faults(plan);
        let mut server: Box<dyn ServerApi> = if i == bad_shard {
            Box::new(LieServer::new(&spec.config, Trigger::AtCtr(LIE_AT)))
        } else {
            Box::new(HonestServer::new(&spec.config))
        };
        let violation = (i == bad_shard).then_some(LIE_AT);
        let report = simulate(&spec, server.as_mut(), trace, violation);
        if i == bad_shard {
            let det = report.detection.expect("crashes must not mask the lie");
            assert_eq!(det.op_index, LIE_AT);
            assert_eq!(det.ops_after_violation, Some(1), "caught on the lying op");
        } else {
            assert!(
                !report.detected(),
                "honest shard {i} alarmed under crash-restarts: {:?}",
                report.detection
            );
            assert!(
                report.faults.crashes > 0,
                "shard {i}'s independently seeded plan actually crashed it"
            );
            assert_eq!(report.ops_executed, trace.len() as u64);
        }
    }
}
