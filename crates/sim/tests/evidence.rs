//! Evidence capture at the simulator's detection sites: a detected run
//! seals a portable bundle (auditable cold, byte-stable across same-seed
//! re-runs), the trusted-replay oracle seals its divergence verdict, and
//! honest runs capture nothing.

use tcvs_core::adversary::{LieServer, Trigger};
use tcvs_core::{audit_bytes, EvidenceKind, HonestServer, ProtocolKind};
use tcvs_sim::{run_with_oracle_evidence, simulate_with_evidence, SimSpec};
use tcvs_workload::{generate, WorkloadSpec};

fn workload(seed: u64) -> tcvs_workload::Trace {
    generate(&WorkloadSpec {
        n_users: 3,
        n_ops: 60,
        key_space: 16,
        seed,
        ..WorkloadSpec::default()
    })
}

#[test]
fn detected_run_seals_a_byte_stable_auditable_bundle() {
    let spec = SimSpec::new(ProtocolKind::Two, 3);
    let trace = workload(7);
    let run = |spec: &SimSpec| {
        let mut server = LieServer::new(&spec.config, Trigger::AtCtr(9));
        simulate_with_evidence(spec, &mut server, &trace, Some(9), 64)
    };
    let (report, bundle, _rec) = run(&spec);
    assert!(report.detected(), "the lie must be caught");
    let bundle = bundle.expect("detection seals evidence");
    assert_eq!(bundle.kind, EvidenceKind::ProtocolVerdict);
    assert_eq!(bundle.protocol, "protocol-2");
    assert_eq!(
        bundle.seed,
        u64::from_le_bytes([0xA5; 8]),
        "seed derived from the spec's setup seed"
    );
    assert!(
        !bundle.flight_tail.is_empty(),
        "the flight recorder tail rides along"
    );

    let audit = audit_bytes(&bundle.to_bytes());
    assert!(audit.accepted, "{:?}", audit.rejection);
    assert_eq!(audit.kind.as_deref(), Some("protocol-verdict"));

    // Same seed, same trace → byte-identical artifact.
    let (_, bundle2, _) = run(&spec);
    assert_eq!(
        bundle.to_bytes(),
        bundle2.expect("detects again").to_bytes()
    );
}

#[test]
fn honest_run_captures_nothing() {
    let spec = SimSpec::new(ProtocolKind::Two, 3);
    let trace = workload(11);
    let mut server = HonestServer::new(&spec.config);
    let (report, bundle, _rec) = simulate_with_evidence(&spec, &mut server, &trace, None, 64);
    assert!(!report.detected());
    assert!(bundle.is_none(), "capture is free on the honest path");
}

#[test]
fn oracle_divergence_seals_a_bundle_naming_the_op_and_user() {
    let spec = SimSpec::new(ProtocolKind::Two, 2);
    let trace = workload(3);
    let mut server = LieServer::new(&spec.config, Trigger::AtCtr(5));
    let (verdict, bundle) = run_with_oracle_evidence(&mut server, &spec.config, &trace, 99);
    assert_eq!(verdict.first_divergence(), Some(5));
    let bundle = bundle.expect("divergence seals evidence");
    assert_eq!(bundle.kind, EvidenceKind::OracleDeviation);
    assert_eq!(bundle.seed, 99);
    assert_eq!(bundle.trigger.ctr, Some(5));
    assert!(bundle.trigger.user.is_some());
    let audit = audit_bytes(&bundle.to_bytes());
    assert!(audit.accepted, "{:?}", audit.rejection);
    assert_eq!(audit.kind.as_deref(), Some("oracle-deviation"));

    let mut honest = HonestServer::new(&spec.config);
    let (v, b) = run_with_oracle_evidence(&mut honest, &spec.config, &trace, 99);
    assert!(!v.deviated());
    assert!(b.is_none());
}
