//! The round-based multi-agent runner (§2.1's system model, executable).
//!
//! The runner drives a trace of query actions against any [`ServerApi`]
//! implementation — honest or adversarial — through the protocol clients,
//! honouring the model's timing rules:
//!
//! * at most one query action per round;
//! * messages delivered in one round;
//! * Protocol I's signature deposit *blocks* the server for an extra round
//!   (`b*`-bounded transactions with a larger `b*` — the measurable cost
//!   that motivates Protocol II);
//! * broadcast sync-ups occupy one round of their own.
//!
//! Detection stops the run: the paper assumes the first user to detect
//! leaves the system and alerts the others out of band.

use std::sync::Arc;
use tcvs_core::strawman::NaiveXorClient;
use tcvs_core::{
    Client1, Client2, Client3, Deviation, Digest, EvidenceBuilder, EvidenceBundle, EvidenceKind,
    FaultKind, FaultPlan, Op, ProtocolConfig, ProtocolKind, ServerApi, SyncShare, UserId,
};
use tcvs_crypto::setup_users;
use tcvs_merkle::MerkleTree;
use tcvs_obs::{stage, Event, EventKind, FlightRecorder, SpanContext, Tracer, NO_ACTOR};
use tcvs_workload::Trace;

use crate::latency::{theoretical_bound, DetectionLatency};
use crate::report::{DetectionEvent, RunReport};

/// Simulation parameters.
#[derive(Clone, Debug)]
pub struct SimSpec {
    /// Which protocol the users speak.
    pub protocol: ProtocolKind,
    /// Protocol configuration (order, k, epoch length).
    pub config: ProtocolConfig,
    /// Number of users.
    pub n_users: u32,
    /// MSS tree height for signing protocols (capacity = 2^height sigs).
    pub mss_height: u32,
    /// Key-generation seed.
    pub setup_seed: [u8; 32],
    /// Whether to run one final sync-up after the trace ends (Protocols
    /// I/II). Disable to model a system with **no external communication**
    /// (§3 / Theorem 3.1).
    pub final_sync: bool,
    /// Benign faults to inject, keyed by delivery index. The runner models
    /// their cost (retransmissions, delay rounds, crash-restarts) and the
    /// oracle's invariant is that they never cause a deviation alarm.
    pub faults: FaultPlan,
}

impl SimSpec {
    /// A reasonable default spec for `protocol` with `n_users` users.
    pub fn new(protocol: ProtocolKind, n_users: u32) -> SimSpec {
        SimSpec {
            protocol,
            config: ProtocolConfig::default(),
            n_users,
            mss_height: 8,
            setup_seed: [0xA5; 32],
            final_sync: true,
            faults: FaultPlan::none(),
        }
    }

    /// The same spec with a fault schedule.
    pub fn with_faults(mut self, faults: FaultPlan) -> SimSpec {
        self.faults = faults;
        self
    }
}

/// The root digest of the empty initial database — common knowledge among
/// users (the paper assumes `M(D₀)` is known to everyone).
pub fn initial_root(config: &ProtocolConfig) -> Digest {
    MerkleTree::with_order(config.order).root_digest()
}

enum ClientSet {
    Trusted,
    One(Vec<Client1>),
    Two(Vec<Client2>),
    Three(Vec<Client3>),
    NaiveXor(Vec<NaiveXorClient>),
}

/// Wire-size estimate of an operation request.
pub fn op_request_size(op: &Op) -> usize {
    let body = match op {
        Op::Get(k) => k.len(),
        Op::Range(lo, hi) => {
            lo.as_ref().map_or(0, |k| k.len()) + hi.as_ref().map_or(0, |k| k.len())
        }
        Op::Put(k, v) => k.len() + v.len(),
        Op::Delete(k) => k.len(),
    };
    1 + 8 + body
}

/// Runs `trace` through `server` with fresh clients per `spec`.
///
/// `violation_op` is the harness's ground truth for when the server first
/// deviates (global op index); it parameterizes the detection-delay metrics
/// in the report. The runner itself never peeks at it.
pub fn simulate(
    spec: &SimSpec,
    server: &mut dyn ServerApi,
    trace: &Trace,
    violation_op: Option<u64>,
) -> RunReport {
    simulate_observed(spec, server, trace, violation_op, &Tracer::disabled())
}

/// [`simulate`], with structured events emitted through `tracer`.
///
/// Every event carries logical time only (delivery index, round, epoch), so
/// two runs of the same spec and trace produce byte-identical logs. When
/// the harness supplied `violation_op`, the run additionally measures the
/// deviation → detection latency ([`RunReport::detection_latency`]) against
/// the paper's theoretical bound for the protocol.
pub fn simulate_observed(
    spec: &SimSpec,
    server: &mut dyn ServerApi,
    trace: &Trace,
    violation_op: Option<u64>,
    tracer: &Tracer,
) -> RunReport {
    let root0 = initial_root(&spec.config);
    let mut clients = build_clients(spec, &root0, tracer);

    // Protocol I initialization: elected user 0 signs h(M(D0) || 0).
    if let ClientSet::One(cs) = &mut clients {
        let init = cs[0].sign_initial(&root0).expect("fresh key");
        server.deposit_signature(cs[0].user(), init);
    }

    let mut report = RunReport {
        protocol: spec.protocol,
        ops_executed: 0,
        makespan_rounds: 0,
        msgs: 0,
        bytes: 0,
        sync_rounds: 0,
        sync_bytes: 0,
        audits: 0,
        faults: tcvs_core::FaultCounts::default(),
        detection: None,
        detection_latency: None,
    };
    let mut busy_until = 0u64;
    let mut ops_per_user = vec![0u64; spec.n_users as usize];
    // The round at which the violation delivery index was served (for the
    // rounds / epochs latency metrics).
    let mut violation_round: Option<u64> = None;

    let config = spec.config;
    let finish = |report: &mut RunReport,
                  detection: Option<(u64, u64, UserId, Deviation)>,
                  ops_per_user: &[u64],
                  violation_op: Option<u64>,
                  violation_round: Option<u64>| {
        if let Some((op_index, round, by_user, deviation)) = detection {
            let (after, max_user) = match violation_op {
                Some(v) if op_index >= v => {
                    // ops executed strictly after the violation point.
                    let after = report.ops_executed.saturating_sub(v);
                    // conservative per-user bound: recompute below.
                    (
                        Some(after),
                        Some(ops_per_user.iter().copied().max().unwrap_or(0)),
                    )
                }
                _ => (None, None),
            };
            if let Some(v) = violation_op {
                if op_index >= v {
                    let vr = violation_round.unwrap_or(round);
                    let epochs = matches!(report.protocol, ProtocolKind::Three)
                        .then(|| (round / config.epoch_len).saturating_sub(vr / config.epoch_len));
                    report.detection_latency = Some(DetectionLatency {
                        deviation_op: v,
                        detection_op: op_index,
                        ops: op_index - v,
                        rounds: round.saturating_sub(vr),
                        max_user_ops: None, // fixed up by the caller
                        epochs,
                        bound: theoretical_bound(report.protocol, &config),
                    });
                }
            }
            report.detection = Some(DetectionEvent {
                op_index,
                round,
                by_user,
                deviation,
                ops_after_violation: after,
                max_user_ops_after_violation: max_user,
            });
        }
    };

    // Per-user op counts *after* the violation point (for the k metric).
    let mut ops_after_violation_per_user = vec![0u64; spec.n_users as usize];
    // Per-user sequence numbers: the same numbering the threaded transport
    // uses, so simulator span trees match wire span trees op for op.
    let mut seqs = vec![0u64; spec.n_users as usize];

    // Benign faults: adjacent reorders permute the delivery order; the
    // other kinds add cost (retransmissions, delay rounds, restarts) at
    // their delivery index. None of them may trigger a detection.
    let order = spec.faults.effective_order(trace.len() as u64);
    for (idx, &trace_idx) in order.iter().enumerate() {
        let sop = &trace.ops()[trace_idx as usize];
        let fault = spec.faults.fault_at(idx as u64);
        seqs[sop.user as usize] += 1;
        // The root span for this logical operation: everything this delivery
        // causes — fault, server handling, verdict, sync — links under it.
        let ctx = SpanContext::root(sop.user, seqs[sop.user as usize]);
        let mut round = sop.round.max(busy_until);
        match fault {
            Some(FaultKind::DropRequest) => {
                // The request is lost and retransmitted a round later.
                report.faults.drops += 1;
                report.msgs += 2;
                round += 1;
            }
            Some(FaultKind::DropReply) => {
                report.faults.drops += 1;
                report.msgs += 2;
            }
            Some(FaultKind::Delay(r)) => {
                report.faults.delays += 1;
                round += r;
            }
            Some(FaultKind::Duplicate) => {
                // The duplicate reaches the server but is absorbed by its
                // reply journal: one extra message, no re-execution.
                report.faults.duplicates += 1;
                report.msgs += 1;
            }
            Some(FaultKind::ReorderNext) => {
                // The swap itself happened in `order`; holding the message
                // back costs a round.
                report.faults.reorders += 1;
                round += 1;
            }
            Some(FaultKind::Storage(_)) => {
                // Storage faults hit the medium under a durable engine; the
                // round-based simulator runs in-memory servers, so the
                // fault costs nothing here beyond being counted. The
                // storage-level property tests exercise the real effect.
                report.faults.storage += 1;
            }
            Some(FaultKind::CrashRestart) | None => {}
        }
        if let Some(f) = fault {
            tracer.emit(|| {
                Event::new(idx as u64, EventKind::FaultInjected, sop.user)
                    .detail(format!("{f:?}"))
                    .span(ctx.child(stage::FAULT))
            });
        }
        if violation_op == Some(idx as u64) {
            violation_round = Some(round);
            tracer.emit(|| {
                Event::new(idx as u64, EventKind::DeviationInjected, NO_ACTOR)
                    .detail(format!("round={round}"))
                    .span(ctx)
            });
        }
        let resp = server.handle_op(sop.user, &sop.op, round);
        tracer.emit(|| {
            Event::new(idx as u64, EventKind::OpServed, sop.user)
                .detail(format!("round={round} ctr={}", resp.ctr))
                .span(ctx.child(stage::SERVER))
        });
        report.msgs += 2;
        report.bytes += (op_request_size(&sop.op) + resp.encoded_size()) as u64;
        report.ops_executed += 1;
        ops_per_user[sop.user as usize] += 1;
        if let Some(v) = violation_op {
            if idx as u64 >= v {
                ops_after_violation_per_user[sop.user as usize] += 1;
            }
        }

        let mut detection: Option<Deviation> = None;
        let mut extra_rounds = 1u64;

        match &mut clients {
            ClientSet::Trusted => {}
            ClientSet::One(cs) => {
                let c = &mut cs[sop.user as usize];
                c.set_current_span(Some(ctx));
                match c.handle_response(&sop.op, &resp) {
                    Ok((_result, deposit)) => {
                        report.msgs += 1;
                        report.bytes += deposit.encoded_size() as u64;
                        server.deposit_signature(sop.user, deposit);
                        extra_rounds = 2; // the blocking deposit round
                    }
                    Err(d) => detection = Some(d),
                }
            }
            ClientSet::Two(cs) => {
                let c = &mut cs[sop.user as usize];
                c.set_current_span(Some(ctx));
                if let Err(d) = c.handle_response(&sop.op, &resp) {
                    detection = Some(d);
                }
            }
            ClientSet::NaiveXor(cs) => {
                if let Err(d) = cs[sop.user as usize].handle_response(&sop.op, &resp) {
                    detection = Some(d);
                }
            }
            ClientSet::Three(cs) => {
                cs[sop.user as usize].set_current_span(Some(ctx));
                match cs[sop.user as usize].handle_response(&sop.op, &resp, round) {
                    Ok((_result, deposits)) => {
                        for d in deposits {
                            report.msgs += 1;
                            report.bytes += d.encoded_size() as u64;
                            server.deposit_epoch_state(d);
                        }
                        // Audit duty, if due.
                        let c = &mut cs[sop.user as usize];
                        if let Some(epoch) = c.pending_audit() {
                            let states = server.fetch_epoch_states(sop.user, epoch);
                            report.msgs += 2;
                            report.bytes +=
                                states.iter().map(|s| s.encoded_size() as u64).sum::<u64>();
                            let prev = if epoch == 0 {
                                None
                            } else {
                                report.msgs += 2;
                                server.fetch_checkpoint(sop.user, epoch - 1)
                            };
                            report.audits += 1;
                            match c.audit(epoch, &states, prev.as_ref()) {
                                Ok(cp) => {
                                    report.msgs += 1;
                                    report.bytes += cp.encoded_size() as u64;
                                    server.deposit_checkpoint(cp);
                                }
                                Err(d) => detection = Some(d),
                            }
                        }
                    }
                    Err(d) => detection = Some(d),
                }
            }
        }

        // A lost reply is retransmitted: the exchange costs one more round.
        if fault == Some(FaultKind::DropReply) {
            extra_rounds += 1;
        }

        if let Some(dev) = detection {
            report.makespan_rounds = round + extra_rounds;
            tracer.emit(|| {
                Event::new(idx as u64, EventKind::Detection, sop.user)
                    .detail(format!("{dev} round={round}"))
                    .span(ctx.child(stage::VERDICT))
            });
            let max_user = ops_after_violation_per_user.iter().copied().max();
            finish(
                &mut report,
                Some((idx as u64, round, sop.user, dev)),
                &ops_per_user,
                violation_op,
                violation_round,
            );
            if let (Some(ev), Some(m)) = (report.detection.as_mut(), max_user) {
                ev.max_user_ops_after_violation = violation_op.map(|_| m);
            }
            if let (Some(lat), Some(m)) = (report.detection_latency.as_mut(), max_user) {
                lat.max_user_ops = Some(m);
            }
            return report;
        }

        busy_until = round + extra_rounds;

        // A scheduled crash: the server restarts from persisted state
        // before the next operation (the restart costs two rounds). An
        // adversary's crash_restart keeps its malicious state — crashing
        // must never launder a deviation.
        if fault == Some(FaultKind::CrashRestart) {
            report.faults.crashes += 1;
            tracer.emit(|| Event::new(idx as u64, EventKind::Crash, NO_ACTOR).detail("scheduled"));
            server.crash_restart();
            tracer.emit(|| Event::new(idx as u64, EventKind::Restart, NO_ACTOR));
            busy_until += 2;
        }
        report.makespan_rounds = busy_until;

        // Broadcast sync-up when any user hits k ops since the last one.
        if let Some(dev) = maybe_sync(&mut clients, &mut report, &mut busy_until, tracer) {
            tracer.emit(|| {
                Event::new(idx as u64, EventKind::Detection, sop.user)
                    .detail(format!("{dev} round={busy_until}"))
                    .span(ctx.child(stage::SYNC))
            });
            let max_user = ops_after_violation_per_user.iter().copied().max();
            finish(
                &mut report,
                Some((idx as u64, busy_until, sop.user, dev)),
                &ops_per_user,
                violation_op,
                violation_round,
            );
            if let (Some(ev), Some(m)) = (report.detection.as_mut(), max_user) {
                ev.max_user_ops_after_violation = violation_op.map(|_| m);
            }
            if let (Some(lat), Some(m)) = (report.detection_latency.as_mut(), max_user) {
                lat.max_user_ops = Some(m);
            }
            return report;
        }
    }

    // Trace exhausted: one final sync-up so short traces still settle.
    if !spec.final_sync {
        return report;
    }
    if let Some(dev) = force_sync(&mut clients, &mut report, &mut busy_until, tracer) {
        tracer.emit(|| {
            Event::new(trace.len() as u64, EventKind::Detection, 0)
                .detail(format!("{dev} round={busy_until}"))
        });
        let max_user = ops_after_violation_per_user.iter().copied().max();
        let n = trace.len() as u64;
        finish(
            &mut report,
            Some((n, busy_until, 0, dev)),
            &ops_per_user,
            violation_op,
            violation_round,
        );
        if let (Some(ev), Some(m)) = (report.detection.as_mut(), max_user) {
            ev.max_user_ops_after_violation = violation_op.map(|_| m);
        }
        if let (Some(lat), Some(m)) = (report.detection_latency.as_mut(), max_user) {
            lat.max_user_ops = Some(m);
        }
    }
    report
}

/// [`simulate_observed`] with an always-on [`FlightRecorder`] as the sink:
/// the bounded-memory deployment shape for long traces.
///
/// Every event of the run flows into a ring of `cap` slots (oldest
/// overwritten), so memory stays constant however long the trace. When the
/// run ends in a deviation verdict — a per-op detection, a failed sync-up,
/// or anything the protocol surfaces as [`Deviation`] — the recorder's
/// retained tail is rendered and returned alongside the report: the black
/// box for the forensics that follow. Scheduled crash-restarts during the
/// run land in the same ring, so a post-crash dump shows them too. Honest
/// runs return `None`: nothing fired, nothing to dump.
pub fn simulate_with_flight_recorder(
    spec: &SimSpec,
    server: &mut dyn ServerApi,
    trace: &Trace,
    violation_op: Option<u64>,
    cap: usize,
) -> (RunReport, Option<String>, Arc<FlightRecorder>) {
    let (tracer, recorder) = Tracer::flight(cap);
    let report = simulate_observed(spec, server, trace, violation_op, &tracer);
    let dump = report.detected().then(|| recorder.render_log());
    (report, dump, recorder)
}

/// [`simulate_with_flight_recorder`] that additionally seals the run's
/// verdict into a portable [`EvidenceBundle`] when detection fired: the
/// triggering deviation, the detecting user, the run seed, the genesis
/// anchor token, and the flight recorder's retained tail. Honest runs
/// return no bundle — capture must cost nothing on the honest path.
pub fn simulate_with_evidence(
    spec: &SimSpec,
    server: &mut dyn ServerApi,
    trace: &Trace,
    violation_op: Option<u64>,
    cap: usize,
) -> (RunReport, Option<EvidenceBundle>, Arc<FlightRecorder>) {
    let (report, _dump, recorder) =
        simulate_with_flight_recorder(spec, server, trace, violation_op, cap);
    let bundle = report.detection.as_ref().map(|det| {
        let seed = u64::from_le_bytes(spec.setup_seed[..8].try_into().expect("8-byte prefix"));
        let root0 = initial_root(&spec.config);
        let trigger = {
            let mut t = tcvs_core::TriggerInfo::from_deviation(&det.deviation);
            t.user = Some(det.by_user);
            t.ctr = Some(det.op_index);
            t
        };
        EvidenceBuilder::new(EvidenceKind::ProtocolVerdict, seed, spec.protocol.label())
            .captured_at(det.op_index)
            .description(format!(
                "simulated run detected at op {} (round {}) by user {}",
                det.op_index, det.round, det.by_user
            ))
            .trigger(trigger)
            .initials(&[tcvs_core::state::initial_token(&root0)])
            .flight_tail(recorder.snapshot())
            .build()
    });
    (report, bundle, recorder)
}

fn build_clients(spec: &SimSpec, root0: &Digest, tracer: &Tracer) -> ClientSet {
    match spec.protocol {
        ProtocolKind::Trusted => ClientSet::Trusted,
        ProtocolKind::One => {
            let (rings, registry) = setup_users(spec.setup_seed, spec.n_users, spec.mss_height);
            ClientSet::One(
                rings
                    .into_iter()
                    .map(|r| {
                        let mut c = Client1::new(r, registry.clone(), spec.config);
                        c.set_tracer(tracer.clone());
                        c
                    })
                    .collect(),
            )
        }
        ProtocolKind::Two => ClientSet::Two(
            (0..spec.n_users)
                .map(|u| {
                    let mut c = Client2::new(u, root0, spec.config);
                    c.set_tracer(tracer.clone());
                    c
                })
                .collect(),
        ),
        ProtocolKind::Three => {
            let (rings, registry) = setup_users(spec.setup_seed, spec.n_users, spec.mss_height);
            ClientSet::Three(
                rings
                    .into_iter()
                    .map(|r| {
                        let mut c =
                            Client3::new(r, registry.clone(), spec.n_users, root0, spec.config);
                        c.set_tracer(tracer.clone());
                        c
                    })
                    .collect(),
            )
        }
        ProtocolKind::NaiveXor => ClientSet::NaiveXor(
            (0..spec.n_users)
                .map(|u| NaiveXorClient::new(u, root0, spec.config))
                .collect(),
        ),
        ProtocolKind::TokenRing => {
            panic!("token-ring uses the dedicated ring runner (tcvs_sim::token_ring)")
        }
    }
}

/// Runs a sync-up if any client's trigger fired. Returns a deviation if the
/// sync-up failed for every user.
fn maybe_sync(
    clients: &mut ClientSet,
    report: &mut RunReport,
    busy_until: &mut u64,
    tracer: &Tracer,
) -> Option<Deviation> {
    let wants = match clients {
        ClientSet::One(cs) => cs.iter().any(|c| c.wants_sync()),
        ClientSet::Two(cs) => cs.iter().any(|c| c.wants_sync()),
        _ => false,
    };
    if !wants {
        return None;
    }
    force_sync(clients, report, busy_until, tracer)
}

/// Unconditionally performs a sync-up round for protocols that have one.
fn force_sync(
    clients: &mut ClientSet,
    report: &mut RunReport,
    busy_until: &mut u64,
    tracer: &Tracer,
) -> Option<Deviation> {
    if matches!(
        clients,
        ClientSet::One(_) | ClientSet::Two(_) | ClientSet::NaiveXor(_)
    ) {
        let t = *busy_until;
        tracer.emit(|| Event::new(t, EventKind::SyncTriggered, NO_ACTOR));
    }
    let ok = match clients {
        ClientSet::One(cs) => {
            let shares: Vec<SyncShare> = cs.iter().map(|c| c.sync_share()).collect();
            report.sync_rounds += 1;
            report.sync_bytes += tcvs_core::sync::sync_traffic_bytes(&shares) as u64;
            *busy_until += 1;
            let ok = cs.iter().any(|c| c.sync_succeeds(&shares));
            for c in cs.iter_mut() {
                c.sync_done();
            }
            ok
        }
        ClientSet::Two(cs) => {
            let shares: Vec<SyncShare> = cs.iter().map(|c| c.sync_share()).collect();
            report.sync_rounds += 1;
            report.sync_bytes += tcvs_core::sync::sync_traffic_bytes(&shares) as u64;
            *busy_until += 1;
            let ok = cs.iter().any(|c| c.sync_succeeds(&shares));
            for c in cs.iter_mut() {
                c.sync_done();
            }
            ok
        }
        ClientSet::NaiveXor(cs) => {
            let shares: Vec<SyncShare> = cs.iter().map(|c| c.sync_share()).collect();
            report.sync_rounds += 1;
            report.sync_bytes += tcvs_core::sync::sync_traffic_bytes(&shares) as u64;
            *busy_until += 1;
            cs.iter().any(|c| c.sync_succeeds(&shares))
        }
        _ => true,
    };
    if ok {
        None
    } else {
        Some(Deviation::SyncFailed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcvs_core::HonestServer;
    use tcvs_workload::{generate, OpMix, WorkloadSpec};

    fn spec(protocol: ProtocolKind) -> SimSpec {
        SimSpec {
            protocol,
            config: ProtocolConfig {
                order: 8,
                k: 8,
                epoch_len: 50,
            },
            n_users: 3,
            mss_height: 7,
            setup_seed: [1; 32],
            final_sync: true,
            faults: tcvs_core::FaultPlan::none(),
        }
    }

    fn trace() -> Trace {
        generate(&WorkloadSpec {
            n_users: 3,
            n_ops: 60,
            key_space: 32,
            mix: OpMix::read_heavy(),
            ..WorkloadSpec::default()
        })
    }

    #[test]
    fn honest_runs_complete_undetected_for_all_protocols() {
        for p in [
            ProtocolKind::Trusted,
            ProtocolKind::One,
            ProtocolKind::Two,
            ProtocolKind::NaiveXor,
        ] {
            let s = spec(p);
            let mut server = HonestServer::new(&s.config);
            let r = simulate(&s, &mut server, &trace(), None);
            assert!(!r.detected(), "{p:?}: {:?}", r.detection);
            assert_eq!(r.ops_executed, 60, "{p:?}");
        }
    }

    #[test]
    fn protocol1_costs_more_messages_and_rounds_than_protocol2() {
        let t = trace();
        let s1 = spec(ProtocolKind::One);
        let mut sv1 = HonestServer::new(&s1.config);
        let r1 = simulate(&s1, &mut sv1, &t, None);
        let s2 = spec(ProtocolKind::Two);
        let mut sv2 = HonestServer::new(&s2.config);
        let r2 = simulate(&s2, &mut sv2, &t, None);
        assert!(r1.msgs_per_op() > r2.msgs_per_op());
        assert!(r1.makespan_rounds > r2.makespan_rounds);
        assert!(
            r1.bytes_per_op() > r2.bytes_per_op(),
            "signatures cost bytes"
        );
    }

    #[test]
    fn trusted_baseline_is_cheapest() {
        let t = trace();
        let st = spec(ProtocolKind::Trusted);
        let mut sv = HonestServer::new(&st.config);
        let rt = simulate(&st, &mut sv, &t, None);
        let s2 = spec(ProtocolKind::Two);
        let mut sv2 = HonestServer::new(&s2.config);
        let r2 = simulate(&s2, &mut sv2, &t, None);
        assert!(rt.msgs_per_op() <= r2.msgs_per_op());
        assert_eq!(rt.sync_rounds, 0);
        assert!(r2.sync_rounds >= 1);
    }

    #[test]
    fn protocol3_runs_epoch_workload_cleanly() {
        let s = SimSpec {
            protocol: ProtocolKind::Three,
            config: ProtocolConfig {
                order: 8,
                k: 8,
                epoch_len: 24,
            },
            n_users: 3,
            mss_height: 7,
            setup_seed: [2; 32],
            final_sync: true,
            faults: tcvs_core::FaultPlan::none(),
        };
        let t = tcvs_workload::generate_epoch_workload(
            3,
            6,
            24,
            2,
            &WorkloadSpec {
                key_space: 16,
                ..WorkloadSpec::default()
            },
        );
        let mut server = HonestServer::new(&s.config);
        let r = simulate(&s, &mut server, &t, None);
        assert!(!r.detected(), "{:?}", r.detection);
        assert!(r.audits >= 3, "audits ran: {}", r.audits);
    }

    #[test]
    fn fork_attack_detected_by_protocol2_sync() {
        use tcvs_core::adversary::{ForkServer, Trigger};
        let s = spec(ProtocolKind::Two);
        let t = trace();
        let mut server = ForkServer::new(&s.config, Trigger::AtCtr(20), &[0]);
        let r = simulate(&s, &mut server, &t, Some(20));
        assert!(r.detected());
        let ev = r.detection.unwrap();
        assert_eq!(ev.deviation, Deviation::SyncFailed);
        // k-bounded: no user did more than k ops after the violation
        // (sync triggers as soon as the first user reaches k).
        assert!(ev.max_user_ops_after_violation.unwrap() <= s.config.k + 1);
    }

    #[test]
    fn fork_attack_not_detected_without_sync_by_per_op_checks() {
        use tcvs_core::adversary::{ForkServer, Trigger};
        // Protocol II with k larger than the trace: sync never fires before
        // the end-of-trace sync. Per-op checks alone never catch the fork.
        let mut s = spec(ProtocolKind::Two);
        s.config.k = 10_000;
        let t = trace();
        let mut server = ForkServer::new(&s.config, Trigger::AtCtr(20), &[0]);
        let r = simulate(&s, &mut server, &t, Some(20));
        // The final forced sync still catches it — but only at the end.
        let ev = r.detection.expect("end-of-trace sync catches the fork");
        assert_eq!(ev.op_index, 60, "not before the trace ended");
    }

    #[test]
    fn benign_fault_storm_never_raises_an_alarm() {
        use tcvs_core::FaultRates;
        for p in [
            ProtocolKind::Trusted,
            ProtocolKind::One,
            ProtocolKind::Two,
            ProtocolKind::NaiveXor,
        ] {
            let s = spec(p).with_faults(FaultPlan::seeded(0xacce, 60, &FaultRates::heavy()));
            let mut server = HonestServer::new(&s.config);
            let r = simulate(&s, &mut server, &trace(), None);
            assert!(
                !r.detected(),
                "{p:?}: benign faults alarmed: {:?}",
                r.detection
            );
            assert_eq!(r.ops_executed, 60, "{p:?}: every op still executes");
            assert!(r.faults.total() > 0, "{p:?}: faults were injected");
        }
    }

    #[test]
    fn faults_cost_rounds_and_messages_but_nothing_else() {
        let t = trace();
        let clean = spec(ProtocolKind::Two);
        let mut sv = HonestServer::new(&clean.config);
        let r_clean = simulate(&clean, &mut sv, &t, None);
        let faulty = spec(ProtocolKind::Two).with_faults(FaultPlan::seeded(
            7,
            60,
            &tcvs_core::FaultRates::heavy(),
        ));
        let mut sv = HonestServer::new(&faulty.config);
        let r_faulty = simulate(&faulty, &mut sv, &t, None);
        assert!(r_faulty.makespan_rounds > r_clean.makespan_rounds);
        assert!(r_faulty.msgs > r_clean.msgs);
        assert_eq!(r_faulty.ops_executed, r_clean.ops_executed);
        assert_eq!(r_faulty.sync_rounds, r_clean.sync_rounds);
    }

    #[test]
    fn protocol3_epochs_survive_benign_faults() {
        use tcvs_core::{FaultRates, HonestServer};
        let mut s = spec(ProtocolKind::Three);
        s.config.epoch_len = 24;
        s.faults = FaultPlan::seeded(0xe9, 144, &FaultRates::light());
        let t = tcvs_workload::generate_epoch_workload(
            3,
            6,
            24,
            2,
            &WorkloadSpec {
                key_space: 16,
                ..WorkloadSpec::default()
            },
        );
        let mut server = HonestServer::new(&s.config);
        let r = simulate(&s, &mut server, &t, None);
        assert!(!r.detected(), "{:?}", r.detection);
        assert!(r.audits >= 1, "audits still ran: {}", r.audits);
    }

    #[test]
    fn fork_attack_still_k_bounded_under_faults() {
        use tcvs_core::adversary::{ForkServer, Trigger};
        use tcvs_core::FaultRates;
        let s = spec(ProtocolKind::Two).with_faults(FaultPlan::seeded(
            0xdead,
            60,
            &FaultRates::light(),
        ));
        let t = trace();
        let mut server = ForkServer::new(&s.config, Trigger::AtCtr(20), &[0]);
        let r = simulate(&s, &mut server, &t, Some(20));
        assert!(r.detected(), "faults must not mask the fork");
        let ev = r.detection.unwrap();
        assert_eq!(ev.deviation, Deviation::SyncFailed);
        assert!(ev.max_user_ops_after_violation.unwrap() <= s.config.k + 1);
    }

    #[test]
    fn scheduled_crash_restart_preserves_honest_state() {
        let mut plan = FaultPlan::none();
        plan.schedule(10, FaultKind::CrashRestart)
            .schedule(30, FaultKind::CrashRestart);
        let s = spec(ProtocolKind::Two).with_faults(plan);
        let mut server = HonestServer::new(&s.config);
        let r = simulate(&s, &mut server, &trace(), None);
        assert!(
            !r.detected(),
            "restart from persisted state: {:?}",
            r.detection
        );
        assert_eq!(r.faults.crashes, 2);
    }
}
