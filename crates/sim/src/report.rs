//! Run reports: what a simulated execution produced and what it cost.

use tcvs_core::{Deviation, FaultCounts, ProtocolKind, UserId};

use crate::latency::DetectionLatency;

/// The moment a user first *knew* the server had deviated (§2.2.1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DetectionEvent {
    /// Global index of the operation (or sync/audit) at which detection
    /// happened.
    pub op_index: u64,
    /// Round at which detection happened.
    pub round: u64,
    /// The user who detected.
    pub by_user: UserId,
    /// The evidence.
    pub deviation: Deviation,
    /// Operations executed system-wide after the violation (if the
    /// violation point was known to the harness).
    pub ops_after_violation: Option<u64>,
    /// Maximum operations any single user completed after the violation —
    /// the paper's `k`-bounded detection metric.
    pub max_user_ops_after_violation: Option<u64>,
}

/// Outcome and cost accounting of one simulated run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Protocol that was run.
    pub protocol: ProtocolKind,
    /// Operations executed (may be fewer than the trace if detection
    /// stopped the run).
    pub ops_executed: u64,
    /// Round at which the run finished (server busy time included): the
    /// makespan in rounds.
    pub makespan_rounds: u64,
    /// Client↔server messages.
    pub msgs: u64,
    /// Client↔server bytes (wire estimates).
    pub bytes: u64,
    /// Broadcast sync-up rounds performed.
    pub sync_rounds: u64,
    /// Broadcast traffic in bytes.
    pub sync_bytes: u64,
    /// Protocol III audits performed.
    pub audits: u64,
    /// Benign faults actually injected during the run (a prefix of the
    /// spec's plan if detection stopped the run early).
    pub faults: FaultCounts,
    /// First detection, if any.
    pub detection: Option<DetectionEvent>,
    /// Measured deviation → detection latency (set when the harness knew
    /// the violation point and the run detected at or after it).
    pub detection_latency: Option<DetectionLatency>,
}

impl RunReport {
    /// True iff the run detected a deviation.
    pub fn detected(&self) -> bool {
        self.detection.is_some()
    }

    /// Average client↔server bytes per executed operation.
    pub fn bytes_per_op(&self) -> f64 {
        if self.ops_executed == 0 {
            0.0
        } else {
            self.bytes as f64 / self.ops_executed as f64
        }
    }

    /// Average client↔server messages per executed operation.
    pub fn msgs_per_op(&self) -> f64 {
        if self.ops_executed == 0 {
            0.0
        } else {
            self.msgs as f64 / self.ops_executed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_op_metrics_handle_zero_ops() {
        let r = RunReport {
            protocol: ProtocolKind::Two,
            ops_executed: 0,
            makespan_rounds: 0,
            msgs: 0,
            bytes: 0,
            sync_rounds: 0,
            sync_bytes: 0,
            audits: 0,
            faults: FaultCounts::default(),
            detection: None,
            detection_latency: None,
        };
        assert_eq!(r.bytes_per_op(), 0.0);
        assert_eq!(r.msgs_per_op(), 0.0);
        assert!(!r.detected());
    }

    #[test]
    fn per_op_metrics_divide() {
        let r = RunReport {
            protocol: ProtocolKind::One,
            ops_executed: 10,
            makespan_rounds: 20,
            msgs: 30,
            bytes: 1000,
            sync_rounds: 1,
            sync_bytes: 64,
            audits: 0,
            faults: FaultCounts::default(),
            detection: None,
            detection_latency: None,
        };
        assert_eq!(r.msgs_per_op(), 3.0);
        assert_eq!(r.bytes_per_op(), 100.0);
    }
}
