//! Dedicated runner for the token-ring strawman (§2.2.3), used by
//! experiment E7 to measure its workload-preservation violation.

use tcvs_core::strawman::{null_op, TokenRingClient};
use tcvs_core::{HonestServer, ProtocolConfig, ServerApi};
use tcvs_crypto::setup_users;
use tcvs_merkle::{u64_key, Op};

use crate::runner::initial_root;

/// Outcome of a ring run focused on one bursty user.
#[derive(Clone, Debug)]
pub struct RingReport {
    /// Slots (global rounds) at which user 0's real operations executed.
    pub burst_exec_slots: Vec<u64>,
    /// Total slots driven.
    pub slots: u64,
    /// Signed null records written by idle users.
    pub null_records: u64,
}

/// Runs a token ring of `n_users` where user 0 wants to perform `burst`
/// operations back-to-back starting at slot 0, and everyone else is idle
/// (writing signed nulls on their turns). Returns when user 0's burst has
/// drained.
///
/// The §2.2.3 pathology in numbers: user 0's i-th burst op executes at slot
/// `i · n_users`, so the latency between two of its consecutive ops is
/// `n_users` slots — Θ(n) where Protocols I/II are Θ(1).
pub fn run_burst_ring(n_users: u32, burst: u64, config: &ProtocolConfig) -> RingReport {
    let (rings, registry) = setup_users([3u8; 32], n_users, 6);
    let mut clients: Vec<TokenRingClient> = rings
        .into_iter()
        .map(|r| TokenRingClient::new(r, registry.clone(), n_users, *config))
        .collect();
    let mut server = HonestServer::new(config);
    let root0 = initial_root(config);
    let init = clients[0].sign_initial(&root0).expect("fresh key");
    server.deposit_signature(0, init);

    let mut report = RingReport {
        burst_exec_slots: Vec::new(),
        slots: 0,
        null_records: 0,
    };
    let mut remaining = burst;
    let mut slot = 0u64;
    while remaining > 0 {
        let u = (slot % n_users as u64) as usize;
        let is_burst_op = u == 0;
        let op: Op = if is_burst_op {
            Op::Put(u64_key(slot), vec![slot as u8])
        } else {
            report.null_records += 1;
            null_op()
        };
        let resp = server.handle_op(u as u32, &op, slot);
        let (_result, deposit) = clients[u]
            .handle_response(&op, !is_burst_op, &resp)
            .expect("honest ring");
        server.deposit_signature(u as u32, deposit);
        if is_burst_op {
            report.burst_exec_slots.push(slot);
            remaining -= 1;
        }
        slot += 1;
    }
    report.slots = slot;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ProtocolConfig {
        ProtocolConfig {
            order: 8,
            k: 8,
            epoch_len: 100,
        }
    }

    #[test]
    fn burst_latency_is_linear_in_ring_size() {
        for n in [2u32, 4, 8] {
            let r = run_burst_ring(n, 3, &config());
            assert_eq!(r.burst_exec_slots, vec![0, n as u64, 2 * n as u64]);
            // Between consecutive burst ops, n-1 null records are written.
            assert_eq!(r.null_records, 2 * (n as u64 - 1));
        }
    }

    #[test]
    fn single_user_ring_has_no_wait() {
        let r = run_burst_ring(1, 5, &config());
        assert_eq!(r.burst_exec_slots, vec![0, 1, 2, 3, 4]);
        assert_eq!(r.null_records, 0);
    }
}
