//! The deviation oracle: Definition 2.1, executable.
//!
//! A run of the untrusted system *deviates* if its query/response actions
//! cannot be produced by any run of the trusted system with the same
//! operation order. Since the trusted server executes operations serially
//! in arrival order, the oracle simply replays the trace on a pristine
//! database and compares every response.
//!
//! This is ground truth that is *independent of the protocols*: experiments
//! use it to separate "the adversary's switch flipped" (the trigger) from
//! "a deviation became observable" (some response differed). A drop whose
//! key is never read again, or a fork whose minority branch stays silent,
//! produces no observable deviation in the finite prefix — and the
//! protocols, correctly, have nothing to detect yet.

use tcvs_core::{
    EvidenceBuilder, EvidenceBundle, EvidenceKind, OpResult, ProtocolConfig, ServerApi,
    TriggerInfo, UserId,
};
use tcvs_merkle::{apply_op, MerkleTree};
use tcvs_workload::Trace;

/// The oracle's verdict for one run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OracleVerdict {
    /// Every response matched the trusted execution: no observable
    /// deviation in this prefix.
    NoObservableDeviation,
    /// The first response that no trusted run could have produced.
    Deviated {
        /// Global operation index of the first divergent response.
        op_index: u64,
        /// The user who received it.
        user: UserId,
        /// What the untrusted server answered.
        got: OpResult,
        /// What the trusted server answers at that point.
        expected: OpResult,
    },
}

impl OracleVerdict {
    /// True iff a deviation was observable.
    pub fn deviated(&self) -> bool {
        matches!(self, OracleVerdict::Deviated { .. })
    }

    /// The first divergence index, if any.
    pub fn first_divergence(&self) -> Option<u64> {
        match self {
            OracleVerdict::Deviated { op_index, .. } => Some(*op_index),
            OracleVerdict::NoObservableDeviation => None,
        }
    }
}

/// Runs `trace` against `server` while executing the same operations on a
/// pristine trusted database, and reports the first response divergence.
///
/// The server under test must be fresh (its counter at zero); rounds are
/// fed from the trace as in [`crate::simulate`].
pub fn run_with_oracle(
    server: &mut dyn ServerApi,
    config: &ProtocolConfig,
    trace: &Trace,
) -> OracleVerdict {
    let mut reference = MerkleTree::with_order(config.order);
    for (idx, sop) in trace.ops().iter().enumerate() {
        let resp = server.handle_op(sop.user, &sop.op, sop.round);
        let expected = apply_op(&mut reference, &sop.op).expect("full tree");
        if resp.result != expected {
            return OracleVerdict::Deviated {
                op_index: idx as u64,
                user: sop.user,
                got: resp.result,
                expected,
            };
        }
    }
    OracleVerdict::NoObservableDeviation
}

/// [`run_with_oracle`] that additionally seals a `Deviated` verdict into a
/// portable [`EvidenceBundle`] (kind [`EvidenceKind::OracleDeviation`]):
/// the divergence point, the receiving user, and the got/expected pair in
/// the trigger detail. `NoObservableDeviation` returns no bundle.
pub fn run_with_oracle_evidence(
    server: &mut dyn ServerApi,
    config: &ProtocolConfig,
    trace: &Trace,
    seed: u64,
) -> (OracleVerdict, Option<EvidenceBundle>) {
    let verdict = run_with_oracle(server, config, trace);
    let bundle = match &verdict {
        OracleVerdict::NoObservableDeviation => None,
        OracleVerdict::Deviated {
            op_index,
            user,
            got,
            expected,
        } => Some(
            EvidenceBuilder::new(EvidenceKind::OracleDeviation, seed, "oracle")
                .captured_at(*op_index)
                .description(format!(
                    "trusted-replay oracle diverged at op {op_index} for user {user}"
                ))
                .trigger(TriggerInfo {
                    deviation: "oracle-divergence".to_string(),
                    detail: format!("got {got:?}, trusted run answers {expected:?}"),
                    user: Some(*user),
                    shard: None,
                    ctr: Some(*op_index),
                })
                .build(),
        ),
    };
    (verdict, bundle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcvs_core::adversary::{DropServer, ForkServer, LieServer, TamperServer, Trigger};
    use tcvs_core::{HonestServer, Op};
    use tcvs_merkle::u64_key;
    use tcvs_workload::{generate, OpMix, ScheduledOp, WorkloadSpec};

    fn config() -> ProtocolConfig {
        ProtocolConfig {
            order: 8,
            k: 8,
            epoch_len: 16,
        }
    }

    #[test]
    fn honest_server_never_observably_deviates() {
        let cfg = config();
        for seed in 0..5 {
            let t = generate(&WorkloadSpec {
                n_users: 3,
                n_ops: 120,
                key_space: 24,
                mix: OpMix::write_heavy(),
                seed,
                ..WorkloadSpec::default()
            });
            let mut server = HonestServer::new(&cfg);
            assert_eq!(
                run_with_oracle(&mut server, &cfg, &t),
                OracleVerdict::NoObservableDeviation,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn lie_is_observable_at_the_lie() {
        let cfg = config();
        let t = generate(&WorkloadSpec {
            n_users: 2,
            n_ops: 30,
            seed: 1,
            ..WorkloadSpec::default()
        });
        let mut server = LieServer::new(&cfg, Trigger::AtCtr(7));
        let v = run_with_oracle(&mut server, &cfg, &t);
        assert_eq!(v.first_divergence(), Some(7));
    }

    #[test]
    fn tamper_becomes_observable_at_the_first_read_of_the_backdoor_region() {
        let cfg = config();
        // Read the backdoor key explicitly after the tamper.
        let t = Trace::new(vec![
            ScheduledOp {
                round: 0,
                user: 0,
                op: Op::Put(u64_key(1), vec![1]),
            },
            ScheduledOp {
                round: 1,
                user: 0,
                op: Op::Get(b"backdoor".to_vec()),
            },
        ]);
        let mut server = TamperServer::new(&cfg, Trigger::AtCtr(1));
        let v = run_with_oracle(&mut server, &cfg, &t);
        assert_eq!(v.first_divergence(), Some(1));
    }

    #[test]
    fn unobserved_drop_is_not_yet_a_deviation() {
        // The drop victim's key is never read again: Definition 2.1 has
        // nothing to point at in this prefix — and that is exactly why the
        // *protocols*' detection bounds are stated over FUTURE operations.
        let cfg = config();
        let t = Trace::new(vec![
            ScheduledOp {
                round: 0,
                user: 0,
                op: Op::Put(u64_key(1), vec![1]),
            },
            ScheduledOp {
                round: 1,
                user: 1,
                op: Op::Put(u64_key(2), vec![2]),
            }, // dropped
            ScheduledOp {
                round: 2,
                user: 0,
                op: Op::Get(u64_key(1)),
            }, // unrelated
        ]);
        let mut server = DropServer::new(&cfg, Trigger::AtCtr(1));
        assert_eq!(
            run_with_oracle(&mut server, &cfg, &t),
            OracleVerdict::NoObservableDeviation
        );
    }

    #[test]
    fn observed_drop_is_a_deviation() {
        let cfg = config();
        let t = Trace::new(vec![
            ScheduledOp {
                round: 0,
                user: 0,
                op: Op::Put(u64_key(1), vec![1]),
            },
            ScheduledOp {
                round: 1,
                user: 1,
                op: Op::Put(u64_key(2), vec![2]),
            }, // dropped
            ScheduledOp {
                round: 2,
                user: 0,
                op: Op::Get(u64_key(2)),
            }, // reads it!
        ]);
        let mut server = DropServer::new(&cfg, Trigger::AtCtr(1));
        let v = run_with_oracle(&mut server, &cfg, &t);
        assert_eq!(v.first_divergence(), Some(2));
        if let OracleVerdict::Deviated { got, expected, .. } = v {
            assert_eq!(got, OpResult::Value(None));
            assert_eq!(expected, OpResult::Value(Some(vec![2])));
        }
    }

    #[test]
    fn fork_observable_once_branches_read_each_others_writes() {
        let cfg = config();
        let t = Trace::new(vec![
            ScheduledOp {
                round: 0,
                user: 0,
                op: Op::Put(u64_key(1), vec![1]),
            },
            // Fork at ctr 1: user 0 on branch A, user 1 on branch B.
            ScheduledOp {
                round: 1,
                user: 0,
                op: Op::Put(u64_key(5), vec![5]),
            }, // A only
            ScheduledOp {
                round: 2,
                user: 1,
                op: Op::Get(u64_key(5)),
            }, // B: missing!
        ]);
        let mut server = ForkServer::new(&cfg, Trigger::AtCtr(1), &[0]);
        let v = run_with_oracle(&mut server, &cfg, &t);
        assert_eq!(v.first_divergence(), Some(2));
    }
}
