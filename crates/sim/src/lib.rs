//! # tcvs-sim
//!
//! A deterministic, round-based executable version of the paper's §2.1
//! system model: users, an (untrusted) server, and an environment clock,
//! with one query action per round and single-round message delivery.
//!
//! [`simulate`] drives a workload trace through any [`tcvs_core::ServerApi`]
//! — the honest server or any adversary — with the clients of the chosen
//! protocol, and reports costs (messages, bytes, rounds, sync traffic) and
//! the first [`DetectionEvent`] with the paper's detection-delay metrics.
//!
//! ```
//! use tcvs_core::{HonestServer, ProtocolKind};
//! use tcvs_sim::{simulate, SimSpec};
//! use tcvs_workload::{generate, WorkloadSpec};
//!
//! let spec = SimSpec::new(ProtocolKind::Two, 3);
//! let mut server = HonestServer::new(&spec.config);
//! let trace = generate(&WorkloadSpec { n_users: 3, n_ops: 50, ..Default::default() });
//! let report = simulate(&spec, &mut server, &trace, None);
//! assert!(!report.detected());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod latency;
mod oracle;
mod report;
mod runner;
pub mod token_ring;

pub use latency::{theoretical_bound, DetectionLatency, LatencyBound};
pub use oracle::{run_with_oracle, run_with_oracle_evidence, OracleVerdict};
pub use report::{DetectionEvent, RunReport};
pub use runner::{
    initial_root, op_request_size, simulate, simulate_observed, simulate_with_evidence,
    simulate_with_flight_recorder, SimSpec,
};
