//! Detection-latency accounting: how long the system was exposed between
//! the server's first deviation and the first alarm, measured against the
//! paper's theoretical bounds.
//!
//! * Protocols I and II detect within `k` operations *of any single user*
//!   (Theorems 4.1 / 4.2): once some user completes `k` post-violation
//!   operations a sync-up fires and fails. The sync-up itself runs after
//!   the `k`-th operation, so a run may observe up to `k + 1` user ops.
//! * Protocol III detects within **two epochs** (Theorem 4.3): the epoch
//!   of the violation is audited in epoch `e + 2`.
//! * The trusted baseline and the strawmen carry no bound.
//!
//! The harness knows ground truth — which delivery index first deviated —
//! so [`crate::simulate_observed`] can pair the injected-deviation
//! timestamp with the first [`tcvs_obs::EventKind::Detection`] event and
//! report the measured latency in ops, rounds, and (for Protocol III)
//! epochs.

use tcvs_core::{ProtocolConfig, ProtocolKind};

/// The paper's theoretical detection bound for a protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LatencyBound {
    /// Detection within this many operations by any single user
    /// (Theorems 4.1 / 4.2: `k`).
    UserOps(u64),
    /// Detection within this many epochs (Theorem 4.3: 2).
    Epochs(u64),
    /// No detection bound (trusted baseline, strawmen).
    Unbounded,
}

impl LatencyBound {
    /// Stable text rendering for reports ("k=16 user-ops", "2 epochs", "-").
    pub fn render(&self) -> String {
        match self {
            LatencyBound::UserOps(k) => format!("k={k} user-ops"),
            LatencyBound::Epochs(e) => format!("{e} epochs"),
            LatencyBound::Unbounded => "-".to_string(),
        }
    }
}

/// The theoretical bound for `protocol` under `config`.
pub fn theoretical_bound(protocol: ProtocolKind, config: &ProtocolConfig) -> LatencyBound {
    match protocol {
        ProtocolKind::One | ProtocolKind::Two => LatencyBound::UserOps(config.k),
        ProtocolKind::Three => LatencyBound::Epochs(2),
        ProtocolKind::Trusted | ProtocolKind::TokenRing | ProtocolKind::NaiveXor => {
            LatencyBound::Unbounded
        }
    }
}

/// Measured first-deviation → first-alarm latency of one run.
///
/// All fields use logical time (delivery indices, rounds, epochs) — never
/// wall-clock — so seeded runs report identical latencies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DetectionLatency {
    /// Delivery index at which the server first deviated (ground truth).
    pub deviation_op: u64,
    /// Delivery index at which a user first detected.
    pub detection_op: u64,
    /// System-wide operations executed between the two.
    pub ops: u64,
    /// Rounds elapsed between the two.
    pub rounds: u64,
    /// Maximum operations any single user completed after the violation —
    /// the quantity Theorems 4.1 / 4.2 bound by `k`.
    pub max_user_ops: Option<u64>,
    /// Epochs elapsed between the two (Protocol III runs only).
    pub epochs: Option<u64>,
    /// The theoretical bound this run is measured against.
    pub bound: LatencyBound,
}

impl DetectionLatency {
    /// Whether the measured latency respects the theoretical bound.
    /// `None` when the protocol has no bound (or the bounded quantity was
    /// not measured).
    pub fn within_bound(&self) -> Option<bool> {
        match self.bound {
            LatencyBound::UserOps(k) => self.max_user_ops.map(|m| m <= k + 1),
            LatencyBound::Epochs(e) => self.epochs.map(|d| d <= e),
            LatencyBound::Unbounded => None,
        }
    }

    /// One stable report line: measured latency vs. the bound.
    pub fn render(&self) -> String {
        let epochs = match self.epochs {
            Some(e) => format!(" epochs={e}"),
            None => String::new(),
        };
        let user = match self.max_user_ops {
            Some(m) => format!(" max_user_ops={m}"),
            None => String::new(),
        };
        let verdict = match self.within_bound() {
            Some(true) => " within-bound",
            Some(false) => " BOUND-EXCEEDED",
            None => "",
        };
        format!(
            "deviation@{} detected@{} ops={} rounds={}{epochs}{user} bound[{}]{verdict}",
            self.deviation_op,
            self.detection_op,
            self.ops,
            self.rounds,
            self.bound.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(k: u64) -> ProtocolConfig {
        ProtocolConfig {
            order: 8,
            k,
            epoch_len: 50,
        }
    }

    #[test]
    fn bounds_follow_the_theorems() {
        let c = config(16);
        assert_eq!(
            theoretical_bound(ProtocolKind::One, &c),
            LatencyBound::UserOps(16)
        );
        assert_eq!(
            theoretical_bound(ProtocolKind::Two, &c),
            LatencyBound::UserOps(16)
        );
        assert_eq!(
            theoretical_bound(ProtocolKind::Three, &c),
            LatencyBound::Epochs(2)
        );
        assert_eq!(
            theoretical_bound(ProtocolKind::Trusted, &c),
            LatencyBound::Unbounded
        );
    }

    #[test]
    fn within_bound_user_ops() {
        let mut lat = DetectionLatency {
            deviation_op: 10,
            detection_op: 30,
            ops: 20,
            rounds: 25,
            max_user_ops: Some(8),
            epochs: None,
            bound: LatencyBound::UserOps(8),
        };
        assert_eq!(lat.within_bound(), Some(true));
        lat.max_user_ops = Some(9); // the sync-up round after the k-th op
        assert_eq!(lat.within_bound(), Some(true));
        lat.max_user_ops = Some(10);
        assert_eq!(lat.within_bound(), Some(false));
        lat.max_user_ops = None;
        assert_eq!(lat.within_bound(), None);
    }

    #[test]
    fn within_bound_epochs() {
        let lat = DetectionLatency {
            deviation_op: 0,
            detection_op: 40,
            ops: 40,
            rounds: 90,
            max_user_ops: None,
            epochs: Some(2),
            bound: LatencyBound::Epochs(2),
        };
        assert_eq!(lat.within_bound(), Some(true));
        let late = DetectionLatency {
            epochs: Some(3),
            ..lat
        };
        assert_eq!(late.within_bound(), Some(false));
    }

    #[test]
    fn render_is_stable() {
        let lat = DetectionLatency {
            deviation_op: 20,
            detection_op: 27,
            ops: 7,
            rounds: 12,
            max_user_ops: Some(3),
            epochs: None,
            bound: LatencyBound::UserOps(8),
        };
        assert_eq!(
            lat.render(),
            "deviation@20 detected@27 ops=7 rounds=12 max_user_ops=3 bound[k=8 user-ops] within-bound"
        );
    }
}
