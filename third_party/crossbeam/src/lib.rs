//! Offline stub for the `crossbeam` crate: multi-producer channels built on
//! `std::sync::mpsc`. Only the `channel` module surface used by this
//! workspace is provided. Semantics match crossbeam for that surface:
//! cloneable senders, `recv`/`recv_timeout`/`try_recv`, disconnect errors
//! when the other side is gone.

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, TryRecvError};

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Sender::try_send`].
    #[derive(PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// The receiver is gone.
        Disconnected(T),
    }

    impl<T> std::fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(match self {
                TrySendError::Full(_) => "Full(..)",
                TrySendError::Disconnected(_) => "Disconnected(..)",
            })
        }
    }

    enum Tx<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Self {
            match self {
                Tx::Unbounded(s) => Tx::Unbounded(s.clone()),
                Tx::Bounded(s) => Tx::Bounded(s.clone()),
            }
        }
    }

    /// The sending half of a channel. Cloneable.
    pub struct Sender<T>(Tx<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking if a bounded channel is full.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Tx::Unbounded(s) => s.send(msg).map_err(|mpsc::SendError(v)| SendError(v)),
                Tx::Bounded(s) => s.send(msg).map_err(|mpsc::SendError(v)| SendError(v)),
            }
        }

        /// Sends without blocking; fails if full or disconnected.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            match &self.0 {
                Tx::Unbounded(s) => s
                    .send(msg)
                    .map_err(|mpsc::SendError(v)| TrySendError::Disconnected(v)),
                Tx::Bounded(s) => s.try_send(msg).map_err(|e| match e {
                    mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                    mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
                }),
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Blocks up to `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Iterates until disconnect.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Tx::Unbounded(tx)), Receiver(rx))
    }

    /// Creates a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Tx::Bounded(tx)), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_round_trip() {
            let (tx, rx) = unbounded();
            tx.send(1u32).unwrap();
            let tx2 = tx.clone();
            tx2.send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
        }

        #[test]
        fn disconnect_surfaces() {
            let (tx, rx) = bounded::<u8>(1);
            drop(rx);
            assert!(tx.send(1).is_err());
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert!(rx.recv().is_err());
        }

        #[test]
        fn bounded_try_send_full() {
            let (tx, _rx) = bounded::<u8>(1);
            tx.try_send(1).unwrap();
            assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
        }
    }
}
