//! Offline stub for `criterion` 0.5: the same registration API
//! (`criterion_group!` / `criterion_main!` / groups / `bench_with_input`),
//! but each benchmark routine is smoke-run a handful of times and a single
//! rough ns/iter line is printed. No statistics, no reports — the point is
//! that `cargo bench` compiles and every bench body executes.

use std::fmt::Display;
use std::time::Instant;

/// How many iterations the stub runs per benchmark (enough to execute the
/// routine for real without the full statistical sweep).
const STUB_ITERS: u32 = 3;

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declared throughput of a benchmark (accepted, ignored by the stub).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A two-part id: `function_name/parameter`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Passed to benchmark closures; `iter` runs the routine.
pub struct Bencher {
    _private: (),
}

impl Bencher {
    /// Runs `routine` a few times and reports a rough per-iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..STUB_ITERS {
            black_box(routine());
        }
        let per_iter = start.elapsed().as_nanos() / STUB_ITERS as u128;
        println!("    ~{per_iter} ns/iter (stub, {STUB_ITERS} iters)");
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    println!("bench {label}");
    let mut b = Bencher { _private: () };
    f(&mut b);
}

/// The benchmark manager.
pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { _private: () }
    }
}

impl Criterion {
    /// Sets the sample count (ignored by the stub).
    pub fn sample_size(self, _n: usize) -> Criterion {
        self
    }

    /// Registers and smoke-runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Criterion {
        run_bench(id, f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: group_name.into(),
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing an id prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for the group (ignored by the stub).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declares throughput for subsequent benches (ignored by the stub).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Smoke-runs a benchmark that takes an input by reference.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_bench(&label, |b| f(b, input));
        self
    }

    /// Smoke-runs a benchmark without an input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a group function that runs each target benchmark.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("stub/add", |b| b.iter(|| 1u64 + 1));
        let mut g = c.benchmark_group("stub/group");
        g.sample_size(10);
        g.throughput(Throughput::Bytes(8));
        g.bench_with_input(BenchmarkId::from_parameter(42), &42u64, |b, &n| {
            b.iter(|| n * 2);
        });
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(5);
        targets = sample_bench
    }

    #[test]
    fn group_runs_every_target() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("p2").id, "p2");
    }
}
