//! Offline stub for `proptest` 1.x: the strategy combinators and macros this
//! workspace uses, running each property over a fixed number of seeded random
//! cases. No shrinking and no failure persistence — a failing case panics with
//! the `prop_assert!` message and the deterministic per-test seed makes the
//! failure reproducible by rerunning the test.

use rand::rngs::StdRng;

pub mod strategy {
    //! The `Strategy` trait and basic combinators.

    use super::StdRng;
    use rand::Rng;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut StdRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut StdRng) -> S::Value {
            self.generate(rng)
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// A uniform choice among boxed alternatives (what `prop_oneof!` builds).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// Builds a union over non-empty `alternatives`.
        pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!alternatives.is_empty(), "prop_oneof! needs an alternative");
            Union(alternatives)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            let pick = rng.gen_range(0..self.0.len());
            self.0[pick].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }
}

pub mod arbitrary {
    //! `any::<T>()` and the `Arbitrary` trait behind it.

    use super::strategy::Strategy;
    use super::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.gen()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut StdRng) -> [T; N] {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut StdRng) -> crate::sample::Index {
            crate::sample::Index::new(rng.gen())
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy producing arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod sample {
    //! Positional sampling helpers.

    /// An index into a collection whose length is only known at use time.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        pub(crate) fn new(raw: usize) -> Index {
            Index(raw)
        }

        /// Resolves against a collection of length `len` (must be non-zero).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }
}

pub mod collection {
    //! Strategies for collections with a size drawn from a range.

    use super::strategy::Strategy;
    use super::StdRng;
    use rand::Rng;
    use std::collections::{BTreeMap, BTreeSet};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector of values from `element`, sized within `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "collection::vec: empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    /// A map keyed by `key` values, sized within `size` (best effort when the
    /// key domain is small).
    pub fn btree_map<K, V>(key: K, value: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        assert!(
            size.start < size.end,
            "collection::btree_map: empty size range"
        );
        BTreeMapStrategy { key, value, size }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let target = rng.gen_range(self.size.clone());
            let mut map = BTreeMap::new();
            let mut attempts = 0usize;
            while map.len() < target && attempts < target * 20 + 100 {
                map.insert(self.key.generate(rng), self.value.generate(rng));
                attempts += 1;
            }
            map
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A set of `element` values, sized within `size` (best effort when the
    /// element domain is small).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        assert!(
            size.start < size.end,
            "collection::btree_set: empty size range"
        );
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let target = rng.gen_range(self.size.clone());
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 20 + 100 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod test_runner {
    //! Per-test configuration and case-failure plumbing.

    /// A failed (or rejected) test case.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Marks the case as failed with `reason`.
        pub fn fail<R: std::fmt::Display>(reason: R) -> TestCaseError {
            TestCaseError(reason.to_string())
        }

        /// Alias for [`TestCaseError::fail`] (real proptest distinguishes
        /// rejection from failure; the stub treats both as failure).
        pub fn reject<R: std::fmt::Display>(reason: R) -> TestCaseError {
            TestCaseError::fail(reason)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// What a property body evaluates to.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// How a `proptest!` block runs its cases.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A default config with `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }
}

/// Deterministic per-test seed (FNV-1a over the test's name).
#[doc(hidden)]
pub fn __seed_for(test_name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in test_name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[doc(hidden)]
pub fn __new_rng(seed: u64) -> StdRng {
    <StdRng as rand::SeedableRng>::seed_from_u64(seed)
}

#[doc(hidden)]
pub fn __generate<S: strategy::Strategy>(strategy: &S, rng: &mut StdRng) -> S::Value {
    strategy.generate(rng)
}

/// Commonly used items, plus `prop` as an alias for the crate root.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Fails the current case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// A uniform choice among the listed strategies (all yielding one type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `fn` runs `cases` times over seeded inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $($binding:pat in $strategy:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let mut __rng = $crate::__new_rng($crate::__seed_for(concat!(
                module_path!(), "::", stringify!($name)
            )));
            for __case in 0..__config.cases {
                let __outcome: $crate::test_runner::TestCaseResult = (|| {
                    $(let $binding = $crate::__generate(&($strategy), &mut __rng);)+
                    $body
                    Ok(())
                })();
                if let Err(__err) = __outcome {
                    panic!("proptest case {} failed: {}", __case, __err);
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Step {
        Add(u16),
        Del(u16),
    }

    fn step_strategy() -> impl Strategy<Value = Step> {
        prop_oneof![
            any::<u16>().prop_map(Step::Add),
            any::<u16>().prop_map(Step::Del),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges and `any` stay in bounds; tuples compose.
        #[test]
        fn bounds_hold(
            small in 1u32..6,
            frac in 0.0f64..1.5,
            pair in (any::<u8>(), 3usize..=4),
            steps in prop::collection::vec(step_strategy(), 1..20),
            seed in any::<[u8; 32]>(),
            pick in any::<prop::sample::Index>(),
        ) {
            prop_assert!((1..6).contains(&small));
            prop_assert!((0.0..1.5).contains(&frac));
            prop_assert!(pair.1 == 3 || pair.1 == 4);
            prop_assert!(!steps.is_empty() && steps.len() < 20);
            prop_assert_eq!(seed.len(), 32);
            prop_assert!(pick.index(steps.len()) < steps.len());
        }

        /// Map/set sizes respect their ranges when the domain is large.
        #[test]
        fn collections_fill(
            kvs in prop::collection::btree_map(any::<u16>(), any::<u8>(), 1..30),
            set in prop::collection::btree_set(any::<u32>(), 2..10),
            mut tag in prop_oneof![Just(4usize), Just(8)],
        ) {
            prop_assert!(!kvs.is_empty() && kvs.len() < 30);
            prop_assert!((2..10).contains(&set.len()));
            tag += 1;
            prop_assert_ne!(tag, 0, "tag is {}", tag);
        }
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(crate::__seed_for("a::b"), crate::__seed_for("a::b"));
        assert_ne!(crate::__seed_for("a::b"), crate::__seed_for("a::c"));
    }
}
