//! Offline stub for `rand` 0.8: the `Rng`/`SeedableRng` traits and
//! `rngs::StdRng` backed by xoshiro256++ (seeded via splitmix64). Output
//! differs from the real `StdRng` (different algorithm), but everything is
//! fully deterministic per seed, which is what this workspace relies on.

/// Low-level entropy source.
pub trait RngCore {
    /// Next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniform random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// A type that can be sampled uniformly from an RNG (the `Standard`
/// distribution in real rand).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range that can be sampled uniformly (`gen_range` argument).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, span)` without modulo bias.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    let zone = u128::MAX - (u128::MAX % span);
    loop {
        let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for ::std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for ::std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for ::std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing sampling API, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample(self) < p
    }

    /// Fills the byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed;

    /// Constructs from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a 64-bit seed (splitmix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// Named RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// The standard RNG: xoshiro256++ in this stub.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                *word = u64::from_le_bytes(seed[8 * i..8 * i + 8].try_into().unwrap());
            }
            // Avoid the all-zero state, which xoshiro cannot leave.
            if s == [0; 4] {
                s = [0xDEAD_BEEF, 1, 2, 3];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> StdRng {
            let mut sm = state;
            StdRng {
                s: [
                    super::rngs::splitmix64(&mut sm),
                    super::rngs::splitmix64(&mut sm),
                    super::rngs::splitmix64(&mut sm),
                    super::rngs::splitmix64(&mut sm),
                ],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(0.0..1.5);
            assert!((0.0..1.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_and_f64_shapes() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut trues = 0;
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            if rng.gen_bool(0.5) {
                trues += 1;
            }
        }
        assert!(
            (300..700).contains(&trues),
            "gen_bool(0.5) wildly biased: {trues}"
        );
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0) || true);
    }

    #[test]
    fn fill_covers_slice() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 37];
        rng.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn small_range_covers_all_residues() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 8];
        for _ in 0..400 {
            seen[rng.gen_range(1usize..=8) - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
