//! Integration: the threaded deployment under concurrency and attack.

use std::sync::Arc;

use tcvs_core::adversary::{CounterSkipServer, ForkServer, Trigger};
use tcvs_core::{
    Deviation, FaultPlan, FaultRates, HonestServer, Op, ProtocolConfig, ProtocolKind, SyncShare,
};
use tcvs_merkle::{u64_key, MerkleTree};
use tcvs_net::{run_throughput, FaultLink, NetClient1, NetClient2, NetError, NetServer};

fn config() -> ProtocolConfig {
    ProtocolConfig {
        order: 8,
        k: u64::MAX,
        epoch_len: 1 << 30,
    }
}

fn root0(config: &ProtocolConfig) -> tcvs_core::Digest {
    MerkleTree::with_order(config.order).root_digest()
}

#[test]
fn heavy_concurrency_protocol2_consistent() {
    let cfg = config();
    let server = NetServer::spawn(Box::new(HonestServer::new(&cfg)), false);
    let r0 = root0(&cfg);
    let barrier = Arc::new(std::sync::Barrier::new(8));
    let mut handles = Vec::new();
    for u in 0..8u32 {
        let mut c = NetClient2::new(u, &r0, cfg, &server);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            for i in 0..100u64 {
                let k = u64_key((u as u64 * 131 + i * 7) % 256);
                let op = if i % 3 == 0 {
                    Op::Get(k)
                } else {
                    Op::Put(k, vec![u as u8, i as u8])
                };
                c.execute(&op).expect("honest server never deviates");
            }
            c
        }));
    }
    let clients: Vec<NetClient2> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let shares: Vec<SyncShare> = clients.iter().map(|c| c.sync_share()).collect();
    let successes = clients.iter().filter(|c| c.sync_succeeds(&shares)).count();
    assert_eq!(successes, 1, "exactly the final operator succeeds");
    server.shutdown();
}

#[test]
fn fork_across_threads_detected_at_sync() {
    let cfg = config();
    // Users 0,1 on branch A; 2,3 on branch B after op 20.
    let server = NetServer::spawn(
        Box::new(ForkServer::new(&cfg, Trigger::AtCtr(20), &[0, 1])),
        false,
    );
    let r0 = root0(&cfg);
    let mut handles = Vec::new();
    for u in 0..4u32 {
        let mut c = NetClient2::new(u, &r0, cfg, &server);
        handles.push(std::thread::spawn(move || {
            for i in 0..40u64 {
                c.execute(&Op::Put(u64_key(u as u64 * 64 + i), vec![i as u8]))
                    .expect("per-op checks pass on both branches");
            }
            c
        }));
    }
    let clients: Vec<NetClient2> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let shares: Vec<SyncShare> = clients.iter().map(|c| c.sync_share()).collect();
    assert!(
        !clients.iter().any(|c| c.sync_succeeds(&shares)),
        "the out-of-band sync-up must expose the fork"
    );
    server.shutdown();
}

#[test]
fn counter_skip_detected_by_protocol1_over_wire() {
    let cfg = config();
    let server = NetServer::spawn(
        Box::new(CounterSkipServer::new(&cfg, Trigger::AtCtr(3))),
        true,
    );
    let r0 = root0(&cfg);
    let (rings, registry) = tcvs_crypto::setup_users([0x55; 32], 1, 7);
    let mut c = NetClient1::new(rings.into_iter().next().unwrap(), registry, cfg, &server);
    c.deposit_initial(&r0).unwrap();
    let mut detected = false;
    for i in 0..10u64 {
        match c.execute(&Op::Put(u64_key(i), vec![1])) {
            Ok(_) => {}
            Err(e) => {
                // The replayed ctr no longer matches the deposited signature.
                assert!(matches!(
                    e,
                    NetError::Deviation(Deviation::BadSignature | Deviation::BadProof(_))
                ));
                detected = true;
                break;
            }
        }
    }
    assert!(detected, "protocol 1 catches counter reuse at the next op");
    // NetServer is blocked waiting for the detecting client's signature;
    // shutdown unblocks it.
    server.shutdown();
}

#[test]
fn concurrent_clients_through_a_faulty_link_raise_no_false_alarms() {
    let cfg = config();
    let server = NetServer::spawn(Box::new(HonestServer::new(&cfg)), false);
    let plan = FaultPlan::seeded(0x5eed, 160, &FaultRates::light());
    let link = Arc::new(FaultLink::interpose(&server, plan));
    let r0 = root0(&cfg);
    let mut handles = Vec::new();
    for u in 0..4u32 {
        let mut c = NetClient2::new(u, &r0, cfg, link.as_ref());
        handles.push(std::thread::spawn(move || {
            for i in 0..40u64 {
                c.execute(&Op::Put(u64_key(u as u64 * 64 + i), vec![i as u8]))
                    .unwrap_or_else(|e| {
                        panic!("benign faults must not alarm (user {u}, op {i}): {e}")
                    });
            }
            c
        }));
    }
    let clients: Vec<NetClient2> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let shares: Vec<SyncShare> = clients.iter().map(|c| c.sync_share()).collect();
    assert!(clients.iter().any(|c| c.sync_succeeds(&shares)));
    assert!(link.applied().total() > 0, "faults actually fired");
    server.shutdown();
}

#[test]
fn throughput_rig_scales_and_orders() {
    let cfg = config();
    let trusted = run_throughput(ProtocolKind::Trusted, 4, 50, 90, &cfg);
    let p2 = run_throughput(ProtocolKind::Two, 4, 50, 90, &cfg);
    assert_eq!(trusted.ops, 200);
    assert_eq!(p2.ops, 200);
    assert!(trusted.ops_per_sec() > 0.0 && p2.ops_per_sec() > 0.0);
}
