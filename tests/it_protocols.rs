//! Integration: honest servers across all protocols and workload shapes —
//! nothing may ever be (falsely) detected, and costs must order correctly.

use tcvs_core::{HonestServer, ProtocolKind};
use tcvs_integration::{small_config, spec};
use tcvs_sim::simulate;
use tcvs_workload::{generate, generate_epoch_workload, OpMix, WorkloadSpec};

#[test]
fn no_false_positives_across_protocols_and_mixes() {
    for protocol in [
        ProtocolKind::Trusted,
        ProtocolKind::One,
        ProtocolKind::Two,
        ProtocolKind::NaiveXor,
    ] {
        for (mix, seed) in [
            (OpMix::read_heavy(), 1u64),
            (OpMix::write_heavy(), 2),
            (OpMix::update_only(), 3),
        ] {
            let s = spec(protocol, 4);
            let trace = generate(&WorkloadSpec {
                n_users: 4,
                n_ops: 120,
                key_space: 48,
                mix,
                seed,
                ..WorkloadSpec::default()
            });
            let mut server = HonestServer::new(&s.config);
            let r = simulate(&s, &mut server, &trace, None);
            assert!(
                !r.detected(),
                "{protocol:?} seed {seed}: false positive {:?}",
                r.detection
            );
            assert_eq!(r.ops_executed, 120);
        }
    }
}

#[test]
fn no_false_positives_protocol3_epoch_workloads() {
    for seed in 1..=3u64 {
        let s = spec(ProtocolKind::Three, 3);
        let trace = generate_epoch_workload(
            3,
            8,
            s.config.epoch_len,
            2,
            &WorkloadSpec {
                n_users: 3,
                key_space: 32,
                seed,
                ..WorkloadSpec::default()
            },
        );
        let mut server = HonestServer::new(&s.config);
        let r = simulate(&s, &mut server, &trace, None);
        assert!(!r.detected(), "seed {seed}: {:?}", r.detection);
        assert!(r.audits >= 4, "audits must run (got {})", r.audits);
    }
}

#[test]
fn cost_ordering_trusted_p2_p1() {
    let trace = generate(&WorkloadSpec {
        n_users: 4,
        n_ops: 150,
        mix: OpMix::write_heavy(),
        seed: 11,
        ..WorkloadSpec::default()
    });
    let mut results = Vec::new();
    for protocol in [ProtocolKind::Trusted, ProtocolKind::Two, ProtocolKind::One] {
        let s = spec(protocol, 4);
        let mut server = HonestServer::new(&s.config);
        results.push(simulate(&s, &mut server, &trace, None));
    }
    let (trusted, p2, p1) = (&results[0], &results[1], &results[2]);
    assert!(trusted.bytes_per_op() <= p2.bytes_per_op());
    assert!(
        p2.bytes_per_op() < p1.bytes_per_op(),
        "P1 adds signature bytes"
    );
    assert!(
        p2.msgs_per_op() < p1.msgs_per_op(),
        "P1 adds the deposit message"
    );
    assert!(
        p2.makespan_rounds < p1.makespan_rounds,
        "P1 blocks one extra round"
    );
}

#[test]
fn protocol2_sync_identifies_exactly_the_last_operator() {
    use tcvs_core::{Client2, ServerApi, SyncShare};
    let config = small_config();
    let mut server = HonestServer::new(&config);
    let root0 = tcvs_sim::initial_root(&config);
    let mut clients: Vec<Client2> = (0..5).map(|u| Client2::new(u, &root0, config)).collect();
    // Deterministic interleaving; user 3 goes last.
    let order = [0u32, 1, 2, 4, 0, 1, 2, 4, 3];
    for (i, &u) in order.iter().enumerate() {
        let op = tcvs_core::Op::Put(tcvs_merkle::u64_key(i as u64), vec![u as u8]);
        let resp = server.handle_op(u, &op, i as u64);
        clients[u as usize].handle_response(&op, &resp).unwrap();
    }
    let shares: Vec<SyncShare> = clients.iter().map(|c| c.sync_share()).collect();
    let successes: Vec<u32> = clients
        .iter()
        .filter(|c| c.sync_succeeds(&shares))
        .map(|c| c.user())
        .collect();
    assert_eq!(successes, vec![3], "only the final operator succeeds");
}

#[test]
fn protocol3_checkpoints_are_signed_and_chained() {
    use tcvs_core::ServerApi;
    let s = spec(ProtocolKind::Three, 3);
    let trace = generate_epoch_workload(
        3,
        8,
        s.config.epoch_len,
        2,
        &WorkloadSpec {
            n_users: 3,
            seed: 5,
            ..WorkloadSpec::default()
        },
    );
    let mut server = HonestServer::new(&s.config);
    let r = simulate(&s, &mut server, &trace, None);
    assert!(!r.detected());
    // Checkpoints exist for the audited prefix and rotate checkers.
    let (_, registry) = tcvs_crypto::setup_users(s.setup_seed, 3, s.mss_height);
    for e in 0..4u64 {
        let cp = server
            .fetch_checkpoint(0, e)
            .unwrap_or_else(|| panic!("checkpoint {e} missing"));
        assert_eq!(cp.checker, (e % 3) as u32);
        let payload = tcvs_core::SignedCheckpoint::payload(cp.epoch, cp.checker, &cp.final_token);
        assert!(registry.verify(cp.checker, &payload, &cp.sig));
    }
}
