//! Integration: the CVS layer against a plain-repository oracle, and
//! against adversarial servers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tcvs_core::adversary::{DropServer, LieServer, RollbackServer, Trigger};
use tcvs_core::HonestServer;
use tcvs_cvs::{Cvs, CvsError, DirectSession};
use tcvs_integration::small_config;
use tcvs_store::{from_lines, to_lines, Repository};

/// Drives the same randomized commit history through the plain repository
/// and the verified CVS stack; every revision of every file must agree.
#[test]
fn verified_cvs_agrees_with_plain_repository_oracle() {
    let config = small_config();
    let mut oracle = Repository::new();
    let mut session = DirectSession::new(0, HonestServer::new(&config), config);
    let mut cvs = Cvs::new(&mut session, "user");

    let files = 6usize;
    let mut rng = StdRng::seed_from_u64(2024);

    for i in 0..files {
        let body = format!("file {i}\nline a\nline b\n");
        oracle
            .commit(
                "user",
                "import",
                0,
                vec![(format!("f{i}"), to_lines(&body))],
            )
            .unwrap();
        cvs.add(&format!("f{i}"), &body, "import", 0).unwrap();
    }

    for step in 0..60u64 {
        let fidx = rng.gen_range(0..files);
        let path = format!("f{fidx}");
        // Oracle side.
        let mut lines = oracle.checkout(&path).unwrap().to_vec();
        match rng.gen_range(0..3) {
            0 => lines.push(format!("appended at step {step}")),
            1 => {
                let li = rng.gen_range(0..lines.len());
                lines[li] = format!("rewritten at step {step}");
            }
            _ => {
                if lines.len() > 1 {
                    let li = rng.gen_range(0..lines.len());
                    lines.remove(li);
                }
            }
        }
        oracle
            .commit(
                "user",
                &format!("step {step}"),
                step,
                vec![(path.clone(), lines.clone())],
            )
            .unwrap();
        // CVS side: mirror the same content.
        let mut wf = cvs.checkout(&path).unwrap();
        wf.lines = lines;
        cvs.commit(&wf, &format!("step {step}"), step).unwrap();
    }

    // Compare every revision of every file.
    for i in 0..files {
        let path = format!("f{i}");
        let head = oracle.history(&path).unwrap().head_rev();
        assert_eq!(cvs.checkout(&path).unwrap().base_rev, head, "{path} head");
        for rev in 1..=head {
            let want = oracle.checkout_at(&path, rev).unwrap();
            let got = cvs.checkout_rev(&path, rev).unwrap().lines;
            assert_eq!(got, want, "{path} r{rev}");
        }
        // Logs agree on author/message sequence.
        let oracle_log: Vec<String> = oracle
            .history(&path)
            .unwrap()
            .log()
            .map(|(_, m)| m.message.clone())
            .collect();
        let cvs_log: Vec<String> = cvs
            .log(&path)
            .unwrap()
            .into_iter()
            .map(|(_, m)| m.message)
            .collect();
        assert_eq!(cvs_log, oracle_log, "{path} log");
    }
}

#[test]
fn lying_server_stops_the_session() {
    let config = small_config();
    let server = LieServer::new(&config, Trigger::AtCtr(4));
    let mut session = DirectSession::new(0, server, config);
    let mut cvs = Cvs::new(&mut session, "alice");
    cvs.add("f", "content\n", "import", 0).unwrap();
    let mut saw_deviation = false;
    for i in 0..10 {
        match cvs.checkout("f") {
            Ok(_) => {}
            Err(CvsError::Deviation(_)) => {
                saw_deviation = true;
                break;
            }
            Err(e) => panic!("unexpected at step {i}: {e}"),
        }
    }
    assert!(saw_deviation);
}

#[test]
fn rollback_detected_via_counter_regression() {
    let config = small_config();
    // Rollback with tiny lag so the same (single) user notices.
    let server = RollbackServer::with_lag(&config, Trigger::AtCtr(3), 2);
    let mut session = DirectSession::new(0, server, config);
    let mut cvs = Cvs::new(&mut session, "alice");
    cvs.add("f", "v1\n", "import", 0).unwrap();
    let mut outcome = None;
    for i in 0..12u64 {
        let mut wf = match cvs.checkout("f") {
            Ok(wf) => wf,
            Err(e) => {
                outcome = Some(e);
                break;
            }
        };
        wf.lines.push(format!("edit {i}"));
        if let Err(e) = cvs.commit(&wf, "edit", i) {
            outcome = Some(e);
            break;
        }
    }
    match outcome {
        Some(CvsError::Deviation(d)) => {
            assert!(matches!(
                d,
                tcvs_core::Deviation::CounterRegression { .. } | tcvs_core::Deviation::BadProof(_)
            ));
        }
        other => panic!("rollback must surface as deviation, got {other:?}"),
    }
}

#[test]
fn dropped_commit_surfaces_at_the_next_operation() {
    let config = small_config();
    let server = DropServer::new(&config, Trigger::AtCtr(2));
    let mut session = DirectSession::new(0, server, config);
    let mut cvs = Cvs::new(&mut session, "alice");
    cvs.add("f", "v1\n", "import", 0).unwrap();
    let mut wf = cvs.checkout("f").unwrap();
    wf.lines.push("my precious change".to_string());
    // The drop server acknowledges this commit but never applies it. At
    // this instant the lone user's view is still a consistent chain — the
    // paper's detection bound is about *subsequent* operations.
    cvs.commit(&wf, "dropped", 1).unwrap();
    // The very next operation exposes the drop: the server's counter (and
    // root) regressed relative to what this user verified.
    match cvs.checkout("f") {
        Err(CvsError::Deviation(d)) => {
            assert!(matches!(
                d,
                tcvs_core::Deviation::CounterRegression { .. } | tcvs_core::Deviation::BadProof(_)
            ));
        }
        other => panic!("drop must surface at the next op, got {other:?}"),
    }
}

#[test]
fn render_round_trip_through_cvs() {
    let config = small_config();
    let mut session = DirectSession::new(0, HonestServer::new(&config), config);
    let mut cvs = Cvs::new(&mut session, "alice");
    let body = "alpha\nbeta\ngamma\n";
    cvs.add("f", body, "import", 0).unwrap();
    let wf = cvs.checkout("f").unwrap();
    assert_eq!(from_lines(&wf.lines), body);
}
