//! Integration: the full adversary × protocol detection matrix, plus the
//! impossibility boundary (no external communication ⇒ forks invisible).

use tcvs_core::{Deviation, ProtocolKind};
use tcvs_integration::{make_adversary, spec, ADVERSARIES, PROTOCOLS};
use tcvs_sim::simulate;
use tcvs_workload::{generate, generate_epoch_workload, OpMix, WorkloadSpec};

fn trace_for(protocol: ProtocolKind, seed: u64, epoch_len: u64) -> tcvs_workload::Trace {
    if protocol == ProtocolKind::Three {
        // write-heavy: includes the reads the stale-read adversary needs.
        generate_epoch_workload(
            4,
            9,
            epoch_len,
            2,
            &WorkloadSpec {
                n_users: 4,
                key_space: 32,
                mix: OpMix::write_heavy(),
                seed,
                ..WorkloadSpec::default()
            },
        )
    } else {
        generate(&WorkloadSpec {
            n_users: 4,
            n_ops: 100,
            key_space: 32,
            mix: OpMix::write_heavy(),
            seed,
            ..WorkloadSpec::default()
        })
    }
}

#[test]
fn every_adversary_detected_by_every_protocol() {
    for adversary in ADVERSARIES {
        for protocol in PROTOCOLS {
            for seed in [1u64, 2] {
                let s = spec(protocol, 4);
                let trace = trace_for(protocol, seed, s.config.epoch_len);
                let trigger = trace.len() as u64 / 3;
                let mut server = make_adversary(adversary, &s.config, trigger);
                let r = simulate(&s, server.as_mut(), &trace, Some(trigger));
                assert!(
                    r.detected(),
                    "{adversary} undetected by {protocol:?} (seed {seed})"
                );
            }
        }
    }
}

#[test]
fn detection_is_k_bounded_for_sync_protocols() {
    for adversary in ADVERSARIES {
        for protocol in [ProtocolKind::One, ProtocolKind::Two] {
            let s = spec(protocol, 4); // k = 8
            let trace = trace_for(protocol, 7, s.config.epoch_len);
            let trigger = trace.len() as u64 / 3;
            let mut server = make_adversary(adversary, &s.config, trigger);
            let r = simulate(&s, server.as_mut(), &trace, Some(trigger));
            let ev = r.detection.expect("detected");
            if let Some(m) = ev.max_user_ops_after_violation {
                assert!(
                    m <= s.config.k + 1,
                    "{adversary}/{protocol:?}: {m} > k = {}",
                    s.config.k
                );
            }
        }
    }
}

#[test]
fn forks_invisible_without_external_communication() {
    // Theorem 3.1's boundary: same fork, same workload, no sync-up channel.
    let mut s = spec(ProtocolKind::Two, 4);
    s.config.k = u64::MAX;
    s.final_sync = false;
    let trace = generate(&WorkloadSpec {
        n_users: 4,
        n_ops: 200,
        key_space: 32,
        mix: OpMix::write_heavy(),
        seed: 13,
        ..WorkloadSpec::default()
    });
    let mut server = make_adversary("fork", &s.config, 40);
    let r = simulate(&s, server.as_mut(), &trace, Some(40));
    assert!(
        !r.detected(),
        "per-op checks alone must NOT expose the fork: {:?}",
        r.detection
    );
    assert_eq!(r.ops_executed, 200, "both branches served to the end");
}

#[test]
fn naive_xor_misses_the_fig3_replay_but_detects_lies() {
    use tcvs_core::Op;
    use tcvs_merkle::u64_key;
    use tcvs_workload::{ScheduledOp, Trace};
    // Fig. 3 scenario (see E4): drop of one of two identical updates.
    let trace = Trace::new(vec![
        ScheduledOp {
            round: 0,
            user: 0,
            op: Op::Put(u64_key(1), b"base".to_vec()),
        },
        ScheduledOp {
            round: 1,
            user: 1,
            op: Op::Put(u64_key(2), b"same".to_vec()),
        },
        ScheduledOp {
            round: 2,
            user: 2,
            op: Op::Put(u64_key(2), b"same".to_vec()),
        },
    ]);
    let s = spec(ProtocolKind::NaiveXor, 3);
    let mut server = make_adversary("drop", &s.config, 1);
    let r = simulate(&s, server.as_mut(), &trace, Some(1));
    assert!(!r.detected(), "naive-xor is blind to the Fig. 3 replay");

    // Same trace, Protocol II: detected at the final sync.
    let s = spec(ProtocolKind::Two, 3);
    let mut server = make_adversary("drop", &s.config, 1);
    let r = simulate(&s, server.as_mut(), &trace, Some(1));
    assert_eq!(
        r.detection.expect("protocol II detects").deviation,
        Deviation::SyncFailed
    );

    // But naive-xor still catches outright lies (the Merkle layer works).
    let s = spec(ProtocolKind::NaiveXor, 3);
    let mut server = make_adversary("lie", &s.config, 1);
    let r = simulate(&s, server.as_mut(), &trace, Some(1));
    assert!(matches!(
        r.detection.expect("lie caught").deviation,
        Deviation::BadProof(_)
    ));
}

#[test]
fn immediate_vs_deferred_detection_classes() {
    // "lie" must be caught on the spot (op index == trigger); "fork" must
    // wait for a sync-up (op index > trigger).
    let s = spec(ProtocolKind::Two, 4);
    let trace = trace_for(ProtocolKind::Two, 3, s.config.epoch_len);
    let trigger = 30u64;

    let mut lie = make_adversary("lie", &s.config, trigger);
    let r = simulate(&s, lie.as_mut(), &trace, Some(trigger));
    let ev = r.detection.unwrap();
    assert_eq!(ev.op_index, trigger, "lie caught immediately");

    let mut fork = make_adversary("fork", &s.config, trigger);
    let r = simulate(&s, fork.as_mut(), &trace, Some(trigger));
    let ev = r.detection.unwrap();
    assert!(ev.op_index > trigger, "fork needs the sync-up");
    assert_eq!(ev.deviation, Deviation::SyncFailed);
}

#[test]
fn honest_control_never_detected() {
    // Trigger::Never controls: the adversary wrappers in honest mode.
    use tcvs_core::adversary::{ForkServer, Trigger};
    let s = spec(ProtocolKind::Two, 4);
    let trace = trace_for(ProtocolKind::Two, 9, s.config.epoch_len);
    let mut server = ForkServer::new(&s.config, Trigger::Never, &[0]);
    let r = simulate(&s, &mut server, &trace, None);
    assert!(!r.detected());
    assert!(!server.forked());
}
