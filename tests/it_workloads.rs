//! Integration: workload generators driving real protocol runs, plus
//! property tests over trace structure.

use proptest::prelude::*;
use tcvs_core::{HonestServer, ProtocolKind};
use tcvs_integration::spec;
use tcvs_sim::simulate;
use tcvs_workload::{
    generate, generate_epoch_workload, partitionable, OpMix, PartitionSpec, WorkloadSpec,
};

#[test]
fn partitionable_workload_runs_clean_on_honest_server() {
    // The workload itself is perfectly legal: an honest server serves it
    // without any detection.
    let w = partitionable(&PartitionSpec::default());
    let s = spec(ProtocolKind::Two, 4);
    let mut server = HonestServer::new(&s.config);
    let r = simulate(&s, &mut server, &w.trace, None);
    assert!(!r.detected(), "{:?}", r.detection);
}

#[test]
fn zipf_workloads_concentrate_on_hot_keys() {
    let t = generate(&WorkloadSpec {
        n_ops: 3000,
        key_space: 100,
        zipf_theta: 1.0,
        mix: OpMix::update_only(),
        ..WorkloadSpec::default()
    });
    // Count accesses to the hottest key (rank 0 => key 0).
    let hot = t
        .ops()
        .iter()
        .filter(|s| matches!(&s.op, tcvs_core::Op::Put(k, _) if k == &tcvs_merkle::u64_key(0)))
        .count();
    assert!(
        hot > 3000 / 100 * 3,
        "hot key must be >3x uniform share: {hot}"
    );
}

#[test]
fn epoch_workload_drives_protocol3_without_violation() {
    let s = spec(ProtocolKind::Three, 4);
    let t = generate_epoch_workload(
        4,
        6,
        s.config.epoch_len,
        2,
        &WorkloadSpec {
            n_users: 4,
            seed: 77,
            ..WorkloadSpec::default()
        },
    );
    let mut server = HonestServer::new(&s.config);
    let r = simulate(&s, &mut server, &t, None);
    assert!(!r.detected(), "{:?}", r.detection);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Generated traces are structurally sound for arbitrary specs.
    #[test]
    fn generated_traces_are_wellformed(
        n_users in 1u32..6,
        n_ops in 1usize..200,
        key_space in 1u64..100,
        theta in 0.0f64..1.5,
        seed in any::<u64>(),
    ) {
        let t = generate(&WorkloadSpec {
            n_users,
            n_ops,
            key_space,
            zipf_theta: theta,
            seed,
            ..WorkloadSpec::default()
        });
        prop_assert_eq!(t.len(), n_ops);
        prop_assert!(t.ops().iter().all(|s| s.user < n_users));
        // Rounds are non-decreasing.
        prop_assert!(t.ops().windows(2).all(|w| w[0].round <= w[1].round));
    }

    /// Epoch workloads always satisfy Protocol III's requirement.
    #[test]
    fn epoch_workloads_satisfy_requirement(
        n_users in 1u32..5,
        epochs in 1u64..6,
        ops_per_epoch in 2u64..4,
        seed in any::<u64>(),
    ) {
        let epoch_len = (n_users as u64 * ops_per_epoch) * 2;
        let t = generate_epoch_workload(n_users, epochs, epoch_len, ops_per_epoch, &WorkloadSpec {
            n_users,
            seed,
            ..WorkloadSpec::default()
        });
        for e in 0..epochs {
            for u in 0..n_users {
                let count = t.ops().iter()
                    .filter(|s| s.user == u && s.round / epoch_len == e)
                    .count() as u64;
                prop_assert!(count >= 2, "user {} epoch {}: {}", u, e, count);
            }
        }
    }

    /// Every honest run over a random workload passes, for every protocol
    /// (the big no-false-positive property).
    #[test]
    fn no_protocol_false_positives_on_random_workloads(
        seed in any::<u64>(),
        protocol in prop_oneof![
            Just(ProtocolKind::One),
            Just(ProtocolKind::Two),
            Just(ProtocolKind::NaiveXor),
        ],
    ) {
        let s = spec(protocol, 3);
        let t = generate(&WorkloadSpec {
            n_users: 3,
            n_ops: 60,
            key_space: 24,
            seed,
            ..WorkloadSpec::default()
        });
        let mut server = HonestServer::new(&s.config);
        let r = simulate(&s, &mut server, &t, None);
        prop_assert!(!r.detected(), "{:?}", r.detection);
    }

    /// Partitionable workloads keep their defining structure for arbitrary
    /// parameters.
    #[test]
    fn partitionable_structure_invariants(
        n_users in 2u32..8,
        warmup in 0u64..30,
        tail in 1u64..40,
        seed in any::<u64>(),
    ) {
        let w = partitionable(&PartitionSpec {
            n_users,
            warmup_ops: warmup,
            tail_ops: tail,
            key_space: 32,
            seed,
        });
        prop_assert_eq!(w.trace.len() as u64, warmup + 2 + tail);
        // After t1, only group B speaks.
        let after = &w.trace.ops()[w.t1_index as usize + 1..];
        prop_assert!(after.iter().all(|s| w.group_b.contains(&s.user)));
        // Groups partition all users.
        prop_assert_eq!(w.group_a.len() + w.group_b.len(), n_users as usize);
    }
}
