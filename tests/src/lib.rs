//! Shared helpers for the cross-crate integration tests.

use tcvs_core::{ProtocolConfig, ProtocolKind};
use tcvs_sim::SimSpec;

/// A compact config suitable for fast integration runs.
pub fn small_config() -> ProtocolConfig {
    ProtocolConfig {
        order: 8,
        k: 8,
        epoch_len: 16,
    }
}

/// A `SimSpec` for `protocol` with `n` users over [`small_config`].
pub fn spec(protocol: ProtocolKind, n: u32) -> SimSpec {
    SimSpec {
        protocol,
        config: small_config(),
        n_users: n,
        mss_height: 9,
        setup_seed: [0x77; 32],
        final_sync: true,
        faults: tcvs_core::FaultPlan::none(),
    }
}

/// The three protocols of §4.
pub const PROTOCOLS: [ProtocolKind; 3] =
    [ProtocolKind::One, ProtocolKind::Two, ProtocolKind::Three];

/// The six adversary names used by `make_adversary`.
pub const ADVERSARIES: [&str; 7] = [
    "fork",
    "drop",
    "rollback",
    "tamper",
    "counter-skip",
    "lie",
    "stale-read",
];

/// Builds an adversary by name, triggered at `trigger` operations.
pub fn make_adversary(
    name: &str,
    config: &ProtocolConfig,
    trigger: u64,
) -> Box<dyn tcvs_core::ServerApi> {
    use tcvs_core::adversary::*;
    let t = Trigger::AtCtr(trigger);
    match name {
        "fork" => Box::new(ForkServer::new(config, t, &[0])),
        "drop" => Box::new(DropServer::new(config, t)),
        "rollback" => Box::new(RollbackServer::new(config, t)),
        "tamper" => Box::new(TamperServer::new(config, t)),
        "counter-skip" => Box::new(CounterSkipServer::new(config, t)),
        "lie" => Box::new(LieServer::new(config, t)),
        "stale-read" => Box::new(StaleReadServer::new(config, t)),
        other => panic!("unknown adversary {other}"),
    }
}
